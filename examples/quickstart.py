#!/usr/bin/env python
"""Quickstart: partition a web-graph stand-in with CLUGP in ~10 lines.

Run:  python examples/quickstart.py
"""

from repro import ClugpPartitioner, EdgeStream, load_dataset

# 1. Load a synthetic stand-in for the paper's uk-2002 corpus (~40K edges
#    at this scale).  The natural edge order is the BFS crawl order the
#    paper's streaming model assumes.
graph = load_dataset("uk", scale=0.2, seed=42)
print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

# 2. Wrap it as an edge stream and run the three-pass CLUGP pipeline.
stream = EdgeStream.from_graph(graph, order="natural")
partitioner = ClugpPartitioner(num_partitions=32)
assignment = partitioner.partition(stream)

# 3. Inspect quality: replication factor (communication cost proxy) and
#    relative balance (computation balance; CLUGP enforces <= tau).
print(f"replication factor: {assignment.replication_factor():.3f}")
print(f"relative balance:   {assignment.relative_balance():.3f}")
print(f"partition sizes:    min={assignment.partition_sizes().min()}, "
      f"max={assignment.partition_sizes().max()}")

# 4. The intermediate products of the three passes are available for
#    inspection after the run.
clustering = partitioner.last_clustering
game = partitioner.last_game_result
print(f"pass 1: {clustering.num_clusters} clusters, "
      f"{clustering.splits} splits, {clustering.migrations} migrations")
print(f"pass 2: Nash equilibrium after {game.rounds} rounds "
      f"({game.moves} cluster moves, lambda={game.lambda_value:.4f})")
print(f"pass 3: {partitioner.last_transform_stats}")
print(f"stage times: { {k: round(v, 4) for k, v in assignment.stage_times.stages.items()} }")
