#!/usr/bin/env python
"""End-to-end web-graph pipeline exercising the full substrate API:

1. generate a synthetic web crawl with host locality and power-law hubs;
2. verify its degree structure (power-law fit, Gini skew);
3. persist and reload it through the edge-list format;
4. run streaming clustering alone and inspect the clusters it finds;
5. partition with CLUGP (parallel batched game) and check the tau cap;
6. run connected components on the simulated cluster.

Run:  python examples/web_crawl_pipeline.py
"""

import os
import tempfile

import numpy as np

from repro import ClugpPartitioner, EdgeStream
from repro.config import ClugpConfig, GameConfig
from repro.core import build_cluster_graph, streaming_clustering
from repro.graph import io, properties
from repro.graph.generators import web_crawl_graph
from repro.system import connected_components, make_engine

# 1. generate -----------------------------------------------------------
graph = web_crawl_graph(
    4000, avg_out_degree=12.0, host_size=40, intra_host_prob=0.88, seed=11
)
print(f"crawl graph: |V|={graph.num_vertices} |E|={graph.num_edges}")

# 2. degree structure ----------------------------------------------------
stats = properties.degree_stats(graph)
print(f"degree stats: max={stats.max_degree} mean={stats.mean_degree:.1f} "
      f"alpha~{stats.alpha:.2f} gini={stats.gini:.2f}")

# 3. round-trip through the edge-list format ----------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "crawl.edges")
    io.write_edgelist(graph, path, comment="synthetic web crawl")
    reloaded = io.read_edgelist(path)
    assert reloaded.num_edges == graph.num_edges
    print(f"edge-list round trip ok ({os.path.getsize(path)} bytes)")
    graph = reloaded

# 4. streaming clustering on its own ------------------------------------
stream = EdgeStream.from_graph(graph, order="natural")
vmax = stream.num_edges // 16
clustering = streaming_clustering(stream, vmax)
cluster_graph = build_cluster_graph(stream, clustering)
internal_frac = cluster_graph.total_internal() / stream.num_edges
sizes = clustering.cluster_sizes()
print(f"pass-1 clusters: m={clustering.num_clusters}, "
      f"{internal_frac:.0%} of edges intra-cluster, "
      f"largest cluster {sizes.max()} vertices")

# 5. full CLUGP with the parallel batched game --------------------------
config = ClugpConfig(
    num_partitions=16,
    imbalance_factor=1.02,
    parallel_game=True,
    game=GameConfig(batch_size=64, num_threads=4),
)
partitioner = ClugpPartitioner(16, config=config)
assignment = partitioner.partition(stream)
print(f"CLUGP k=16: RF={assignment.replication_factor():.3f} "
      f"balance={assignment.relative_balance():.4f} (cap tau=1.02)")
assert assignment.relative_balance() <= 1.02 + 16 / stream.num_edges

# 6. connected components on the partition-local runtime ----------------
engine = make_engine(assignment, mode="local")
labels, cost = connected_components(engine)
print(f"components: {len(np.unique(labels))} "
      f"(in {cost.num_supersteps} supersteps, "
      f"{cost.total_messages} measured sync messages)")
