#!/usr/bin/env python
"""Distributed PageRank on the partition-local GAS runtime (mini Fig 8).

Shows how partitioning quality translates into distributed runtime: the
replication factor drives the number of mirror-synchronization messages
per superstep, which dominates communication cost.  PageRank executes on
the partition-local runtime, so the message counts and volumes below are
*measured* off the mirror<->master sync buffers, not modeled.  Also
sweeps the network RTT as the paper does with PUMBA (Figure 8 c).

Run:  python examples/distributed_pagerank.py
"""

from repro import EdgeStream, load_dataset, make_partitioner
from repro.system import NetworkModel, make_engine, pagerank

ALGORITHMS = ["hashing", "dbh", "mint", "hdrf", "clugp"]


def run_once(stream, name: str, k: int, network: NetworkModel):
    partitioner = make_partitioner(name, k)
    ordered = stream
    if partitioner.preferred_order != "natural":
        ordered = stream.reordered(partitioner.preferred_order, seed=0)
    assignment = partitioner.partition(ordered)
    engine = make_engine(assignment, mode="local", network=network)
    _, cost = pagerank(engine, max_supersteps=25)
    return assignment, cost


def main() -> None:
    graph = load_dataset("it", scale=0.4, seed=3)
    stream = EdgeStream.from_graph(graph, order="natural")
    k = 32
    print(f"|V|={graph.num_vertices} |E|={graph.num_edges} k={k}\n")

    network = NetworkModel()
    print(f"{'algorithm':9s} {'RF':>6s} {'volume(MB)':>11s} {'compute(s)':>11s} "
          f"{'comm(s)':>9s} {'total(s)':>9s}   (volume measured off sync buffers)")
    for name in ALGORITHMS:
        assignment, cost = run_once(stream, name, k, network)
        print(f"{name:9s} {assignment.replication_factor():6.2f} "
              f"{cost.total_bytes / 1e6:11.2f} {cost.compute_seconds:11.4f} "
              f"{cost.comm_seconds:9.3f} {cost.total_seconds:9.3f}")

    print("\nRTT sweep (Figure 8c): total simulated PageRank seconds")
    rtts_ms = [10, 50, 100]
    header = f"{'algorithm':9s}" + "".join(f" {r:>7d}ms" for r in rtts_ms)
    print(header)
    for name in ("hdrf", "clugp"):
        row = f"{name:9s}"
        for rtt in rtts_ms:
            _, cost = run_once(stream, name, k, network.with_rtt(rtt / 1000))
            row += f" {cost.total_seconds:9.3f}"
        print(row)


if __name__ == "__main__":
    main()
