#!/usr/bin/env python
"""Explore the paper's Section IV-B analytical model (Equations 3-9) and
check it against a measured run.

The model predicts, for a power-law graph, the minimum degree a vertex
needs before CLUGP's splitting replicates it r times — and shows why that
ladder rises much faster than Hollocou's, which is the whole point of the
splitting operation (Theorems 1-2).

Run:  python examples/theory_bounds.py
"""

import numpy as np

from repro import ClugpPartitioner, ClugpNoSplitPartitioner, EdgeStream
from repro.core.bounds import (
    PowerLawModel,
    min_degree_for_replicas_clugp,
    min_degree_for_replicas_holl,
)
from repro.graph import properties
from repro.graph.generators import web_crawl_graph

# --- the replica ladder --------------------------------------------------
vmax, dmax = 2_000, 400
print(f"minimum degree to reach r replicas (V_max={vmax}, d_max={dmax}):")
print(f"{'r':>3s} {'CLUGP (Eq. 8)':>14s} {'Holl':>6s}")
for r in (1, 2, 3, 5, 8, 12):
    print(
        f"{r:3d} {min_degree_for_replicas_clugp(r, vmax, dmax):14.1f} "
        f"{min_degree_for_replicas_holl(r):6.1f}"
    )

# --- worst-case RF bounds vs cluster count -------------------------------
model = PowerLawModel(alpha=2.1, gamma=1, dmax=dmax)
print("\nworst-case replication factor bounds (Equations 4-5):")
print(f"{'m':>6s} {'CLUGP':>8s} {'Holl':>8s} {'advantage':>10s}")
for m in (16, 64, 256, 1024):
    clugp = model.rf_bound(m, vmax)
    holl = model.rf_bound(m, vmax, algorithm="holl")
    print(f"{m:6d} {clugp:8.3f} {holl:8.3f} {holl - clugp:10.3f}")

# --- sanity check against a real run -------------------------------------
# The Section IV-B model bounds the replication created by the *clustering
# pass* (splitting mirrors) — pass 3 adds further replicas when it cuts
# edges for balance, which the model deliberately does not cover.
graph = web_crawl_graph(3000, avg_out_degree=12, host_size=30, seed=21)
stream = EdgeStream.from_graph(graph, order="natural")
stats = properties.degree_stats(graph)
k = 16
partitioner = ClugpPartitioner(k)
rf_end_to_end = partitioner.partition(stream).replication_factor()
clustering = partitioner.last_clustering
active = int((clustering.degree > 0).sum())
clustering_rf = 1.0 + sum(
    len(m) for m in clustering.mirror_clusters.values()
) / max(1, active)
rf_holl = ClugpNoSplitPartitioner(k).partition(stream).replication_factor()
bound = PowerLawModel(
    alpha=max(1.5, stats.alpha if np.isfinite(stats.alpha) else 2.1),
    gamma=1,
    dmax=stats.max_degree,
).rf_bound(num_clusters=clustering.num_clusters, vmax=stream.num_edges // k)
print(f"\nmeasured on a {stream.num_edges}-edge crawl (k={k}):")
print(f"  clustering-pass RF (splitting mirrors) = {clustering_rf:.3f}")
print(f"  analytical worst-case bound (CLUGP)    = {bound:.3f}")
print(f"  end-to-end RF with splitting           = {rf_end_to_end:.3f}")
print(f"  end-to-end RF without splitting        = {rf_holl:.3f}")
assert clustering_rf <= bound + 1e-9, (
    "clustering-pass replication must respect the worst-case bound"
)
print("  bound holds for the clustering pass.")
