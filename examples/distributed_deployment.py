#!/usr/bin/env python
"""Distributed CLUGP deployment (Section III-C of the paper).

Shards the crawl stream across ingest nodes; every node runs the full
three-pass pipeline on its shard with no shared state, and the partial
edge assignments are combined.  This is the mode that lets CLUGP scale
out: the critical path is the slowest node, and no global table is ever
locked — contrast with HDRF/Greedy, which fundamentally serialize on a
global vertex-placement table.

Run:  python examples/distributed_deployment.py
"""

from repro import EdgeStream, load_dataset
from repro.core import distributed_clugp
from repro.partitioners import HDRFPartitioner

graph = load_dataset("webbase", scale=0.4, seed=5)
stream = EdgeStream.from_graph(graph, order="natural")
k = 32
print(f"|V|={graph.num_vertices} |E|={graph.num_edges} k={k}\n")

print(f"{'nodes':>5s} {'RF':>7s} {'balance':>8s} {'critical path':>14s} {'sum of node work':>17s}")
for num_nodes in (1, 2, 4, 8, 16):
    result = distributed_clugp(stream, k, num_nodes=num_nodes, seed=0)
    a = result.assignment
    total_work = sum(n.seconds for n in result.nodes)
    print(
        f"{num_nodes:5d} {a.replication_factor():7.3f} {a.relative_balance():8.3f} "
        f"{result.max_node_seconds():13.3f}s {total_work:16.3f}s"
    )

# the serialized baseline for contrast
hdrf = HDRFPartitioner(k)
assignment = hdrf.partition(stream.reordered("random", seed=0))
print(
    f"\nHDRF (inherently single-stream): RF={assignment.replication_factor():.3f} "
    f"time={assignment.total_time():.3f}s"
)

result = distributed_clugp(stream, k, num_nodes=8, seed=0)
print("\nper-node diagnostics (8 nodes):")
for node in result.nodes:
    print(
        f"  node {node.node}: edges={node.num_edges} clusters={node.num_clusters} "
        f"splits={node.splits} game_rounds={node.game_rounds} "
        f"time={node.seconds:.3f}s"
    )
