#!/usr/bin/env python
"""Distributed CLUGP deployment (Section III-C of the paper).

Shards the crawl stream across ingest nodes and combines the partial
results under both protocols:

* ``independent`` — every node runs the full three-pass pipeline on its
  shard with no shared state and the edge assignments are concatenated.
  No sync cost, but a vertex split across shards is placed
  inconsistently, so replication inflates with the node count.
* ``merged`` — nodes ship compact cluster summaries, the coordinator
  unions the cluster graphs, runs one warm-started global game, and each
  node replays pass 3 under the broadcast decision plus balance quotas.
  The quality cliff becomes a measured wire cost.

Run:  python examples/distributed_deployment.py
"""

from repro import EdgeStream, load_dataset
from repro.core import distributed_clugp
from repro.partitioners import HDRFPartitioner

graph = load_dataset("webbase", scale=0.4, seed=5)
stream = EdgeStream.from_graph(graph, order="natural")
k = 32
print(f"|V|={graph.num_vertices} |E|={graph.num_edges} k={k}\n")

header = (
    f"{'nodes':>5s} {'mode':>12s} {'RF':>7s} {'balance':>8s} "
    f"{'critical path':>14s} {'node work':>10s} {'sync wire':>10s}"
)
print(header)
for num_nodes in (1, 2, 4, 8, 16):
    for mode in ("independent", "merged"):
        result = distributed_clugp(
            stream, k, num_nodes=num_nodes, seed=0, merge_mode=mode
        )
        a = result.assignment
        total_work = sum(n.seconds for n in result.nodes)
        if result.merge is not None:
            wire = f"{result.merge.total_wire_bytes() / 1024:8.0f}KB"
        else:
            wire = f"{'-':>10s}"
        print(
            f"{num_nodes:5d} {mode:>12s} {a.replication_factor():7.3f} "
            f"{a.relative_balance():8.3f} {a.wall_time():13.3f}s "
            f"{total_work:9.3f}s {wire}"
        )

# the serialized baseline for contrast
hdrf = HDRFPartitioner(k)
assignment = hdrf.partition(stream.reordered("random", seed=0))
print(
    f"\nHDRF (inherently single-stream): RF={assignment.replication_factor():.3f} "
    f"time={assignment.total_time():.3f}s"
)

result = distributed_clugp(stream, k, num_nodes=8, seed=0, merge_mode="merged")
print("\nmerged deployment, 8 nodes:")
print(result.summary())
print("\nper-node diagnostics:")
for node in result.nodes:
    print(
        f"  node {node.node}: edges={node.num_edges} clusters={node.num_clusters} "
        f"splits={node.splits} local_game_rounds={node.game_rounds} "
        f"boundary={node.boundary_vertices} summary={node.summary_bytes / 1024:.0f}KB "
        f"time={node.seconds:.3f}s"
    )
