#!/usr/bin/env python
"""Compare all six Table-I algorithms across partition counts (mini Fig 3).

Each algorithm runs under its best stream order, as in the paper's
protocol: random order for the one-pass heuristics and hashes, crawl (BFS)
order for Mint and CLUGP.

Run:  python examples/partitioner_comparison.py [dataset] [scale]
"""

import sys

from repro import EdgeStream, load_dataset, make_partitioner, compare_partitioners
from repro.bench import rf_vs_partitions, series_table

ALGORITHMS = ["hashing", "dbh", "greedy", "hdrf", "mint", "clugp"]


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "uk"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    graph = load_dataset(dataset, scale=scale, seed=7)
    stream = EdgeStream.from_graph(graph, order="natural")
    print(f"dataset={dataset} |V|={graph.num_vertices} |E|={graph.num_edges}\n")

    # full quality table at one k (Table-I style)
    k = 32
    partitioners = [make_partitioner(name, k) for name in ALGORITHMS]
    print(compare_partitioners(partitioners, stream, title=f"quality at k={k}"))
    print()

    # replication-factor sweep over k (Figure-3 style)
    sweep = rf_vs_partitions(stream, [4, 8, 16, 32, 64], algorithms=ALGORITHMS)
    print(series_table(sweep, title="replication factor vs number of partitions"))
    best = {k_: sweep.winner_at(k_) for k_ in [4, 16, 64]}
    print(f"\nlowest-RF algorithm by k: {best}")


if __name__ == "__main__":
    main()
