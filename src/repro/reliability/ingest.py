"""Hardened edge ingestion: typed errors, strict/lenient sanitization.

A service ingesting crawler output meets garbage as a matter of course:
negative ids from sign bugs, floats and NaN rows from a CSV detour,
counters past ``int64``, and binary files cut short by a full disk.  The
pre-PR-8 behavior was a mix of raw ``ValueError``/``OverflowError``
tracebacks and — worse — silent wraparound on unchecked casts.  This
module makes every malformed input either a **typed error** (``strict``
mode, the default for one-shot CLI runs) or a **counted drop**
(``lenient`` mode, for long-lived feeds that must not die on one bad
row), never silent garbage.

All error types subclass :class:`IngestError`, which subclasses
``ValueError`` — existing callers catching ``ValueError`` keep working.

:func:`sanitize_edges` is the single validation kernel; ``EdgeStream``
and the io readers route through it.  :class:`DropReport` carries the
per-reason drop counts so operators can alert on feed quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "IngestError",
    "MalformedEdgeError",
    "VertexRangeError",
    "EdgeOverflowError",
    "TruncatedPayloadError",
    "DropReport",
    "sanitize_edges",
    "INGEST_MODES",
]

INGEST_MODES = ("strict", "lenient")


class IngestError(ValueError):
    """Base of every typed ingestion failure (a ``ValueError`` subclass)."""


class MalformedEdgeError(IngestError):
    """A row is not a pair of integers (NaN, inf, fractional, non-numeric)."""


class VertexRangeError(IngestError):
    """An endpoint id is negative or outside the declared vertex space."""


class EdgeOverflowError(IngestError):
    """An endpoint id does not fit in int64 (would wrap on a silent cast)."""


class TruncatedPayloadError(IngestError):
    """A binary payload ends mid-record (short file, torn write)."""


@dataclass
class DropReport:
    """Per-reason counts of rows dropped by lenient sanitization."""

    kept: int = 0
    dropped: dict[str, int] = field(default_factory=dict)

    @property
    def total_dropped(self) -> int:
        """Rows dropped across all reasons."""
        return sum(self.dropped.values())

    def bump(self, reason: str, count: int) -> None:
        """Count ``count`` drops under ``reason`` (no-op when zero)."""
        if count:
            self.dropped[reason] = self.dropped.get(reason, 0) + int(count)

    def merge(self, other: "DropReport") -> None:
        """Fold another report's counts into this one."""
        self.kept += other.kept
        for reason, count in other.dropped.items():
            self.bump(reason, count)

    def to_dict(self) -> dict:
        """JSON-ready view (service summaries, CLI reporting)."""
        return {"kept": self.kept, "dropped": dict(self.dropped),
                "total_dropped": self.total_dropped}


_I64_MIN = float(np.iinfo(np.int64).min)
_I64_MAX = float(np.iinfo(np.int64).max)


def _check_mode(mode: str) -> str:
    """Validate the mode string once, with the canonical message."""
    if mode not in INGEST_MODES:
        raise ValueError(f"mode must be one of {INGEST_MODES}, got {mode!r}")
    return mode


def _to_int64_column(values, name: str, mode: str, report: DropReport):
    """Coerce one endpoint column to int64, flagging rows that cannot be.

    Returns ``(int64 array, bad row mask)``.  In strict mode the first
    uncoercible row raises the matching typed error instead.
    """
    arr = np.asarray(values)
    if arr.dtype == np.int64:
        return arr, np.zeros(arr.size, dtype=bool)
    if np.issubdtype(arr.dtype, np.integer):
        if arr.dtype == np.uint64:
            over = arr > np.uint64(np.iinfo(np.int64).max)
            if over.any() and mode == "strict":
                raise EdgeOverflowError(
                    f"{name}: id {arr[over][0]} exceeds int64 range"
                )
            report.bump("overflow", int(over.sum()))
            out = np.where(over, np.uint64(0), arr).astype(np.int64)
            return out, over
        return arr.astype(np.int64), np.zeros(arr.size, dtype=bool)
    if np.issubdtype(arr.dtype, np.floating):
        finite = np.isfinite(arr)
        if not finite.all() and mode == "strict":
            i = int(np.flatnonzero(~finite)[0])
            raise MalformedEdgeError(f"{name}: non-finite id {arr[i]!r} at row {i}")
        report.bump("non_finite", int((~finite).sum()))
        in_range = finite & (arr >= _I64_MIN) & (arr <= _I64_MAX)
        over = finite & ~in_range
        if over.any() and mode == "strict":
            i = int(np.flatnonzero(over)[0])
            raise EdgeOverflowError(f"{name}: id {arr[i]!r} exceeds int64 range")
        report.bump("overflow", int(over.sum()))
        safe = np.where(in_range, arr, 0.0)
        fractional = in_range & (np.floor(safe) != safe)
        if fractional.any() and mode == "strict":
            i = int(np.flatnonzero(fractional)[0])
            raise MalformedEdgeError(f"{name}: non-integral id {arr[i]!r} at row {i}")
        report.bump("non_integral", int(fractional.sum()))
        bad = ~in_range | fractional
        return safe.astype(np.int64), bad
    # object/str columns: per-element python coercion, the slow cold path
    out = np.zeros(arr.size, dtype=np.int64)
    bad = np.zeros(arr.size, dtype=bool)
    for i, value in enumerate(arr.tolist()):
        try:
            as_int = int(value)
        except (TypeError, ValueError, OverflowError):
            # OverflowError: int(float('inf')) — non-finite, not merely big
            if mode == "strict":
                raise MalformedEdgeError(
                    f"{name}: non-integer id {value!r} at row {i}"
                ) from None
            bad[i] = True
            continue
        if isinstance(value, float) and value != as_int:
            if mode == "strict":
                raise MalformedEdgeError(
                    f"{name}: non-integral id {value!r} at row {i}"
                ) from None
            bad[i] = True
            continue
        if not np.iinfo(np.int64).min <= as_int <= np.iinfo(np.int64).max:
            if mode == "strict":
                raise EdgeOverflowError(f"{name}: id {value!r} exceeds int64 range")
            bad[i] = True
            continue
        out[i] = as_int
    report.bump("malformed", int(bad.sum()))
    return out, bad


def sanitize_edges(
    src,
    dst,
    num_vertices: int | None = None,
    mode: str = "strict",
) -> tuple[np.ndarray, np.ndarray, DropReport]:
    """Validate endpoint arrays; returns clean int64 columns + a report.

    Checks, in order: coercibility to int64 (NaN/inf/fractional rows,
    int64 overflow), non-negative ids, and — when ``num_vertices`` is
    given — the upper range bound.  ``strict`` raises the typed error of
    the *first* offense; ``lenient`` drops each offending row (an edge
    is dropped when **either** endpoint is bad — half an edge is
    meaningless) and counts it in the :class:`DropReport`.
    """
    _check_mode(mode)
    report = DropReport()
    u = np.asarray(src)
    v = np.asarray(dst)
    if u.shape != v.shape or u.ndim != 1:
        raise MalformedEdgeError(
            f"src/dst must be 1-D arrays of equal length, "
            f"got shapes {u.shape} and {v.shape}"
        )
    u, bad_u = _to_int64_column(u, "src", mode, report)
    v, bad_v = _to_int64_column(v, "dst", mode, report)
    bad = bad_u | bad_v
    negative = ~bad & ((u < 0) | (v < 0))
    if negative.any():
        if mode == "strict":
            i = int(np.flatnonzero(negative)[0])
            raise VertexRangeError(
                f"negative vertex id in edge ({u[i]}, {v[i]}) at row {i}"
            )
        report.bump("negative", int(negative.sum()))
        bad |= negative
    if num_vertices is not None:
        out_of_range = ~bad & ((u >= num_vertices) | (v >= num_vertices))
        if out_of_range.any():
            if mode == "strict":
                i = int(np.flatnonzero(out_of_range)[0])
                raise VertexRangeError(
                    f"vertex id {max(int(u[i]), int(v[i]))} out of range for "
                    f"num_vertices={num_vertices} at row {i}"
                )
            report.bump("out_of_range", int(out_of_range.sum()))
            bad |= out_of_range
    if bad.any():
        keep = ~bad
        u = np.ascontiguousarray(u[keep])
        v = np.ascontiguousarray(v[keep])
    report.kept = int(u.size)
    return u, v, report
