"""Retrying task execution with per-task deadlines and result validation.

:func:`run_reliable` is the fault-tolerant replacement for the naive
``pool.map`` stage driver in :mod:`repro.core.distributed`.  It maps a
picklable worker over a task list and survives the three ways a real
shard task dies:

* **crash** — the worker process exits without returning (``kill -9``,
  OOM, a segfault in native code).  The pool breaks
  (``BrokenProcessPool``); every task that had not delivered a result is
  resubmitted to a fresh pool.
* **hang** — the worker never returns.  Each attempt runs under
  ``task_timeout`` seconds; tasks still pending at the deadline are
  declared timed out, the pool's processes are terminated (a hung worker
  never honors a graceful shutdown), and the stragglers are resubmitted.
* **corruption** — the worker returns, but the payload fails the
  caller's ``validate`` hook (schema or checksum mismatch).  The result
  is quarantined and the shard re-run, exactly like a failure.

Retries back off exponentially (``backoff_base * backoff_factor**n``,
capped) and are counted in :class:`RetryStats` so the reliability cost
is measurable (`StageTimes.counters` in the distributed driver).  When a
task keeps failing past ``max_retries`` the run raises
:class:`ShardTaskError` chained from the last underlying exception — a
clear, single error naming the stage, the task, and every failure
reason, instead of a bare ``BrokenProcessPool`` surfacing at an
arbitrary ``.result()`` call.

Determinism: workers are pure functions of their task payload, so
re-running a shard after any fault reproduces the exact bytes the
fault-free run produces — retries never change the final merged result
(the chaos gate of ``tests/test_reliability_retry.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from .faults import FaultInjector

__all__ = [
    "RetryPolicy",
    "RetryStats",
    "ShardTaskError",
    "TaskFailure",
    "run_reliable",
]


class ShardTaskError(RuntimeError):
    """A stage task failed on every allowed attempt.

    Raised chained (``from``) the last underlying exception so the
    original traceback — the injected crash, the pickled worker
    exception, the pool break — stays attached.
    """


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt of one task: who, why, and the exception."""

    index: int
    reason: str  # "crash" | "timeout" | "raise" | "invalid"
    attempt: int
    error: BaseException | None = None

    def describe(self) -> str:
        """Short human-readable form used in logs and raised messages."""
        detail = f": {self.error}" if self.error is not None else ""
        return f"task {self.index} {self.reason} (attempt {self.attempt}){detail}"


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retry loop.

    Attributes
    ----------
    max_retries:
        Additional attempts after the first (0 disables retrying — any
        failure raises immediately, the pre-PR-8 behavior but with a
        clear chained error).
    task_timeout:
        Per-attempt deadline in seconds for each task (``None`` = wait
        forever).  All tasks of an attempt start together on a pool
        sized to the attempt, so each task gets the full window.
    backoff_base, backoff_factor, backoff_max:
        Sleep ``min(base * factor**(attempt-1), max)`` seconds before
        attempt ``attempt`` — gives a transiently sick machine (page
        cache storm, OOM-killer sweep) time to recover.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        """Validate operator-supplied knobs eagerly."""
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {self.task_timeout}"
            )

    def backoff(self, attempt: int) -> float:
        """Sleep before the given (1-based) retry attempt."""
        if attempt <= 0:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )


@dataclass
class RetryStats:
    """Counters the retry loop accumulates for one stage run."""

    attempts: int = 0  # task executions started (successes + failures)
    retries: int = 0  # task executions past attempt 0
    crashes: int = 0
    timeouts: int = 0
    raises: int = 0
    invalid: int = 0
    backoff_seconds: float = 0.0
    failures: list[TaskFailure] = field(default_factory=list)

    def record(self, failure: TaskFailure) -> None:
        """Count one failed attempt under its reason."""
        self.failures.append(failure)
        if failure.reason == "crash":
            self.crashes += 1
        elif failure.reason == "timeout":
            self.timeouts += 1
        elif failure.reason == "invalid":
            self.invalid += 1
        else:
            self.raises += 1

    def to_counters(self) -> dict[str, int]:
        """Flat integer view for ``StageTimes.counters`` / bench JSON."""
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "raises": self.raises,
            "invalid": self.invalid,
        }


def _reliable_call(payload):
    """Module-level (picklable) wrapper executed inside the pool worker.

    Applies entry faults (crash/hang/slow), runs the real worker, then
    applies payload-corruption faults to the result before it is pickled
    back — modelling wire corruption after the node computed its
    checksum.
    """
    worker, task, stage, node, num_nodes, attempt, inject, in_process = payload
    if inject is not None:
        inject.pre_task(stage, node, num_nodes, attempt, in_process)
    result = worker(task)
    if inject is not None:
        result = inject.post_task(stage, node, num_nodes, attempt, result)
    return result


def _kill_pool(pool) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``shutdown(wait=True)`` would block forever on a hung worker, so the
    pool's processes are terminated first.  ``_processes`` is a CPython
    implementation detail; guarded so an interpreter without it still
    gets the non-blocking shutdown.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead process race
                pass
    pool.shutdown(wait=False, cancel_futures=True)


def _serial_attempt(indices, tasks, worker, stage, num_tasks, attempt, inject,
                    results, stats):
    """One attempt over ``indices`` executed inline (no pool, no deadline)."""
    failures: list[TaskFailure] = []
    for i in indices:
        stats.attempts += 1
        if attempt:
            stats.retries += 1
        try:
            results[i] = _reliable_call(
                (worker, tasks[i], stage, i, num_tasks, attempt, inject, False)
            )
        except Exception as exc:
            failures.append(TaskFailure(i, "raise", attempt, exc))
    return failures


def _pooled_attempt(indices, tasks, worker, stage, num_tasks, attempt, inject,
                    backend, timeout, results, stats):
    """One attempt over ``indices`` on a fresh pool with a deadline.

    A fresh pool per attempt is deliberate: after a crash the old pool is
    broken, after a hang its workers are occupied, and pool startup
    (~ms on fork) is noise against a shard pipeline.  The pool is sized
    to the attempt so every task starts immediately and the deadline is
    a true per-task window.
    """
    in_process = backend == "process"
    pool_cls = ProcessPoolExecutor if in_process else ThreadPoolExecutor
    failures: list[TaskFailure] = []
    pool = pool_cls(max_workers=len(indices))
    dirty = False
    try:
        future_of = {}
        for i in indices:
            stats.attempts += 1
            if attempt:
                stats.retries += 1
            payload = (worker, tasks[i], stage, i, num_tasks, attempt, inject,
                       in_process)
            future_of[pool.submit(_reliable_call, payload)] = i
        pending = set(future_of)
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                for fut in pending:
                    failures.append(TaskFailure(future_of[fut], "timeout", attempt))
                dirty = True
                break
            done, pending = wait(pending, timeout=remaining,
                                 return_when=FIRST_EXCEPTION)
            for fut in done:
                i = future_of[fut]
                exc = fut.exception()
                if exc is None:
                    results[i] = fut.result()
                    continue
                # a broken pool surfaces on every in-flight future; those
                # tasks never misbehaved themselves — they are crash
                # casualties and are simply resubmitted
                reason = "crash" if _is_pool_break(exc) else "raise"
                failures.append(TaskFailure(i, reason, attempt, exc))
                dirty = True
    finally:
        if dirty:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)
    return failures


def _is_pool_break(exc: BaseException) -> bool:
    """Whether an exception means the pool itself died (vs the task raising)."""
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(exc, (BrokenProcessPool, BrokenPipeError, EOFError))


def run_reliable(
    tasks,
    worker,
    policy: RetryPolicy | None = None,
    parallel: bool = True,
    backend: str = "thread",
    stage: str = "stage",
    validate=None,
    inject: FaultInjector | None = None,
    stats: RetryStats | None = None,
):
    """Map ``worker`` over ``tasks`` with retries, deadlines, validation.

    Parameters
    ----------
    tasks:
        Picklable task payloads; task ``i``'s node id for fault-injection
        victim selection is its index.
    worker:
        Module-level picklable function of one task.
    policy:
        :class:`RetryPolicy` (default: 2 retries, no deadline).
    parallel / backend:
        Mirror ``_run_stage``: pooled ``"thread"``/``"process"``
        execution, or inline when ``parallel`` is false or there is a
        single task.  Deadlines require a pool (inline execution cannot
        preempt); the inline path still retries raises and validation
        failures.
    validate:
        Optional hook ``validate(result, index) -> str | None`` run on
        the coordinator after each task completes; a non-None string
        quarantines the result (reason ``"invalid"``) and re-runs that
        task.
    inject:
        Optional :class:`FaultInjector` for deterministic chaos runs.
    stats:
        Optional :class:`RetryStats` to accumulate into (a fresh one is
        created otherwise; inspect via the returned list's driver).

    Returns the results in task order.  Raises :class:`ShardTaskError`
    when any task exhausts its attempts.
    """
    policy = policy or RetryPolicy()
    stats = stats if stats is not None else RetryStats()
    num_tasks = len(tasks)
    results: list = [None] * num_tasks
    pending = list(range(num_tasks))
    pooled = parallel and num_tasks > 1
    attempt = 0
    last_error: BaseException | None = None
    while pending:
        if attempt > policy.max_retries:
            recent = stats.failures[-len(pending):]
            raise ShardTaskError(
                f"stage {stage!r}: {len(pending)} task(s) failed after "
                f"{policy.max_retries + 1} attempts: "
                + "; ".join(f.describe() for f in recent)
            ) from last_error
        if attempt:
            pause = policy.backoff(attempt)
            stats.backoff_seconds += pause
            if pause > 0:
                time.sleep(pause)
        if pooled:
            failures = _pooled_attempt(
                pending, tasks, worker, stage, num_tasks, attempt, inject,
                backend, policy.task_timeout, results, stats,
            )
        else:
            failures = _serial_attempt(
                pending, tasks, worker, stage, num_tasks, attempt, inject,
                results, stats,
            )
        failed = {f.index for f in failures}
        if validate is not None:
            for i in pending:
                if i in failed:
                    continue
                problem = validate(results[i], i)
                if problem:
                    results[i] = None
                    failures.append(
                        TaskFailure(i, "invalid", attempt,
                                    ValueError(f"{stage}: {problem}"))
                    )
                    failed.add(i)
        for failure in failures:
            stats.record(failure)
            if failure.error is not None:
                last_error = failure.error
        pending = [i for i in pending if i in failed]
        attempt += 1
    return results
