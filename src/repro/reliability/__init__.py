"""Fault tolerance for the CLUGP runtime.

Four pieces, one goal — worker death, stragglers, corrupt payloads, and
garbage input are *normal operating conditions*, not crashes:

* :mod:`~repro.reliability.retry` — retrying stage execution with
  per-task deadlines, pool kill/rebuild, and coordinator-side result
  validation (:func:`run_reliable`);
* :mod:`~repro.reliability.checkpoint` — versioned checksummed atomic
  snapshots plus a write-ahead batch journal for bit-identical
  :meth:`PartitionService.resume`;
* :mod:`~repro.reliability.faults` — deterministic seed-driven chaos
  (:class:`FaultInjector`) so the recovery paths run in CI;
* :mod:`~repro.reliability.ingest` — strict/lenient edge sanitization
  with typed errors (:func:`sanitize_edges`).

See ``docs/reliability.md`` for the operator guide and DESIGN.md §9 for
the invariants.
"""

from .checkpoint import (
    BatchJournal,
    CheckpointError,
    CheckpointManager,
    read_checkpoint,
    write_checkpoint,
)
from .faults import FAULT_KINDS, FaultInjector, FaultSpecError, InjectedCrash
from .ingest import (
    INGEST_MODES,
    DropReport,
    EdgeOverflowError,
    IngestError,
    MalformedEdgeError,
    TruncatedPayloadError,
    VertexRangeError,
    sanitize_edges,
)
from .retry import RetryPolicy, RetryStats, ShardTaskError, TaskFailure, run_reliable

__all__ = [
    "BatchJournal",
    "CheckpointError",
    "CheckpointManager",
    "read_checkpoint",
    "write_checkpoint",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpecError",
    "InjectedCrash",
    "INGEST_MODES",
    "DropReport",
    "EdgeOverflowError",
    "IngestError",
    "MalformedEdgeError",
    "TruncatedPayloadError",
    "VertexRangeError",
    "sanitize_edges",
    "RetryPolicy",
    "RetryStats",
    "ShardTaskError",
    "TaskFailure",
    "run_reliable",
]
