"""Versioned, checksummed, atomic checkpoints and a write-ahead journal.

The :class:`~repro.service.PartitionService` holds state that is
expensive to lose: a warm :class:`~repro.core.clustering.ClusteringState`
that never restarts, the persisted game equilibrium, and the served
edge->partition buffers.  This module gives it durability with two
complementary pieces:

**Checkpoint files** (:func:`write_checkpoint` / :func:`read_checkpoint`)
    A self-describing container: an 8-byte magic (``CLUGPCK1``), a
    format version, the payload length, a SHA-256 digest, and a payload
    of raw ``npy`` frames (one per state array — no zip container, so
    serialisation is a straight memcpy) plus a JSON metadata blob.  Writes
    go to a temp file in the same directory, ``fsync``, then
    ``os.replace`` — a reader never observes a half-written checkpoint,
    and a crash mid-write leaves the previous checkpoint intact.  Reads
    verify magic, version, length, and digest; any mismatch raises
    :class:`CheckpointError` instead of returning silent garbage.

**The write-ahead batch journal** (:class:`BatchJournal`)
    Checkpointing every batch would put an O(state) write on the ingest
    hot path, so checkpoints are taken every ``checkpoint_every``
    batches and the batches in between are journaled *before* they are
    applied: each record carries the batch index, the endpoint arrays,
    and a CRC-32.  :meth:`BatchJournal.replay` returns every complete
    record and tolerates a truncated tail (the batch that was being
    written when the process died — its edges were never acknowledged,
    so dropping it is correct).  Recovery = load the newest valid
    checkpoint, then re-ingest every journaled batch with an index at or
    past the checkpoint's — replay is idempotent because batch indices
    are compared, so a crash *between* writing a checkpoint and
    resetting the journal double-counts nothing.

:class:`CheckpointManager` rotates ``checkpoint-<batch>.ckpt`` files in
a directory (keeping the newest ``keep``) and falls back to the
next-oldest checkpoint when the newest is corrupt — a torn disk never
brickes recovery, it only costs more journal replay.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import struct
import zlib

import numpy as np

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "BatchJournal",
    "JOURNAL_SYNC_MODES",
    "write_checkpoint",
    "read_checkpoint",
]

logger = logging.getLogger("repro.reliability")

_MAGIC = b"CLUGPCK1"
_VERSION = 1
_HEADER = struct.Struct("<8sIQ32s")  # magic, version, payload len, sha256

_JOURNAL_MAGIC = 0x434C4A31  # "CLJ1"
_RECORD_HEADER = struct.Struct("<IqqI")  # magic, batch index, m, crc32

_META_LEN = struct.Struct("<Q")
_FRAME_NAME = struct.Struct("<H")

#: journal fsync policies — see :class:`BatchJournal`.
JOURNAL_SYNC_MODES = ("commit", "always")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, or fails verification."""


def _fsync_dir(directory: str) -> None:
    """Best-effort fsync of a directory so a rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


def write_checkpoint(path: str | os.PathLike, arrays: dict, meta: dict) -> None:
    """Atomically write ``arrays`` + JSON-able ``meta`` to ``path``.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) and is fsynced before the rename, so
    after this function returns the checkpoint is durable and readers
    only ever see the old or the new file — never a torn one.
    """
    path = os.fspath(path)
    payload_io = io.BytesIO()
    meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload_io.write(_META_LEN.pack(len(meta_bytes)))
    payload_io.write(meta_bytes)
    for name, array in arrays.items():
        encoded = name.encode("utf-8")
        payload_io.write(_FRAME_NAME.pack(len(encoded)))
        payload_io.write(encoded)
        np.lib.format.write_array(
            payload_io, np.ascontiguousarray(array), allow_pickle=False
        )
    payload = payload_io.getvalue()
    header = _HEADER.pack(
        _MAGIC, _VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as f:
        f.write(header)
        f.write(payload)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def read_checkpoint(path: str | os.PathLike) -> tuple[dict, dict]:
    """Read and verify a checkpoint; returns ``(arrays, meta)``.

    Raises :class:`CheckpointError` on any mismatch — wrong magic,
    unknown version, truncated payload, or digest failure.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as f:
            header = f.read(_HEADER.size)
            if len(header) < _HEADER.size:
                raise CheckpointError(f"{path}: truncated header")
            magic, version, length, digest = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise CheckpointError(f"{path}: bad magic {magic!r}")
            if version != _VERSION:
                raise CheckpointError(
                    f"{path}: unsupported checkpoint version {version}"
                )
            payload = f.read(length + 1)  # +1 detects trailing garbage
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    if len(payload) != length:
        raise CheckpointError(
            f"{path}: payload length {len(payload)} != declared {length}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"{path}: SHA-256 mismatch (corrupt payload)")
    try:
        buf = io.BytesIO(payload)
        (meta_len,) = _META_LEN.unpack(buf.read(_META_LEN.size))
        meta = json.loads(buf.read(meta_len).decode("utf-8"))
        arrays = {}
        while buf.tell() < len(payload):
            (name_len,) = _FRAME_NAME.unpack(buf.read(_FRAME_NAME.size))
            name = buf.read(name_len).decode("utf-8")
            arrays[name] = np.lib.format.read_array(buf, allow_pickle=False)
    except Exception as exc:
        raise CheckpointError(f"{path}: undecodable payload: {exc}") from exc
    return arrays, meta


class CheckpointManager:
    """Rotating checkpoints in one directory, newest-first recovery.

    Files are named ``checkpoint-<batch:08d>.ckpt`` so lexicographic and
    batch order agree; :meth:`save` prunes everything but the newest
    ``keep`` files, and :meth:`latest` walks newest-to-oldest skipping
    (and logging) corrupt files, so a torn newest checkpoint degrades to
    the previous one plus more journal replay instead of failing
    recovery outright.
    """

    def __init__(self, directory: str | os.PathLike, keep: int = 2) -> None:
        """Create the manager (and the directory, if needed)."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = int(keep)
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, batch_index: int) -> str:
        """The canonical file path of the checkpoint taken at ``batch_index``."""
        return os.path.join(self.directory, f"checkpoint-{batch_index:08d}.ckpt")

    def _list(self) -> list[tuple[int, str]]:
        """All checkpoint files as ``(batch_index, path)``, oldest first."""
        out = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("checkpoint-") and name.endswith(".ckpt"):
                try:
                    batch = int(name[len("checkpoint-"):-len(".ckpt")])
                except ValueError:
                    continue
                out.append((batch, os.path.join(self.directory, name)))
        return out

    def save(self, batch_index: int, arrays: dict, meta: dict) -> str:
        """Write the checkpoint for ``batch_index`` and prune old files."""
        path = self.path_for(batch_index)
        write_checkpoint(path, arrays, meta)
        existing = self._list()
        for _, old in existing[: max(0, len(existing) - self.keep)]:
            try:
                os.remove(old)
            except OSError:  # pragma: no cover - concurrent cleanup race
                pass
        return path

    def latest(self) -> tuple[int, dict, dict] | None:
        """Newest loadable checkpoint as ``(batch_index, arrays, meta)``.

        Corrupt files are skipped with a warning; returns ``None`` when
        no checkpoint in the directory verifies.
        """
        for batch, path in reversed(self._list()):
            try:
                arrays, meta = read_checkpoint(path)
            except CheckpointError as exc:
                logger.warning("skipping corrupt checkpoint %s: %s", path, exc)
                continue
            return batch, arrays, meta
        return None


class BatchJournal:
    """Append-only write-ahead log of ``(batch_index, u, v)`` edge batches.

    Records are CRC-checked and length-framed; :meth:`replay` stops at
    the first incomplete or corrupt record, treating it as the torn tail
    of the write that was in flight when the process died.  The journal
    is reset (truncated) right after each successful checkpoint; batch
    indices make replay idempotent if the process dies between those two
    steps.

    ``sync`` picks the fsync policy.  ``"commit"`` (the default) flushes
    every append to the file — durable against a *process* crash, since
    the bytes are in the kernel page cache — and defers ``fsync`` to the
    commit points (:meth:`sync`, :meth:`reset`, :meth:`close`), keeping
    the per-batch cost to one ``write(2)``.  ``"always"`` additionally
    fsyncs every append, surviving power loss at ~1ms per batch.
    """

    def __init__(self, path: str | os.PathLike, sync: str = "commit") -> None:
        """Open (or create) the journal at ``path`` for appending."""
        if sync not in JOURNAL_SYNC_MODES:
            raise ValueError(
                f"sync must be one of {JOURNAL_SYNC_MODES}, got {sync!r}"
            )
        self.path = os.fspath(path)
        self.sync_mode = sync
        self._f = open(self.path, "ab")

    def append(self, batch_index: int, u: np.ndarray, v: np.ndarray) -> None:
        """Durably append one batch *before* it is applied to the service."""
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        body = u.tobytes() + v.tobytes()
        header = _RECORD_HEADER.pack(
            _JOURNAL_MAGIC, batch_index, u.size, zlib.crc32(body)
        )
        self._f.write(header)
        self._f.write(body)
        self._f.flush()
        if self.sync_mode == "always":
            os.fsync(self._f.fileno())

    def sync(self) -> None:
        """Force the appended records to stable storage (fsync)."""
        self._f.flush()
        os.fsync(self._f.fileno())

    def replay(self) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Every complete journaled batch, in append order.

        A truncated or corrupt tail ends the replay silently (with a log
        line) — that record was never acknowledged to the feed, so the
        upstream will resend it.
        """
        out: list[tuple[int, np.ndarray, np.ndarray]] = []
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except OSError:
            return out
        pos = 0
        while pos + _RECORD_HEADER.size <= len(raw):
            magic, batch, m, crc = _RECORD_HEADER.unpack_from(raw, pos)
            body_start = pos + _RECORD_HEADER.size
            body_end = body_start + 16 * m
            if magic != _JOURNAL_MAGIC or m < 0 or body_end > len(raw):
                logger.warning(
                    "journal %s: torn record at offset %d; dropping tail",
                    self.path, pos,
                )
                break
            body = raw[body_start:body_end]
            if zlib.crc32(body) != crc:
                logger.warning(
                    "journal %s: CRC mismatch at offset %d; dropping tail",
                    self.path, pos,
                )
                break
            u = np.frombuffer(body, dtype=np.int64, count=m).copy()
            v = np.frombuffer(body, dtype=np.int64, count=m, offset=8 * m).copy()
            out.append((batch, u, v))
            pos = body_end
        return out

    def reset(self) -> None:
        """Truncate the journal (called right after a successful checkpoint)."""
        self._f.truncate(0)
        self._f.seek(0)
        self._f.flush()
        os.fsync(self._f.fileno())

    def close(self) -> None:
        """Flush, fsync, and close the underlying file handle."""
        if not self._f.closed:
            try:
                self.sync()
            except OSError:  # pragma: no cover - disk gone at shutdown
                pass
            self._f.close()

    def __enter__(self) -> "BatchJournal":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the handle."""
        self.close()
