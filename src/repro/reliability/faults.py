"""Deterministic, seed-driven fault injection for chaos runs.

A serving deployment meets worker death, stragglers, and corrupt payloads
as *normal inputs*; reproducing those conditions in CI requires the
faults themselves to be reproducible.  :class:`FaultInjector` is a frozen
value object (picklable — it crosses the process boundary inside task
payloads) whose decisions are pure functions of ``(seed, stage, node)``:

* at most **one victim node per stage** (the chaos gate of
  ``benchmarks/bench_reliability.py``), chosen by a SplitMix64 hash of
  the stage name;
* the fault *kind* for that victim is drawn from the enabled ``kinds``
  by a second hash, so a seed sweep exercises every kind;
* by default a fault fires only on **attempt 0** — the retry layer's
  resubmission then sees a healthy worker, which is what makes the
  chaos suite terminate deterministically.  ``persist=True`` keeps the
  fault firing on every attempt (used by the retry-exhaustion tests).

Kinds
-----
``crash``
    Process backend: the worker calls ``os._exit`` (a ``kill -9``
    stand-in — no exception, no cleanup, the pool breaks).  Thread or
    serial execution cannot kill the host process, so the crash
    degrades to raising :class:`InjectedCrash`.
``hang``
    The worker sleeps ``hang_seconds`` before doing its work — past any
    sane per-task deadline, so the retry layer times it out and kills
    the pool.
``slow``
    A straggler: the worker sleeps ``slow_seconds`` and then completes
    normally.  Exercises deadline headroom without triggering retries.
``corrupt``
    The worker flips bytes in its result payload *after* the payload's
    checksum was computed (wire corruption).  Only applied to results
    that carry a ``checksum`` attribute (:class:`~repro.core.
    partitioner.ClusterSummary`); the coordinator's validation
    quarantines the summary and re-runs the shard.

Injectors are built from a compact spec string (``--inject-faults`` /
``CLUGP_INJECT_FAULTS`` / ``ClugpConfig.reliability.inject_faults``)::

    crash,hang                  # both kinds, seed 0
    crash,seed=7                # crash only, seed 7
    hang,seed=3,hang_seconds=2  # tune the hang length
    crash,persist               # fire on every attempt (never recovers)
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

from .._util import splitmix64

__all__ = ["FAULT_KINDS", "FaultInjector", "InjectedCrash", "FaultSpecError"]

FAULT_KINDS = ("crash", "hang", "slow", "corrupt")

#: environment variable overriding any configured fault spec
ENV_SPEC = "CLUGP_INJECT_FAULTS"


class InjectedCrash(RuntimeError):
    """The thread/serial stand-in for a worker process dying."""


class FaultSpecError(ValueError):
    """An ``--inject-faults`` / ``CLUGP_INJECT_FAULTS`` spec is malformed."""


def _mix(*parts: int) -> int:
    """Fold integer parts into one 64-bit value via SplitMix64 chaining."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = int(splitmix64((acc ^ (part & 0xFFFFFFFFFFFFFFFF)) & 0xFFFFFFFFFFFFFFFF))
    return acc


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic chaos: decides, per (stage, node, attempt), which
    fault (if any) a worker suffers.  See the module docstring."""

    kinds: tuple[str, ...] = ("crash", "hang")
    seed: int = 0
    hang_seconds: float = 30.0
    slow_seconds: float = 0.25
    persist: bool = False

    def __post_init__(self) -> None:
        """Validate the enabled kinds eagerly (specs are user input)."""
        if not self.kinds:
            raise FaultSpecError("fault spec enables no fault kinds")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_spec(cls, spec: str | None, honor_env: bool = True) -> "FaultInjector | None":
        """Parse a spec string; ``None``/empty means no injection.

        ``honor_env`` lets ``CLUGP_INJECT_FAULTS`` override the given
        spec, so chaos runs can be switched on without touching config.
        """
        if honor_env:
            env = os.environ.get(ENV_SPEC, "").strip()
            if env:
                spec = env
        if not spec:
            return None
        kinds: list[str] = []
        kwargs: dict = {}
        for raw in spec.split(","):
            token = raw.strip().lower()
            if not token:
                continue
            if "=" in token:
                key, _, value = token.partition("=")
                key = key.strip()
                try:
                    if key == "seed":
                        kwargs["seed"] = int(value)
                    elif key == "hang_seconds":
                        kwargs["hang_seconds"] = float(value)
                    elif key == "slow_seconds":
                        kwargs["slow_seconds"] = float(value)
                    else:
                        raise FaultSpecError(
                            f"unknown fault option {key!r} in spec {spec!r}"
                        )
                except ValueError as exc:
                    if isinstance(exc, FaultSpecError):
                        raise
                    raise FaultSpecError(
                        f"bad value for {key!r} in fault spec {spec!r}: {value!r}"
                    ) from None
            elif token == "persist":
                kwargs["persist"] = True
            else:
                kinds.append(token)
        if not kinds:
            raise FaultSpecError(
                f"fault spec {spec!r} names no fault kinds (expected e.g. 'crash,hang')"
            )
        return cls(kinds=tuple(kinds), **kwargs)

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #

    def decide(self, stage: str, node: int, num_nodes: int, attempt: int) -> str | None:
        """The fault (or None) for this worker — a pure function.

        Exactly one node per stage is the victim; its kind is drawn from
        the enabled set.  Attempts past 0 are fault-free unless
        ``persist`` is set.
        """
        if attempt > 0 and not self.persist:
            return None
        if num_nodes <= 0:
            return None
        h = _mix(self.seed, zlib.crc32(stage.encode("utf-8")))
        if node != h % num_nodes:
            return None
        return self.kinds[_mix(h) % len(self.kinds)]

    def pre_task(self, stage: str, node: int, num_nodes: int, attempt: int,
                 in_process: bool) -> None:
        """Apply crash/hang/slow faults at worker entry."""
        fault = self.decide(stage, node, num_nodes, attempt)
        if fault == "crash":
            if in_process:
                os._exit(17)  # the kill -9 stand-in: no unwinding, pool breaks
            raise InjectedCrash(
                f"injected crash: stage={stage!r} node={node} attempt={attempt}"
            )
        if fault == "hang":
            time.sleep(self.hang_seconds)
        elif fault == "slow":
            time.sleep(self.slow_seconds)

    def post_task(self, stage: str, node: int, num_nodes: int, attempt: int,
                  result):
        """Apply corruption faults to a finished worker's result payload."""
        if self.decide(stage, node, num_nodes, attempt) == "corrupt":
            _corrupt_result(result)
        return result

    def describe(self) -> str:
        """One-line human-readable form (logged by chaos drivers)."""
        extras = [f"seed={self.seed}"]
        if self.persist:
            extras.append("persist")
        return f"FaultInjector({','.join(self.kinds)},{','.join(extras)})"


def _corrupt_result(result) -> None:
    """Flip bytes in the first checksummed payload found in ``result``.

    Walks tuples/lists for an object with a ``checksum`` attribute (the
    shipped :class:`ClusterSummary`) and XORs a byte in its first
    non-empty array *without* refreshing the checksum — exactly what a
    corrupt wire transfer looks like to the coordinator's validator.
    Results without a checksummed payload are left untouched (nothing
    downstream could detect the corruption, so injecting it would turn
    the bit-identity chaos gate into a false failure).
    """
    stack = [result]
    while stack:
        obj = stack.pop()
        if isinstance(obj, (tuple, list)):
            stack.extend(obj)
            continue
        if hasattr(obj, "checksum"):
            for name in ("volume", "local_assignment", "boundary_vertices"):
                array = getattr(obj, name, None)
                if array is not None and getattr(array, "size", 0):
                    view = array.view("uint8")
                    view[0] ^= 0xFF
                    return
