"""Command-line interface: ``clugp <command>`` (or ``python -m repro.cli``).

Commands
--------
``partition``  partition a dataset or edge-list file with one algorithm
``compare``    run the full competitor set and print the quality table
``sweep``      replication factor vs number of partitions (Figure-3 style)
``datasets``   list the synthetic stand-in datasets
``pagerank``   partition + run PageRank on the GAS system layer
``run-app``    partition + execute any vertex program end to end on the
               partition-local GAS runtime (``run-app pagerank
               --partitioner clugp -k 8``)
``distribute`` shard the stream across ingest nodes and run the
               distributed CLUGP deployment (``distribute --num-nodes 8
               --merge-mode merged --backend process``)
``serve``      replay a dataset as a timed batch feed through the
               incremental :class:`~repro.service.PartitionService`
               (``serve --num-batches 50 --migration-cap 64``); see
               docs/service.md
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .analysis.report import compare_partitioners
from .analysis.metrics import quality_report
from .graph.datasets import DATASETS, load_dataset
from .graph.io import read_edgelist
from .graph.stream import EdgeStream
from .reliability.ingest import DropReport, IngestError
from .partitioners.registry import PARTITIONERS, make_partitioner
from .system import make_engine
from .system.network import NetworkModel
from .system.apps import APPS
from .system.apps.pagerank import pagerank

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``clugp`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="clugp",
        description="CLUGP: clustering-based vertex-cut partitioning (ICDE 2022 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dataset", default="uk", help="dataset alias (see `datasets`)")
    common.add_argument("--edgelist", default=None, help="edge-list file instead of a dataset")
    common.add_argument("--scale", type=float, default=0.2, help="dataset scale factor")
    common.add_argument("--seed", type=int, default=0, help="random seed")
    common.add_argument("-k", "--partitions", type=int, default=32, help="number of partitions")
    common.add_argument(
        "--ingest-mode",
        default="strict",
        choices=["strict", "lenient"],
        help="strict: abort on the first malformed edge-list row; "
        "lenient: drop bad rows and report the counts",
    )

    # chunked-ingestion machinery knobs, shared by the subcommands that
    # drive a chunk-capable pipeline (partition / distribute / serve)
    impl_common = argparse.ArgumentParser(add_help=False)
    impl_common.add_argument(
        "--chunk-impl",
        default="fast",
        choices=["fast", "reference", "jit"],
        help=(
            "chunked-ingestion implementation: 'fast' (adaptive numpy, "
            "default), 'reference' (sequential oracle) or 'jit' (compiled "
            "repro.kernels backend, degrading to 'fast' when unavailable); "
            "all three are bit-identical"
        ),
    )
    impl_common.add_argument(
        "--kernel-backend",
        default="auto",
        choices=["auto", "numba", "cc", "python", "none"],
        help="kernel backend --chunk-impl=jit / --game-impl=jit resolve "
        "(default: auto)",
    )
    impl_common.add_argument(
        "--game-impl",
        default="fast",
        choices=["fast", "reference", "jit"],
        help=(
            "pass-2 game engine: 'fast' (numpy adjacency-table rounds, "
            "default), 'reference' (per-neighbor oracle) or 'jit' (fused "
            "compiled rounds, degrading to 'fast' when unavailable); all "
            "three are bit-identical"
        ),
    )

    p_part = sub.add_parser(
        "partition", parents=[common, impl_common], help="run one partitioner"
    )
    p_part.add_argument(
        "--algorithm", default="clugp", choices=sorted(PARTITIONERS), help="algorithm"
    )
    p_part.add_argument("--output", default=None, help="write edge->partition ids to this file")
    p_part.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "ingest the stream as (N, 2) edge chunks (vectorized hot path; "
            "multi-pass algorithms buffer the stream and ignore N)"
        ),
    )

    sub.add_parser("compare", parents=[common], help="compare all algorithms")

    p_sweep = sub.add_parser(
        "sweep", parents=[common], help="RF vs number of partitions"
    )
    p_sweep.add_argument(
        "--k-values",
        default="4,16,64",
        help="comma-separated partition counts (default 4,16,64)",
    )
    p_sweep.add_argument(
        "--algorithms",
        default="hdrf,hashing,clugp",
        help="comma-separated algorithm names",
    )

    sub.add_parser("datasets", help="list dataset stand-ins")

    p_pr = sub.add_parser("pagerank", parents=[common], help="partition + simulate PageRank")
    p_pr.add_argument("--algorithm", default="clugp", choices=sorted(PARTITIONERS))
    p_pr.add_argument("--rtt-ms", type=float, default=10.0, help="network RTT in ms")
    p_pr.add_argument("--supersteps", type=int, default=30, help="max supersteps")
    p_pr.add_argument(
        "--mode",
        default="local",
        choices=["local", "global"],
        help="execution engine: partition-local runtime (measured costs) "
        "or the global-array oracle (modeled costs)",
    )

    p_app = sub.add_parser(
        "run-app",
        parents=[common],
        help="partition + execute a vertex program on the local GAS runtime",
    )
    p_app.add_argument("app", choices=sorted(APPS), help="vertex program to run")
    p_app.add_argument(
        "--partitioner", default="clugp", choices=sorted(PARTITIONERS),
        help="partitioning algorithm deployed under the runtime",
    )
    p_app.add_argument("--rtt-ms", type=float, default=10.0, help="network RTT in ms")
    p_app.add_argument("--supersteps", type=int, default=30, help="max supersteps")
    p_app.add_argument(
        "--mode", default="local", choices=["local", "global"],
        help="execution engine (default: the partition-local runtime)",
    )
    p_app.add_argument(
        "--source", type=int, default=None,
        help="sssp source vertex (default: highest out-degree vertex)",
    )

    p_dist = sub.add_parser(
        "distribute",
        parents=[common, impl_common],
        help="run the distributed CLUGP deployment (Section III-C)",
    )
    p_dist.add_argument(
        "--num-nodes", type=int, default=4, help="ingest nodes (default 4)"
    )
    p_dist.add_argument(
        "--merge-mode",
        default="merged",
        choices=["independent", "merged"],
        help="combine shard results by concatenation (independent) or via "
        "the coordinator cluster-summary merge + global game (merged)",
    )
    p_dist.add_argument(
        "--backend",
        default="thread",
        choices=["thread", "process", "persistent"],
        help="executor the node pipelines run on (persistent = resident "
        "shared-memory worker processes with the pipelined merge path)",
    )
    p_dist.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="per-node chunked ingestion batch size",
    )
    p_dist.add_argument(
        "--compare-modes", action="store_true",
        help="run both merge modes and print the comparison table",
    )
    p_dist.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard-task deadline; a task past it is killed and retried",
    )
    p_dist.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max retries per failed/timed-out shard task (default 2)",
    )
    p_dist.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'crash,hang,seed=7' "
        "(kinds: crash, hang, slow, corrupt; chaos testing only)",
    )

    p_serve = sub.add_parser(
        "serve",
        parents=[common, impl_common],
        help="replay the stream as a batch feed through PartitionService",
    )
    p_serve.add_argument(
        "--num-batches", type=int, default=50,
        help="number of batches to split the stream into (default 50)",
    )
    p_serve.add_argument(
        "--migration-cap", type=int, default=None, metavar="N",
        help="max served-vertex moves per batch (default: unbounded)",
    )
    p_serve.add_argument(
        "--quality-every", type=int, default=10, metavar="N",
        help="collect RF/balance every N batches (costs O(E); default 10)",
    )
    p_serve.add_argument(
        "--oracle", action="store_true",
        help="also run the from-scratch pipeline at the end and report drift",
    )
    p_serve.add_argument(
        "--json", action="store_true",
        help="emit the per-batch stats and summary as JSON",
    )
    p_serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint the service into DIR (plus a write-ahead batch "
        "journal); enables crash recovery via --resume",
    )
    p_serve.add_argument(
        "--resume", action="store_true",
        help="resume from the newest checkpoint in --checkpoint-dir "
        "(replays the journal, then continues the feed where it stopped)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="checkpoint every N batches (default from config: 1); "
        "batches in between are journaled",
    )
    return parser


def _load_stream(args) -> EdgeStream:
    if args.edgelist:
        mode = getattr(args, "ingest_mode", "strict")
        report = DropReport()
        try:
            graph = read_edgelist(args.edgelist, mode=mode, report=report)
        except FileNotFoundError:
            raise SystemExit(
                f"clugp: edge-list file not found: {args.edgelist!r}"
            ) from None
        except IsADirectoryError:
            raise SystemExit(
                f"clugp: --edgelist expects a file, got a directory: "
                f"{args.edgelist!r}"
            ) from None
        except IngestError as exc:
            raise SystemExit(
                f"clugp: cannot read {args.edgelist!r}: {exc}\n"
                f"(--ingest-mode lenient drops malformed rows instead of "
                f"aborting)"
            ) from None
        except (UnicodeDecodeError, ValueError) as exc:
            raise SystemExit(
                f"clugp: {args.edgelist!r} is not a readable edge list: {exc}"
            ) from None
        if report.total_dropped:
            print(
                f"warning: dropped {report.total_dropped} malformed rows "
                f"from {args.edgelist}: {dict(report.dropped)}",
                file=sys.stderr,
            )
    else:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    return EdgeStream.from_graph(graph, order="natural")


def _impl_kwargs(args) -> dict:
    """Non-default --chunk-impl/--kernel-backend/--game-impl values as
    ctor kwargs.

    Only non-defaults are forwarded so algorithms without the knobs keep
    working untouched; passing a non-default to one of those raises a
    friendly error instead of a bare TypeError.
    """
    kwargs = {}
    if args.chunk_impl != "fast":
        kwargs["chunk_impl"] = args.chunk_impl
    if args.kernel_backend != "auto":
        kwargs["kernel_backend"] = args.kernel_backend
    if getattr(args, "game_impl", "fast") != "fast":
        kwargs["game_impl"] = args.game_impl
    return kwargs


def _cmd_partition(args) -> int:
    stream = _load_stream(args)
    impl_kwargs = _impl_kwargs(args)
    try:
        partitioner = make_partitioner(
            args.algorithm, args.partitions, seed=args.seed, **impl_kwargs
        )
    except TypeError:
        raise SystemExit(
            f"--chunk-impl/--kernel-backend/--game-impl are not supported "
            f"by {args.algorithm!r} (chunk-capable algorithms: hdrf, "
            f"greedy, clugp and its ablations; --game-impl: clugp family "
            f"only)"
        )
    if partitioner.preferred_order != "natural":
        stream = stream.reordered(partitioner.preferred_order, seed=args.seed)
    if args.chunk_size is not None:
        assignment = partitioner.partition_chunked(stream, chunk_size=args.chunk_size)
    else:
        assignment = partitioner.partition(stream)
    report = quality_report(
        assignment,
        algorithm=partitioner.name,
        state_memory_bytes=partitioner.state_memory_bytes(stream),
    )
    print(
        f"algorithm={report.algorithm} k={report.num_partitions} "
        f"|V|={report.num_vertices} |E|={report.num_edges}\n"
        f"replication_factor={report.replication_factor:.4f} "
        f"balance={report.relative_balance:.4f} mirrors={report.mirrors} "
        f"time={report.runtime_seconds:.3f}s"
    )
    if args.output:
        np.savetxt(args.output, assignment.edge_partition, fmt="%d")
        print(f"edge partition ids written to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    stream = _load_stream(args)
    names = ["hashing", "dbh", "greedy", "hdrf", "mint", "clugp"]
    partitioners = [make_partitioner(n, args.partitions, seed=args.seed) for n in names]
    table = compare_partitioners(
        partitioners, stream, title=f"k={args.partitions} on {args.dataset}"
    )
    print(table)
    return 0


def _cmd_sweep(args) -> int:
    from .bench.harness import rf_vs_partitions, series_table

    stream = _load_stream(args)
    k_values = [int(tok) for tok in args.k_values.split(",") if tok]
    algorithms = [tok.strip().lower() for tok in args.algorithms.split(",") if tok]
    unknown = [a for a in algorithms if a not in PARTITIONERS]
    if unknown:
        raise SystemExit(f"unknown algorithms: {unknown}; known: {sorted(PARTITIONERS)}")
    result = rf_vs_partitions(stream, k_values, algorithms=algorithms, seed=args.seed)
    print(series_table(result, title=f"RF vs k on {args.dataset}"))
    return 0


def _cmd_datasets(_args) -> int:
    print(f"{'alias':10s} {'kind':7s} {'paper |V|':>9s} {'paper |E|':>9s}  source")
    for spec in DATASETS.values():
        print(
            f"{spec.alias:10s} {spec.kind:7s} {spec.paper_vertices:>9s} "
            f"{spec.paper_edges:>9s}  {spec.source}"
        )
    return 0


def _deploy(stream, algorithm: str, args):
    """partition -> placement -> engine: the end-to-end deployment path."""
    partitioner = make_partitioner(algorithm, args.partitions, seed=args.seed)
    if partitioner.preferred_order != "natural":
        stream = stream.reordered(partitioner.preferred_order, seed=args.seed)
    assignment = partitioner.partition(stream)
    network = NetworkModel().with_rtt(args.rtt_ms / 1000.0)
    engine = make_engine(assignment, mode=args.mode, network=network)
    return partitioner, assignment, engine


def _cmd_pagerank(args) -> int:
    partitioner, assignment, engine = _deploy(_load_stream(args), args.algorithm, args)
    _, cost = pagerank(engine, max_supersteps=args.supersteps)
    print(
        f"algorithm={partitioner.name} k={args.partitions} mode={engine.mode} "
        f"RF={assignment.replication_factor():.3f}\n"
        f"supersteps={cost.num_supersteps} messages={cost.total_messages} "
        f"volume={cost.total_bytes / 1e6:.2f}MB\n"
        f"compute={cost.compute_seconds:.4f}s comm={cost.comm_seconds:.4f}s "
        f"total={cost.total_seconds:.4f}s (simulated)"
    )
    return 0


def _cmd_run_app(args) -> int:
    stream = _load_stream(args)
    partitioner, assignment, engine = _deploy(stream, args.partitioner, args)
    app = APPS[args.app]
    kwargs = {}
    if args.app == "sssp":
        source = args.source
        if source is None:
            source = int(np.bincount(stream.src, minlength=stream.num_vertices).argmax())
        kwargs["source"] = source
    if args.app == "label_propagation":
        kwargs["max_iters"] = args.supersteps
    else:
        kwargs["max_supersteps"] = args.supersteps
    values, cost = app(engine, **kwargs)
    print(
        f"app={args.app} algorithm={partitioner.name} k={args.partitions} "
        f"mode={engine.mode} RF={assignment.replication_factor():.3f}"
    )
    if args.app == "sssp":
        reached = int(np.isfinite(values).sum())
        print(f"source={kwargs['source']} reached={reached}/{values.size}")
    elif args.app in ("connected_components", "label_propagation"):
        print(f"distinct_labels={np.unique(values).size}")
    print(cost.summary() + " (simulated)")
    return 0


def _reliability_config(args):
    """Fold the distribute reliability flags into a ReliabilityConfig."""
    from .config import ReliabilityConfig
    from .reliability.faults import FaultInjector, FaultSpecError

    kwargs = {}
    if args.task_timeout is not None:
        if args.task_timeout <= 0:
            raise SystemExit(
                f"clugp: --task-timeout must be positive, got {args.task_timeout}"
            )
        kwargs["task_timeout"] = args.task_timeout
    if args.retries is not None:
        if args.retries < 0:
            raise SystemExit(f"clugp: --retries must be >= 0, got {args.retries}")
        kwargs["max_retries"] = args.retries
    if args.inject_faults:
        try:
            FaultInjector.from_spec(args.inject_faults, honor_env=False)
        except FaultSpecError as exc:
            raise SystemExit(f"clugp: bad --inject-faults spec: {exc}") from None
        kwargs["inject_faults"] = args.inject_faults
    return ReliabilityConfig(**kwargs)


def _cmd_distribute(args) -> int:
    from .analysis.report import distributed_modes_table
    from .config import ClugpConfig, GameConfig
    from .core.distributed import distributed_clugp

    stream = _load_stream(args)
    cfg = ClugpConfig(
        num_partitions=args.partitions,
        game=GameConfig(seed=args.seed, game_impl=args.game_impl),
        chunk_impl=args.chunk_impl,
        kernel_backend=args.kernel_backend,
        reliability=_reliability_config(args),
    )
    if args.compare_modes:
        rows = []
        for mode in ("independent", "merged"):
            result = distributed_clugp(
                stream,
                args.partitions,
                num_nodes=args.num_nodes,
                config=cfg,
                seed=args.seed,
                chunk_size=args.chunk_size,
                merge_mode=mode,
                backend=args.backend,
            )
            rows.append(result.to_dict())
        print(
            distributed_modes_table(
                rows,
                title=f"distributed CLUGP on {args.dataset}: "
                f"{args.num_nodes} nodes, k={args.partitions}",
            )
        )
        return 0
    result = distributed_clugp(
        stream,
        args.partitions,
        num_nodes=args.num_nodes,
        config=cfg,
        seed=args.seed,
        chunk_size=args.chunk_size,
        merge_mode=args.merge_mode,
        backend=args.backend,
    )
    print(result.summary())
    for node in result.nodes:
        print(
            f"  node {node.node}: edges={node.num_edges} "
            f"clusters={node.num_clusters} splits={node.splits} "
            f"game_rounds={node.game_rounds} time={node.seconds:.3f}s"
        )
    return 0


def _cmd_serve(args) -> int:
    import json as _json

    from .config import ClugpConfig, GameConfig, ReliabilityConfig
    from .reliability.checkpoint import CheckpointError
    from .service import PartitionService

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("clugp: --resume requires --checkpoint-dir")
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        raise SystemExit(
            f"clugp: --checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    stream = _load_stream(args)
    rel = ReliabilityConfig()
    if args.checkpoint_every is not None:
        rel = rel.with_(checkpoint_every=args.checkpoint_every)
    cfg = ClugpConfig(
        num_partitions=args.partitions,
        game=GameConfig(seed=args.seed, game_impl=args.game_impl),
        chunk_impl=args.chunk_impl,
        kernel_backend=args.kernel_backend,
        reliability=rel,
    )
    if args.resume:
        try:
            svc = PartitionService.resume(args.checkpoint_dir)
        except CheckpointError as exc:
            raise SystemExit(
                f"clugp: cannot resume from {args.checkpoint_dir!r}: {exc}"
            ) from None
        print(
            f"resumed at batch {svc.batch_index} "
            f"({svc.num_edges} edges already served)",
            file=sys.stderr,
        )
    else:
        svc = PartitionService(
            stream.num_vertices,
            cfg,
            migration_cap=args.migration_cap,
            expected_edges=stream.num_edges,
            quality_every=max(1, args.quality_every),
            checkpoint_dir=args.checkpoint_dir,
        )
    batch_size = max(1, stream.num_edges // max(1, args.num_batches))
    for batch_no, (src, dst) in enumerate(stream.batches(batch_size)):
        if batch_no < svc.batch_index:
            continue  # already served before the resume point
        stats = svc.ingest_pair(src, dst)
        if not args.json:
            rf = (
                f" rf={stats.replication_factor:.4f}"
                if stats.replication_factor is not None
                else ""
            )
            print(
                f"batch {stats.batch:4d}: +{stats.num_edges} edges "
                f"({stats.edges_per_second:,.0f} e/s) "
                f"frontier={stats.frontier_clusters}/{stats.clusters} "
                f"moves={stats.applied_moves}/{stats.candidate_moves} "
                f"churn={stats.churn_edges}{rf}"
            )
    summary = svc.summary()
    final = svc.assignment()
    summary["replication_factor"] = final.replication_factor()
    summary["relative_balance"] = final.relative_balance()
    if args.oracle:
        oracle_rf = svc.oracle_assignment().replication_factor()
        summary["rf_oracle"] = oracle_rf
        if oracle_rf > 0:
            summary["rf_drift"] = (
                summary["replication_factor"] - oracle_rf
            ) / oracle_rf
    if args.json:
        print(_json.dumps(
            {"summary": summary, "batches": [s.to_dict() for s in svc.history]},
            indent=2,
        ))
        return 0
    print(
        f"served {summary['num_edges']} edges in {summary['batches']} batches "
        f"({summary['edges_per_second']:,.0f} e/s sustained)\n"
        f"replication_factor={summary['replication_factor']:.4f} "
        f"balance={summary['relative_balance']:.4f} "
        f"moves={summary['applied_moves']} churn={summary['churn_edges']}"
    )
    if args.oracle:
        print(
            f"oracle_rf={summary['rf_oracle']:.4f} "
            f"drift={summary.get('rf_drift', 0.0):+.2%}"
        )
    return 0


_COMMANDS = {
    "partition": _cmd_partition,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "datasets": _cmd_datasets,
    "pagerank": _cmd_pagerank,
    "run-app": _cmd_run_app,
    "distribute": _cmd_distribute,
    "serve": _cmd_serve,
}


def main(argv=None) -> int:
    """CLI entry point: parse ``argv`` and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
