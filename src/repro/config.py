"""Configuration objects for the CLUGP pipeline.

The defaults mirror the experimental setup of the paper (Section VI-A):
``V_max = |E|/k``, imbalance factor ``tau = 1.0`` (the paper's Algorithm 1
uses the cap ``L_max = tau * |E| / k``; with tau exactly 1.0 the cap is the
perfectly balanced size, so we default to a small slack like the published
implementation does in practice), batch size 6400, 32 game threads, and the
normalization factor ``lambda`` at its Theorem-5 maximum.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from ._util import check_positive_int

__all__ = ["ClugpConfig", "GameConfig", "ReliabilityConfig"]


@dataclass(frozen=True)
class ReliabilityConfig:
    """Fault-tolerance knobs of the distributed and service runtimes.

    Attributes
    ----------
    max_retries:
        Additional attempts per failed/timed-out/invalid stage task
        (0 = fail fast on the first fault).
    task_timeout:
        Per-attempt deadline in seconds for each stage task on the
        pooled backends (``None`` = no deadline).
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff before each retry attempt:
        ``min(base * factor**(n-1), max)`` seconds.
    validate_summaries:
        Coordinator-side schema + checksum validation of every shipped
        :class:`~repro.core.partitioner.ClusterSummary`; corrupt ones
        are quarantined and their shard re-run.
    checkpoint_every:
        Service checkpoint cadence in batches (1 = every batch); the
        batches in between are covered by the write-ahead journal.
    checkpoint_keep:
        Rotated checkpoint files retained on disk.
    journal_sync:
        Write-ahead journal fsync policy — ``"commit"`` (default)
        flushes every append (durable against process crashes) and
        fsyncs only at checkpoint commit points; ``"always"`` fsyncs
        every append, surviving power loss at ~1ms/batch.
    inject_faults:
        Deterministic chaos spec (see :meth:`~repro.reliability.faults.
        FaultInjector.from_spec`), e.g. ``"crash,hang,seed=7"``; empty
        = no injection.  ``CLUGP_INJECT_FAULTS`` overrides it.
    ingest_mode:
        ``"strict"`` (typed errors on malformed edges) or ``"lenient"``
        (counted drops) for hardened ingestion paths.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    validate_summaries: bool = True
    checkpoint_every: int = 1
    checkpoint_keep: int = 2
    journal_sync: str = "commit"
    inject_faults: str = ""
    ingest_mode: str = "strict"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {self.task_timeout!r}"
            )
        check_positive_int(self.checkpoint_every, "checkpoint_every")
        check_positive_int(self.checkpoint_keep, "checkpoint_keep")
        if self.journal_sync not in ("commit", "always"):
            raise ValueError(
                f"journal_sync must be 'commit' or 'always', got {self.journal_sync!r}"
            )
        if self.ingest_mode not in ("strict", "lenient"):
            raise ValueError(
                f"ingest_mode must be 'strict' or 'lenient', got {self.ingest_mode!r}"
            )

    def with_(self, **kwargs) -> "ReliabilityConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class GameConfig:
    """Parameters of the cluster-partitioning potential game (Section V).

    Attributes
    ----------
    lambda_mode:
        ``"max"`` uses the Theorem-5 upper bound
        ``k^2 * sum(cut(c_i)) / (sum(|c_i|))^2`` (paper default),
        ``"balanced"`` solves Equation 15 iteratively from the current
        assignment, and ``"fixed"`` uses :attr:`lambda_value` directly.
    lambda_value:
        Normalization factor when ``lambda_mode == "fixed"``.
    relative_weight:
        Figure 11(b) knob ``w`` in (0, 1): the load term is scaled by
        ``w / (1 - w)`` on top of the chosen lambda. ``0.5`` leaves the two
        cost terms equally weighted, matching the paper default.
    max_rounds:
        Safety cap on best-response rounds; Theorem 6 bounds rounds by the
        total number of inter-cluster edges, but we stop far earlier in
        practice because each full round with no move terminates the game.
    batch_size:
        Number of clusters per parallel game task (paper default 6400).
    num_threads:
        Thread-pool width for the batched game (paper default 32).
    seed:
        Seed for the random initial cluster->partition assignment.
    game_impl:
        Pass-2 engine: ``"fast"`` (default, the numpy adjacency-table
        rounds), ``"reference"`` (the per-neighbor oracle loop) or
        ``"jit"`` (the fused-round :mod:`repro.kernels` kernel,
        degrading to ``"fast"`` when no backend is available).  All
        three are bit-identical — same move sequences, rounds, and
        potential traces.
    kernel_backend:
        Which kernel backend ``game_impl="jit"`` resolves — one of
        ``"auto"``, ``"numba"``, ``"cc"``, ``"python"``, ``"none"``.
        :class:`ClugpConfig` syncs its own ``kernel_backend`` into this
        field when it is left at ``"auto"``, so one outer knob steers
        both the chunked ingestion and the game.
    """

    lambda_mode: str = "max"
    lambda_value: float = 1.0
    relative_weight: float = 0.5
    max_rounds: int = 64
    batch_size: int = 6400
    num_threads: int = 4
    seed: int = 0
    game_impl: str = "fast"
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.lambda_mode not in ("max", "balanced", "fixed"):
            raise ValueError(
                f"lambda_mode must be 'max', 'balanced' or 'fixed', got {self.lambda_mode!r}"
            )
        if not 0.0 < self.relative_weight < 1.0:
            raise ValueError(
                f"relative_weight must be in (0, 1), got {self.relative_weight!r}"
            )
        check_positive_int(self.max_rounds, "max_rounds")
        check_positive_int(self.batch_size, "batch_size")
        check_positive_int(self.num_threads, "num_threads")
        if self.game_impl not in ("fast", "reference", "jit"):
            raise ValueError(
                f"game_impl must be 'fast', 'reference' or 'jit', "
                f"got {self.game_impl!r}"
            )
        if self.kernel_backend not in ("auto", "numba", "cc", "python", "none"):
            raise ValueError(
                f"kernel_backend must be one of 'auto', 'numba', 'cc', "
                f"'python', 'none', got {self.kernel_backend!r}"
            )

    def with_(self, **kwargs) -> "GameConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ClugpConfig:
    """Full CLUGP pipeline configuration (Sections III-V).

    Attributes
    ----------
    num_partitions:
        ``k``, the number of target partitions.
    max_cluster_volume:
        ``V_max``; ``None`` means the paper default ``|E| / k`` (floored to
        at least 1), computed when the stream length is known.
    imbalance_factor:
        ``tau >= 1.0``; pass-3 hard cap is ``L_max = tau * |E| / k``.
    enable_splitting:
        ``False`` gives the CLUGP-S ablation (Holl-style
        allocation-migration without the splitting operation, Figure 9).
    use_game:
        ``False`` gives the CLUGP-G ablation: clusters are assigned
        greedily, biggest cluster into the currently smallest partition.
    parallel_game:
        Whether pass 2 uses the batched thread-pool game (Section V-D) or
        the sequential round-robin best-response loop (Algorithm 3).
    game:
        The nested :class:`GameConfig`.
    chunk_impl:
        Ingestion machinery for the chunked passes 1 and 3: ``"fast"``
        (default, the adaptive numpy path), ``"reference"`` (the plain
        sequential oracle) or ``"jit"`` (compiled kernels from
        :mod:`repro.kernels`, degrading to ``"fast"`` when no backend is
        available).  All three are bit-identical.
    kernel_backend:
        Which kernel backend ``chunk_impl="jit"`` resolves — one of
        ``"auto"``, ``"numba"``, ``"cc"``, ``"python"``, ``"none"``.
        A non-default value also flows into ``game.kernel_backend``
        (unless the nested game config pinned its own), so one knob
        steers every compiled seam in the pipeline.
    reliability:
        The nested :class:`ReliabilityConfig` (retries, deadlines,
        checkpoint cadence, fault injection, ingest hardening).
    """

    num_partitions: int = 32
    max_cluster_volume: int | None = None
    imbalance_factor: float = 1.05
    enable_splitting: bool = True
    use_game: bool = True
    parallel_game: bool = False
    game: GameConfig = GameConfig()
    chunk_impl: str = "fast"
    kernel_backend: str = "auto"
    reliability: ReliabilityConfig = ReliabilityConfig()

    def __post_init__(self) -> None:
        check_positive_int(self.num_partitions, "num_partitions")
        if self.max_cluster_volume is not None:
            check_positive_int(self.max_cluster_volume, "max_cluster_volume")
        if not isinstance(self.reliability, ReliabilityConfig):
            raise ValueError(
                f"reliability must be a ReliabilityConfig, got {self.reliability!r}"
            )
        if self.imbalance_factor < 1.0:
            raise ValueError(
                f"imbalance_factor must be >= 1.0, got {self.imbalance_factor!r}"
            )
        if self.chunk_impl not in ("fast", "reference", "jit"):
            raise ValueError(
                f"chunk_impl must be 'fast', 'reference' or 'jit', "
                f"got {self.chunk_impl!r}"
            )
        if self.kernel_backend not in ("auto", "numba", "cc", "python", "none"):
            raise ValueError(
                f"kernel_backend must be one of 'auto', 'numba', 'cc', "
                f"'python', 'none', got {self.kernel_backend!r}"
            )
        # one outer knob steers both seams: a non-default pipeline
        # kernel_backend flows into the nested game config unless the
        # game config pinned its own backend explicitly
        if (
            self.kernel_backend != "auto"
            and self.game.kernel_backend == "auto"
        ):
            object.__setattr__(
                self, "game", self.game.with_(kernel_backend=self.kernel_backend)
            )

    def with_(self, **kwargs) -> "ClugpConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def resolve_vmax(self, num_edges: int) -> int:
        """Resolve ``V_max`` for a stream of ``num_edges`` edges.

        The paper (Section VI-A) sets ``V_max = |E| / k`` following the
        suggestion of Hollocou et al.  Cluster *volume* counts degree mass
        (each edge contributes 2), so the default still produces ~2k
        clusters on typical graphs.
        """
        if self.max_cluster_volume is not None:
            return self.max_cluster_volume
        return max(1, num_edges // self.num_partitions)

    def to_dict(self) -> dict:
        """JSON-safe nested dict — the checkpoint/metadata round-trip form."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClugpConfig":
        """Rebuild a config from :meth:`to_dict` output (exact round trip)."""
        data = dict(data)
        if isinstance(data.get("game"), dict):
            data["game"] = GameConfig(**data["game"])
        if isinstance(data.get("reliability"), dict):
            data["reliability"] = ReliabilityConfig(**data["reliability"])
        return cls(**data)
