"""Analytical replication-factor model of Section IV-B (Equations 3-9).

The paper bounds the replication factor of CLUGP's streaming clustering on
power-law graphs and proves it never exceeds Holl's (Theorems 1-2).  This
module implements the closed forms so the theory itself is testable and
usable for capacity planning:

* :func:`tail_fraction` — Equation 3: the fraction ``theta`` of vertices
  with degree >= d on a power-law graph with exponent ``alpha`` and
  minimum degree ``gamma``;
* :func:`min_degree_for_replicas_clugp` — Equation 8: the minimum degree a
  vertex must have to be split ``r`` times by CLUGP
  (``(V_max - 1)(1 - (1 - 1/(1+d_max))^{r-1}) + 2``);
* :func:`min_degree_for_replicas_holl` — Holl's counterpart ``r - 1``;
* :func:`replication_factor_upper_bound` — Equations 4-5: the worst-case
  RF of either algorithm obtained by summing the tail fractions.

Theorem 2 (``d_min^clugp(r) >= d_min^holl(r)``) and Theorem 1
(``RF_clugp <= RF_holl``) follow numerically from these forms; the test
suite checks both across wide parameter grids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check_positive_int

__all__ = [
    "tail_fraction",
    "min_degree_for_replicas_clugp",
    "min_degree_for_replicas_holl",
    "replication_factor_upper_bound",
    "PowerLawModel",
]


def tail_fraction(degree: float, alpha: float, gamma: float = 1.0) -> float:
    """Equation 3: fraction of vertices with degree >= ``degree``.

    ``theta = (gamma / (degree - 1)) ** (alpha - 1)``, clipped to [0, 1]
    (the formula exceeds 1 for degrees below ``gamma + 1``, where "all
    vertices" is the right answer).
    """
    if alpha <= 1.0:
        raise ValueError(f"alpha must exceed 1, got {alpha}")
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    if degree <= gamma:
        return 1.0
    return float(min(1.0, (gamma / (degree - 1.0)) ** (alpha - 1.0)))


def min_degree_for_replicas_clugp(r: int, vmax: int, dmax: int) -> float:
    """Equation 8: minimum degree for a vertex to reach ``r`` replicas
    under CLUGP's allocation-splitting-migration.

    For ``r <= 1`` the paper sets the degenerate values (1 for no replica,
    2 for one), identical to Holl.
    """
    check_positive_int(vmax, "vmax")
    check_positive_int(dmax, "dmax")
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    if r == 0:
        return 1.0
    if r == 1:
        return 2.0
    shrink = 1.0 - (1.0 - 1.0 / (1.0 + dmax)) ** (r - 1)
    return (vmax - 1.0) * shrink + 2.0


def min_degree_for_replicas_holl(r: int) -> float:
    """Holl's counterpart: ``d_min(r) = r - 1`` for ``r >= 2`` (each extra
    neighbor can open a fresh cluster), degenerate values below."""
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    if r == 0:
        return 1.0
    if r == 1:
        return 2.0
    return float(r - 1)


def replication_factor_upper_bound(
    num_clusters: int,
    alpha: float,
    gamma: int,
    vmax: int,
    dmax: int,
    algorithm: str = "clugp",
) -> float:
    """Equations 4-5: worst-case replication factor.

    The telescoped sum of tail fractions over the replica ladder:
    ``expected replicas <= sum_{r=gamma}^{m-1} theta(d_min(r))``.  The
    paper's trailing ``(m - gamma) * theta(d_min(gamma - 1))`` term is
    *identical* for CLUGP and Holl (their ``d_min`` coincide for r <= 1,
    Theorem 2), so we omit it from both — the bound gets tighter and the
    Theorem-1 comparison ``RF_clugp <= RF_holl`` is unaffected.  Returned
    as 1 + (expected replicas per vertex), matching
    ``RF = (1/|V|) sum |P(v)|``.
    """
    check_positive_int(num_clusters, "num_clusters")
    check_positive_int(gamma, "gamma")
    if algorithm not in ("clugp", "holl"):
        raise ValueError(f"algorithm must be 'clugp' or 'holl', got {algorithm!r}")
    if num_clusters <= gamma:
        return 1.0

    def dmin(r: int) -> float:
        if algorithm == "clugp":
            return min_degree_for_replicas_clugp(r, vmax, dmax)
        return min_degree_for_replicas_holl(r)

    expected_replicas = sum(
        tail_fraction(dmin(r), alpha, gamma) for r in range(gamma, num_clusters)
    )
    return 1.0 + float(expected_replicas)


@dataclass(frozen=True)
class PowerLawModel:
    """A power-law graph model for analytical what-if exploration.

    Attributes mirror the paper's notation: exponent ``alpha``, global
    minimum degree ``gamma``, maximum degree ``dmax``.
    """

    alpha: float = 2.1
    gamma: int = 1
    dmax: int = 10_000

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1")
        check_positive_int(self.gamma, "gamma")
        check_positive_int(self.dmax, "dmax")

    def rf_bound(self, num_clusters: int, vmax: int, algorithm: str = "clugp") -> float:
        """Worst-case RF of ``algorithm`` for this graph model."""
        return replication_factor_upper_bound(
            num_clusters, self.alpha, self.gamma, vmax, self.dmax, algorithm
        )

    def clugp_advantage(self, num_clusters: int, vmax: int) -> float:
        """``RF_holl_bound - RF_clugp_bound`` (>= 0 by Theorem 1)."""
        return self.rf_bound(num_clusters, vmax, "holl") - self.rf_bound(
            num_clusters, vmax, "clugp"
        )

    def replica_ladder(self, vmax: int, max_replicas: int = 16) -> np.ndarray:
        """``d_min^clugp(r)`` for r = 0..max_replicas (for plotting)."""
        return np.asarray(
            [
                min_degree_for_replicas_clugp(r, vmax, self.dmax)
                for r in range(max_replicas + 1)
            ]
        )
