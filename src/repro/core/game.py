"""Pass 2 — game-theoretic cluster partitioning (Section V, Algorithm 3).

Each cluster is a selfish player choosing one of the ``k`` partitions to
minimize its individual cost (Equation 11)::

    phi(a_i) = (lambda / k) * |c_i| * |a_i|                (load balancing)
             + 1/2 * (|e(c_i, V\\a_i)| + |e(V\\a_i, c_i)|)  (edge cutting)

The game is an *exact potential game* (Theorem 4) with potential
(Equation 13)::

    Phi(L) = (lambda / 2k) * sum_i |p_i|^2 + 1/2 * sum_i |e(p_i, V\\p_i)|

so round-robin best response converges to a pure Nash equilibrium; rounds
are bounded by the total inter-cluster edge count (Theorem 6), and the
equilibrium quality is bounded by PoA <= k+1 / PoS <= 2 (Theorems 7-8).

``lambda`` defaults to its Theorem-5 maximum
``k^2 * sum_i |e(c_i, V\\c_i)| / (sum_i |c_i|)^2`` (the paper's
experimental setting); Figure 11(b)'s *relative weight* knob scales the
load term by ``w / (1 - w)`` on top.

Vectorization and compilation
-----------------------------
Best response evaluates all ``k`` candidate costs of a cluster as one
vectorized delta against the CSR neighbor slice of the symmetrized
cluster graph (:meth:`ClusterGraph.sym`).  :meth:`run` additionally keeps
an incrementally-maintained ``(m, k)`` adjacency table — ``ADJ[c, p]`` is
the merged weight from ``c``'s neighbors currently placed in partition
``p`` — updated per move in O(deg(c)) array ops, so a full round costs
O(m) small numpy calls instead of O(sum deg) Python iterations.  All
adjacency weights are integers, so the table path, the on-demand bincount
path, and the retained per-neighbor reference loop (``vectorized=False``)
produce bit-identical float costs and therefore identical move sequences.

``GameConfig.game_impl`` selects the engine: ``"fast"`` (the numpy
rounds above), ``"reference"`` (per-neighbor oracle), or ``"jit"``,
which fuses each round into one :mod:`repro.kernels` call — the kernel
owns the flat adjacency table, loads and assignment, adds the
decision-preserving epoch skip rule, and maintains the potential in
O(1) per move instead of recomputing it per round (DESIGN.md §10).
All three engines are bit-identical; ``"jit"`` degrades to ``"fast"``
when no backend resolves, exactly like ``chunk_impl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from .. import kernels
from .._util import as_rng, check_positive_int
from ..config import GameConfig
from .cluster_graph import ClusterGraph

__all__ = [
    "compute_lambda_max",
    "compute_lambda_balanced",
    "ClusterPartitioningGame",
    "GameResult",
    "exhaustive_optimum",
]

#: strict-improvement tolerance; moves must beat the current cost by this
#: much, which (with integer cut weights) guarantees termination.
_IMPROVEMENT_EPS = 1e-9

#: cap on the m*k adjacency table kept by :meth:`run` (8 bytes per cell);
#: larger games fall back to per-cluster on-demand bincounts.
_ADJ_TABLE_MAX_CELLS = 1 << 26


def compute_lambda_max(cluster_graph: ClusterGraph, num_partitions: int) -> float:
    """Theorem-5 upper bound ``k^2 * sum(cut) / (sum |c_i|)^2``."""
    total_internal = cluster_graph.total_internal()
    if total_internal == 0:
        return 0.0
    return (
        num_partitions**2 * cluster_graph.total_cut() / float(total_internal) ** 2
    )


def compute_lambda_balanced(
    cluster_graph: ClusterGraph, num_partitions: int, assignment: np.ndarray
) -> float:
    """Equation 15: ``lambda = k * sum(cut(p_i)) / sum(|p_i|^2)`` for the
    given assignment (equal-importance normalization)."""
    loads = np.bincount(
        assignment, weights=cluster_graph.internal, minlength=num_partitions
    )
    denom = float(np.sum(loads**2))
    if denom == 0.0:
        return 0.0
    cut = _total_partition_cut(cluster_graph, assignment)
    return num_partitions * cut / denom


def _total_partition_cut(cluster_graph: ClusterGraph, assignment: np.ndarray) -> int:
    """``sum_i |e(p_i, V\\p_i)|`` — inter-partition edges (each once).

    One vectorized pass over the out-CSR: an inter-cluster edge is cut iff
    its endpoint clusters sit in different partitions.
    """
    if cluster_graph.indices.size == 0:
        return 0
    rows = cluster_graph.out_rows()
    cut_mask = assignment[rows] != assignment[cluster_graph.indices]
    return int(cluster_graph.weights[cut_mask].sum())


@dataclass
class GameResult:
    """Outcome of the cluster-partitioning game."""

    assignment: np.ndarray
    rounds: int
    moves: int
    lambda_value: float
    potential_trace: list[float] = field(default_factory=list)
    converged: bool = True
    #: committed moves as ``(cluster, from, to)`` in commit order; only
    #: populated by ``run(record_moves=True)`` (identity testing hook)
    move_log: list[tuple[int, int, int]] | None = None


class ClusterPartitioningGame:
    """Round-robin best-response dynamics for cluster partitioning.

    Parameters
    ----------
    cluster_graph:
        The weighted cluster digraph from pass 1/2 (CSR-backed).
    num_partitions:
        ``k``.
    config:
        Game parameters (lambda mode, relative weight, round cap, seed).
    vectorized:
        ``True`` (default) scores best responses against CSR neighbor
        slices; ``False`` keeps the faithful per-neighbor Python loop as
        the reference scorer (overriding ``config.game_impl`` to
        ``"reference"``).  All engines produce bit-identical assignments
        (integer adjacency sums are exact in either order).
    initial_assignment:
        Optional warm start: a length-``m`` cluster->partition array that
        replaces Algorithm 3's random initialization.  The distributed
        merged mode seeds the coordinator's global game with the union of
        the per-node local equilibria, so global refinement starts from a
        state that is already locally consistent (and, with a single
        node, is a Nash equilibrium outright — the refinement run then
        proposes zero moves and the result is bit-identical to the
        single-machine game).
    """

    def __init__(
        self,
        cluster_graph: ClusterGraph,
        num_partitions: int,
        config: GameConfig | None = None,
        vectorized: bool = True,
        initial_assignment: np.ndarray | None = None,
    ) -> None:
        self.graph = cluster_graph
        self.k = check_positive_int(num_partitions, "num_partitions")
        self.config = config or GameConfig()
        impl = self.config.game_impl
        if not vectorized:
            impl = "reference"  # legacy ctor knob forces the oracle loop
        self._backend = None
        if impl == "jit":
            self._backend = kernels.get_backend(self.config.kernel_backend)
            if self._backend is None:
                impl = "fast"  # graceful degradation (one-time warning)
        self.game_impl = impl
        self.vectorized = impl != "reference"
        m = cluster_graph.num_clusters
        if initial_assignment is None:
            rng = as_rng(self.config.seed)
            # Algorithm 3 line 2: random initial assignment
            self.assignment = rng.integers(0, self.k, size=m, dtype=np.int64)
        else:
            init = np.asarray(initial_assignment, dtype=np.int64)
            if init.shape != (m,):
                raise ValueError(
                    f"initial_assignment must map all {m} clusters, "
                    f"got shape {init.shape}"
                )
            if init.size and (int(init.min()) < 0 or int(init.max()) >= self.k):
                raise ValueError("initial_assignment partitions out of range")
            self.assignment = init.copy()
        self.loads = np.bincount(
            self.assignment, weights=cluster_graph.internal.astype(np.float64),
            minlength=self.k,
        )
        self.lambda_value = self._resolve_lambda()
        w = self.config.relative_weight
        self._lambda_eff = self.lambda_value * (w / (1.0 - w))
        # symmetrized CSR neighbor view (weights as float64 so the per-call
        # bincount needs no cast; values are integers, hence exact)
        self._sym_indptr, self._sym_indices, sym_w = cluster_graph.sym()
        self._sym_weights = sym_w.astype(np.float64)
        self._cut_degree = cluster_graph.cut_degrees().astype(np.float64)
        self._internal_f = cluster_graph.internal.astype(np.float64)
        self._lam_over_k = self._lambda_eff / self.k
        self._nbrs_cache: list[list[tuple[int, int]]] | None = None

    @property
    def _nbrs(self) -> list[list[tuple[int, int]]]:
        """Per-cluster ``(neighbor, weight)`` lists — reference scorer view."""
        if self._nbrs_cache is None:
            self._nbrs_cache = [
                list(self.graph.undirected_neighbors(c).items())
                for c in range(self.graph.num_clusters)
            ]
        return self._nbrs_cache

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #

    def _resolve_lambda(self) -> float:
        mode = self.config.lambda_mode
        if mode == "max":
            return compute_lambda_max(self.graph, self.k)
        if mode == "balanced":
            return compute_lambda_balanced(self.graph, self.k, self.assignment)
        return float(self.config.lambda_value)

    def _adjacency_row(self, c: int) -> np.ndarray:
        """Merged neighbor weight of ``c`` into each partition (float64)."""
        if self.vectorized:
            s, e = int(self._sym_indptr[c]), int(self._sym_indptr[c + 1])
            if s == e:
                return np.zeros(self.k, dtype=np.float64)
            return np.bincount(
                self.assignment[self._sym_indices[s:e]],
                weights=self._sym_weights[s:e],
                minlength=self.k,
            )
        adj = np.zeros(self.k, dtype=np.float64)
        for nbr, w in self._nbrs[c]:
            adj[self.assignment[nbr]] += w
        return adj

    def cost_vector(self, c: int) -> np.ndarray:
        """Individual cost of cluster ``c`` for every partition choice.

        ``|a_i|`` is the partition load *with* the cluster placed there, so
        staying has cost based on the current load and moving accounts for
        the cluster's own size landing in the target.
        """
        size = float(self.graph.internal[c])
        cur = int(self.assignment[c])
        loads_wo = self.loads.copy()
        loads_wo[cur] -= size
        load_cost = (self._lambda_eff / self.k) * size * (loads_wo + size)
        cut_cost = 0.5 * (self._cut_degree[c] - self._adjacency_row(c))
        return load_cost + cut_cost

    def batch_cost_matrix(
        self, start: int, stop: int, assignment: np.ndarray, loads: np.ndarray
    ) -> np.ndarray:
        """Cost rows of clusters ``[start, stop)`` against a frozen state.

        ``result[c - start]`` equals :meth:`cost_vector` of ``c`` evaluated
        with ``assignment``/``loads`` in place of the live game state —
        bit-for-bit: every per-element float operation (the
        ``loads_wo + size`` add, the ``(lam_eff/k)*size`` scalar multiply,
        the halved cut delta, the final add) is the same single IEEE op
        the scalar path performs, and the adjacency rows are integer
        sums in float64, hence exact in any accumulation order.

        This is the shared kernel behind the batched parallel game
        (:func:`repro.core.parallel.parallel_game`) and the vectorized
        :meth:`is_nash_equilibrium` scan: one segmented bincount over
        the batch's CSR slice replaces per-cluster neighbor bincounts.
        With ``game_impl="jit"`` the rows come from the compiled
        ``game_cost_rows`` primitive instead — same op sequence, so
        still bit-identical.
        """
        k = self.k
        length = stop - start
        if self._backend is not None:
            out = np.empty(length * k, dtype=np.float64)
            self._backend.game_cost_rows(
                start, stop, k, self._lam_over_k,
                self._sym_indptr, self._sym_indices, self._sym_weights,
                self._internal_f, self._cut_degree,
                np.ascontiguousarray(assignment, dtype=np.int64),
                np.ascontiguousarray(loads, dtype=np.float64),
                out,
            )
            return out.reshape(length, k)
        sizes = self.graph.internal[start:stop].astype(np.float64)
        cur = assignment[start:stop]
        rows = np.arange(length)
        # loads_wo + size: array+scalar per row, with the cur column being
        # (loads[cur] - size) + size exactly as cost_vector computes it
        occupied = sizes[:, None] + loads[None, :]
        occupied[rows, cur] = (loads[cur] - sizes) + sizes
        load_cost = (self._lambda_eff / k * sizes)[:, None] * occupied
        lo = int(self._sym_indptr[start])
        hi = int(self._sym_indptr[stop])
        if lo == hi:
            adj = np.zeros((length, k), dtype=np.float64)
        else:
            nbr_parts = assignment[self._sym_indices[lo:hi]]
            row_of = np.repeat(rows, np.diff(self._sym_indptr[start : stop + 1]))
            adj = np.bincount(
                row_of * k + nbr_parts,
                weights=self._sym_weights[lo:hi],
                minlength=length * k,
            ).reshape(length, k)
        cut_cost = 0.5 * (self._cut_degree[start:stop, None] - adj)
        return load_cost + cut_cost

    def individual_cost(self, c: int) -> float:
        """``phi(a_c)`` under the current assignment."""
        return float(self.cost_vector(c)[self.assignment[c]])

    def global_cost(self, assignment: np.ndarray | None = None) -> float:
        """``phi(Lambda)`` (Equation 10) for the given/current assignment."""
        a = self.assignment if assignment is None else np.asarray(assignment)
        loads = np.bincount(
            a, weights=self.graph.internal.astype(np.float64), minlength=self.k
        )
        cut = _total_partition_cut(self.graph, a)
        return float((self._lambda_eff / self.k) * np.sum(loads**2) + cut)

    def potential(self, assignment: np.ndarray | None = None) -> float:
        """Exact potential ``Phi(Lambda)`` (Equation 13)."""
        a = self.assignment if assignment is None else np.asarray(assignment)
        loads = np.bincount(
            a, weights=self.graph.internal.astype(np.float64), minlength=self.k
        )
        cut = _total_partition_cut(self.graph, a)
        return float((self._lambda_eff / (2 * self.k)) * np.sum(loads**2) + 0.5 * cut)

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def best_response(self, c: int) -> bool:
        """Move cluster ``c`` to its cost-minimizing partition.

        Returns True iff the cluster strictly improved (and thus moved).
        """
        costs = self.cost_vector(c)
        cur = int(self.assignment[c])
        best = int(np.argmin(costs))
        if costs[best] < costs[cur] - _IMPROVEMENT_EPS:
            size = float(self.graph.internal[c])
            self.loads[cur] -= size
            self.loads[best] += size
            self.assignment[c] = best
            return True
        return False

    def _build_adj_table(self) -> np.ndarray | None:
        """The ``(m, k)`` merged-adjacency table, or None when too large."""
        m = self.graph.num_clusters
        if not self.vectorized or m * self.k > _ADJ_TABLE_MAX_CELLS:
            return None
        adj = np.zeros((m, self.k), dtype=np.float64)
        if self._sym_indices.size:
            rows = np.repeat(
                np.arange(m, dtype=np.int64), np.diff(self._sym_indptr)
            )
            np.add.at(
                adj, (rows, self.assignment[self._sym_indices]), self._sym_weights
            )
        return adj

    def run(
        self, active: np.ndarray | None = None, record_moves: bool = False
    ) -> GameResult:
        """Iterate best responses until Nash equilibrium (Algorithm 3).

        Uses the incremental adjacency table when it fits: each move
        updates only the moved cluster's neighbor rows, so rounds are O(m)
        vectorized cost evaluations plus O(moved degree) table updates.
        With ``game_impl="jit"`` each round is a single fused kernel call
        (see :meth:`_run_kernel`); the engines are bit-identical.

        Parameters
        ----------
        record_moves:
            Collect every committed move as ``(cluster, from, to)`` on
            ``GameResult.move_log`` — the cross-engine identity hook.
        active:
            Optional boolean mask (length ``m``) restricting the *player
            set*: only clusters with ``active[c]`` may move; the rest are
            frozen at their initial assignment (they still contribute to
            loads and adjacency, i.e. they act as fixed constraints).
            ``None`` plays the full game — ``run(active=all_true)`` and
            ``run()`` are bit-identical.

            Restricting players preserves convergence: the game is an
            exact potential game (Theorem 4) and every improving move by
            an active player strictly decreases the same potential
            ``Phi``, regardless of which players are allowed to respond —
            so the restricted dynamics terminate in an equilibrium *of
            the restricted game* (no active player can improve; frozen
            players may retain improving moves).  This is what lets the
            incremental service re-run only the dirty-cluster frontier
            warm-started from the previous equilibrium.
        """
        m = self.graph.num_clusters
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.shape != (m,):
                raise ValueError(f"active mask must have shape ({m},)")
        if self._backend is not None:
            players_arr = (
                np.arange(m, dtype=np.int64)
                if active is None
                else np.flatnonzero(active).astype(np.int64)
            )
            return self._run_kernel(players_arr, record_moves)
        players = range(m) if active is None else np.flatnonzero(active).tolist()
        adj = self._build_adj_table()
        cut_degree = self._cut_degree
        lam_over_k = self._lam_over_k
        indptr, indices = self._sym_indptr, self._sym_indices
        sym_w = self._sym_weights
        trace = [self.potential()]
        total_moves = 0
        rounds = 0
        converged = False
        internal_l = self.graph.internal.tolist()
        loads = self.loads
        assignment = self.assignment
        move_log: list[tuple[int, int, int]] | None = [] if record_moves else None
        # a cluster re-evaluated with zero moves anywhere since its last
        # evaluation sees the exact same loads and neighbor assignment, so
        # it provably repeats its no-move decision — skip it.  This makes
        # sparse late rounds (and the final all-quiet round) nearly free
        # without changing the move sequence.
        move_counter = 0
        last_eval = [-1] * m
        for rounds in range(1, self.config.max_rounds + 1):
            moves = 0
            for c in players:
                if last_eval[c] == move_counter:
                    continue
                last_eval[c] = move_counter
                size = internal_l[c] + 0.0
                cur = int(assignment[c])
                # one decision routine for both the table and the
                # on-demand row (games over the table cell cap): an exact
                # in-place rewrite of cost_vector() — scalar factors and
                # elementwise ops match the reference expression
                # bit-for-bit (IEEE multiplication is commutative and the
                # addition order is unchanged)
                row = adj[c] if adj is not None else self._adjacency_row(c)
                costs = loads + size
                costs[cur] = (loads[cur] - size) + size
                costs *= lam_over_k * size
                cut = cut_degree[c] - row
                cut *= 0.5
                costs += cut
                best = int(costs.argmin())
                if costs[best] < costs[cur] - _IMPROVEMENT_EPS:
                    loads[cur] -= size
                    loads[best] += size
                    assignment[c] = best
                    if adj is not None:
                        s, e = int(indptr[c]), int(indptr[c + 1])
                        if s != e:
                            nbrs = indices[s:e]
                            w = sym_w[s:e]
                            adj[nbrs, cur] -= w
                            adj[nbrs, best] += w
                    if move_log is not None:
                        move_log.append((c, cur, best))
                    moves += 1
                    move_counter += 1
                    # a mover must be re-evaluated: its post-move cost
                    # involves a float load roundtrip, so the no-move
                    # proof does not apply to it
                    last_eval[c] = -1
            total_moves += moves
            trace.append(self.potential())
            if moves == 0:
                converged = True
                break
        return GameResult(
            assignment=self.assignment.copy(),
            rounds=rounds,
            moves=total_moves,
            lambda_value=self.lambda_value,
            potential_trace=trace,
            converged=converged,
            move_log=move_log,
        )

    def _run_kernel(
        self, players: np.ndarray, record_moves: bool
    ) -> GameResult:
        """Compiled rounds: each round is one fused ``game_round`` call.

        The kernel owns the flat ``(m, k)`` adjacency table, the load
        vector, and the assignment array for the whole round — no Python
        between clusters.  Two additions over the numpy path, both
        decision-preserving (DESIGN.md §10):

        * the *epoch skip rule*: a cluster is rescored only when a
          neighbor moved, its own partition gained load, or any other
          partition lost load since its last evaluation (tracked by
          per-cluster ``nbr_epoch`` and per-partition ``inc``/``dec``
          load epochs) — costs are monotone in loads, so the prior
          no-move decision provably stands otherwise;
        * O(1) *potential maintenance*: ``sum(loads^2)`` and the total
          partition cut are updated by each mover's exact delta, and the
          per-round trace entry is priced from them with the same IEEE
          op sequence as :meth:`potential` — bit-identical while all
          quantities stay integer-valued below ``2**53`` (guarded by an
          end-of-game recompute parity check).
        """
        m = self.graph.num_clusters
        k = self.k
        backend = self._backend
        adj2d = self._build_adj_table()
        if adj2d is not None:
            adj = adj2d.reshape(-1)
            has_adj = 1
        else:
            # over the table cap: the kernel rebuilds rows on demand
            adj = np.zeros(1, dtype=np.float64)
            has_adj = 0
        lam_over_k = self._lam_over_k
        # the epoch rule's monotonicity argument needs a nonnegative load
        # coefficient; lambda only goes negative via a user-supplied
        # fixed value, where the strict "no moves anywhere" rule remains
        relaxed = 1 if lam_over_k >= 0.0 else 0
        last_eval = np.full(m, -1, dtype=np.int64)
        nbr_epoch = np.zeros(m, dtype=np.int64)
        inc_epoch = np.zeros(k, dtype=np.int64)
        dec_epoch = np.zeros(k, dtype=np.int64)
        counters = np.zeros(1, dtype=np.int64)
        phi = np.array(
            [
                np.sum(self.loads**2),
                float(_total_partition_cut(self.graph, self.assignment)),
            ],
            dtype=np.float64,
        )
        lam_over_2k = self._lambda_eff / (2 * k)
        trace = [self.potential()]
        move_buf = np.empty(2 * players.shape[0], dtype=np.int64)
        cost_buf = np.empty(k, dtype=np.float64)
        row_buf = np.empty(k, dtype=np.float64)
        move_log: list[tuple[int, int, int]] | None = None
        shadow: np.ndarray | None = None
        if record_moves:
            move_log = []
            shadow = self.assignment.copy()
        total_moves = 0
        rounds = 0
        converged = False
        for rounds in range(1, self.config.max_rounds + 1):
            moves = int(
                backend.game_round(
                    players, k, lam_over_k, _IMPROVEMENT_EPS, relaxed,
                    self._sym_indptr, self._sym_indices, self._sym_weights,
                    self._internal_f, self._cut_degree,
                    self.assignment, self.loads, adj, has_adj,
                    last_eval, nbr_epoch, inc_epoch, dec_epoch,
                    counters, phi, move_buf, cost_buf, row_buf,
                )
            )
            total_moves += moves
            trace.append(float(lam_over_2k * phi[0] + 0.5 * phi[1]))
            if move_log is not None:
                for i in range(moves):
                    c = int(move_buf[2 * i])
                    best = int(move_buf[2 * i + 1])
                    move_log.append((c, int(shadow[c]), best))
                    shadow[c] = best
            if moves == 0:
                converged = True
                break
        recomputed = self.potential()
        maintained = trace[-1]
        if abs(maintained - recomputed) > 1e-9 * max(1.0, abs(recomputed)):
            raise RuntimeError(
                f"incremental potential drifted from the recomputed value: "
                f"{maintained!r} != {recomputed!r} (load mass likely exceeds "
                f"2**53 — use game_impl='fast' for such instances)"
            )
        return GameResult(
            assignment=self.assignment.copy(),
            rounds=rounds,
            moves=total_moves,
            lambda_value=self.lambda_value,
            potential_trace=trace,
            converged=converged,
            move_log=move_log,
        )

    #: block width of the vectorized equilibrium scan (bounds the cost
    #: matrix materialized per step to block * k float64 cells)
    _NASH_BLOCK = 4096

    def is_nash_equilibrium(self, active: np.ndarray | None = None) -> bool:
        """True iff no (active) cluster has a strictly improving move.

        With ``active`` given, only the masked players are checked — the
        equilibrium notion of the frontier-restricted game (see
        :meth:`run`).

        Vectorized engines scan blocks of :meth:`batch_cost_matrix` rows
        (the incremental service pays this check on every quality-gated
        batch); the reference engine keeps the per-cluster
        :meth:`cost_vector` loop.  Identical verdicts: the batch rows
        are bit-identical to the per-cluster costs, and the per-row
        ``min < cost[cur] - eps`` test is the same scalar comparison.
        """
        m = self.graph.num_clusters
        if not self.vectorized:
            clusters = (
                range(m)
                if active is None
                else np.flatnonzero(np.asarray(active, dtype=bool)).tolist()
            )
            for c in clusters:
                costs = self.cost_vector(c)
                if costs.min() < costs[self.assignment[c]] - _IMPROVEMENT_EPS:
                    return False
            return True
        mask = None if active is None else np.asarray(active, dtype=bool)
        for start in range(0, m, self._NASH_BLOCK):
            stop = min(start + self._NASH_BLOCK, m)
            if mask is not None and not mask[start:stop].any():
                continue
            costs = self.batch_cost_matrix(start, stop, self.assignment, self.loads)
            cur = self.assignment[start:stop]
            staying = costs[np.arange(stop - start), cur]
            improving = costs.min(axis=1) < staying - _IMPROVEMENT_EPS
            if mask is not None:
                improving &= mask[start:stop]
            if bool(improving.any()):
                return False
        return True


def exhaustive_optimum(
    cluster_graph: ClusterGraph,
    num_partitions: int,
    lambda_value: float,
) -> tuple[np.ndarray, float]:
    """Brute-force the global optimum of Equation 10 (tiny instances only).

    Used by the PoA/PoS bound tests (Theorems 7-8).  Complexity
    ``k^m`` — guarded to ``k^m <= 2**20``.
    """
    m = cluster_graph.num_clusters
    k = num_partitions
    if k**m > 1 << 20:
        raise ValueError(f"instance too large for brute force: k^m = {k}^{m}")
    internal = cluster_graph.internal.astype(np.float64)
    best_cost = np.inf
    best: np.ndarray | None = None
    for combo in product(range(k), repeat=m):
        a = np.asarray(combo, dtype=np.int64)
        loads = np.bincount(a, weights=internal, minlength=k)
        cut = _total_partition_cut(cluster_graph, a)
        cost = (lambda_value / k) * float(np.sum(loads**2)) + cut
        if cost < best_cost:
            best_cost = cost
            best = a
    assert best is not None
    return best, float(best_cost)
