"""Pass 2 — game-theoretic cluster partitioning (Section V, Algorithm 3).

Each cluster is a selfish player choosing one of the ``k`` partitions to
minimize its individual cost (Equation 11)::

    phi(a_i) = (lambda / k) * |c_i| * |a_i|                (load balancing)
             + 1/2 * (|e(c_i, V\\a_i)| + |e(V\\a_i, c_i)|)  (edge cutting)

The game is an *exact potential game* (Theorem 4) with potential
(Equation 13)::

    Phi(L) = (lambda / 2k) * sum_i |p_i|^2 + 1/2 * sum_i |e(p_i, V\\p_i)|

so round-robin best response converges to a pure Nash equilibrium; rounds
are bounded by the total inter-cluster edge count (Theorem 6), and the
equilibrium quality is bounded by PoA <= k+1 / PoS <= 2 (Theorems 7-8).

``lambda`` defaults to its Theorem-5 maximum
``k^2 * sum_i |e(c_i, V\\c_i)| / (sum_i |c_i|)^2`` (the paper's
experimental setting); Figure 11(b)'s *relative weight* knob scales the
load term by ``w / (1 - w)`` on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from .._util import as_rng, check_positive_int
from ..config import GameConfig
from .cluster_graph import ClusterGraph

__all__ = [
    "compute_lambda_max",
    "compute_lambda_balanced",
    "ClusterPartitioningGame",
    "GameResult",
    "exhaustive_optimum",
]

#: strict-improvement tolerance; moves must beat the current cost by this
#: much, which (with integer cut weights) guarantees termination.
_IMPROVEMENT_EPS = 1e-9


def compute_lambda_max(cluster_graph: ClusterGraph, num_partitions: int) -> float:
    """Theorem-5 upper bound ``k^2 * sum(cut) / (sum |c_i|)^2``."""
    total_internal = cluster_graph.total_internal()
    if total_internal == 0:
        return 0.0
    return (
        num_partitions**2 * cluster_graph.total_cut() / float(total_internal) ** 2
    )


def compute_lambda_balanced(
    cluster_graph: ClusterGraph, num_partitions: int, assignment: np.ndarray
) -> float:
    """Equation 15: ``lambda = k * sum(cut(p_i)) / sum(|p_i|^2)`` for the
    given assignment (equal-importance normalization)."""
    loads = np.bincount(
        assignment, weights=cluster_graph.internal, minlength=num_partitions
    )
    denom = float(np.sum(loads**2))
    if denom == 0.0:
        return 0.0
    cut = _total_partition_cut(cluster_graph, assignment)
    return num_partitions * cut / denom


def _total_partition_cut(cluster_graph: ClusterGraph, assignment: np.ndarray) -> int:
    """``sum_i |e(p_i, V\\p_i)|`` — inter-partition edges (each once)."""
    cut = 0
    for c, nbrs in enumerate(cluster_graph.out_edges):
        pc = assignment[c]
        for nbr, w in nbrs.items():
            if assignment[nbr] != pc:
                cut += w
    return cut


@dataclass
class GameResult:
    """Outcome of the cluster-partitioning game."""

    assignment: np.ndarray
    rounds: int
    moves: int
    lambda_value: float
    potential_trace: list[float] = field(default_factory=list)
    converged: bool = True


class ClusterPartitioningGame:
    """Round-robin best-response dynamics for cluster partitioning.

    Parameters
    ----------
    cluster_graph:
        The weighted cluster digraph from pass 1/2.
    num_partitions:
        ``k``.
    config:
        Game parameters (lambda mode, relative weight, round cap, seed).
    """

    def __init__(
        self,
        cluster_graph: ClusterGraph,
        num_partitions: int,
        config: GameConfig | None = None,
    ) -> None:
        self.graph = cluster_graph
        self.k = check_positive_int(num_partitions, "num_partitions")
        self.config = config or GameConfig()
        rng = as_rng(self.config.seed)
        m = cluster_graph.num_clusters
        # Algorithm 3 line 2: random initial assignment
        self.assignment = rng.integers(0, self.k, size=m, dtype=np.int64)
        self.loads = np.bincount(
            self.assignment, weights=cluster_graph.internal.astype(np.float64),
            minlength=self.k,
        )
        self.lambda_value = self._resolve_lambda()
        w = self.config.relative_weight
        self._lambda_eff = self.lambda_value * (w / (1.0 - w))
        # symmetrized sparse neighbor lists, precomputed once
        self._nbrs: list[list[tuple[int, int]]] = [
            list(cluster_graph.undirected_neighbors(c).items()) for c in range(m)
        ]
        self._cut_degree = np.asarray(
            [cluster_graph.cut_degree(c) for c in range(m)], dtype=np.float64
        )

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #

    def _resolve_lambda(self) -> float:
        mode = self.config.lambda_mode
        if mode == "max":
            return compute_lambda_max(self.graph, self.k)
        if mode == "balanced":
            return compute_lambda_balanced(self.graph, self.k, self.assignment)
        return float(self.config.lambda_value)

    def cost_vector(self, c: int) -> np.ndarray:
        """Individual cost of cluster ``c`` for every partition choice.

        ``|a_i|`` is the partition load *with* the cluster placed there, so
        staying has cost based on the current load and moving accounts for
        the cluster's own size landing in the target.
        """
        size = float(self.graph.internal[c])
        cur = int(self.assignment[c])
        loads_wo = self.loads.copy()
        loads_wo[cur] -= size
        load_cost = (self._lambda_eff / self.k) * size * (loads_wo + size)
        # adjacency weight into each partition
        adj = np.zeros(self.k, dtype=np.float64)
        for nbr, w in self._nbrs[c]:
            adj[self.assignment[nbr]] += w
        cut_cost = 0.5 * (self._cut_degree[c] - adj)
        return load_cost + cut_cost

    def individual_cost(self, c: int) -> float:
        """``phi(a_c)`` under the current assignment."""
        return float(self.cost_vector(c)[self.assignment[c]])

    def global_cost(self, assignment: np.ndarray | None = None) -> float:
        """``phi(Lambda)`` (Equation 10) for the given/current assignment."""
        a = self.assignment if assignment is None else np.asarray(assignment)
        loads = np.bincount(
            a, weights=self.graph.internal.astype(np.float64), minlength=self.k
        )
        cut = _total_partition_cut(self.graph, a)
        return float((self._lambda_eff / self.k) * np.sum(loads**2) + cut)

    def potential(self, assignment: np.ndarray | None = None) -> float:
        """Exact potential ``Phi(Lambda)`` (Equation 13)."""
        a = self.assignment if assignment is None else np.asarray(assignment)
        loads = np.bincount(
            a, weights=self.graph.internal.astype(np.float64), minlength=self.k
        )
        cut = _total_partition_cut(self.graph, a)
        return float((self._lambda_eff / (2 * self.k)) * np.sum(loads**2) + 0.5 * cut)

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def best_response(self, c: int) -> bool:
        """Move cluster ``c`` to its cost-minimizing partition.

        Returns True iff the cluster strictly improved (and thus moved).
        """
        costs = self.cost_vector(c)
        cur = int(self.assignment[c])
        best = int(np.argmin(costs))
        if costs[best] < costs[cur] - _IMPROVEMENT_EPS:
            size = float(self.graph.internal[c])
            self.loads[cur] -= size
            self.loads[best] += size
            self.assignment[c] = best
            return True
        return False

    def run(self) -> GameResult:
        """Iterate best responses until Nash equilibrium (Algorithm 3)."""
        m = self.graph.num_clusters
        trace = [self.potential()]
        total_moves = 0
        rounds = 0
        converged = False
        for rounds in range(1, self.config.max_rounds + 1):
            moves = 0
            for c in range(m):
                if self.best_response(c):
                    moves += 1
            total_moves += moves
            trace.append(self.potential())
            if moves == 0:
                converged = True
                break
        return GameResult(
            assignment=self.assignment.copy(),
            rounds=rounds,
            moves=total_moves,
            lambda_value=self.lambda_value,
            potential_trace=trace,
            converged=converged,
        )

    def is_nash_equilibrium(self) -> bool:
        """True iff no cluster has a strictly improving unilateral move."""
        for c in range(self.graph.num_clusters):
            costs = self.cost_vector(c)
            if costs.min() < costs[self.assignment[c]] - _IMPROVEMENT_EPS:
                return False
        return True


def exhaustive_optimum(
    cluster_graph: ClusterGraph,
    num_partitions: int,
    lambda_value: float,
) -> tuple[np.ndarray, float]:
    """Brute-force the global optimum of Equation 10 (tiny instances only).

    Used by the PoA/PoS bound tests (Theorems 7-8).  Complexity
    ``k^m`` — guarded to ``k^m <= 2**20``.
    """
    m = cluster_graph.num_clusters
    k = num_partitions
    if k**m > 1 << 20:
        raise ValueError(f"instance too large for brute force: k^m = {k}^{m}")
    internal = cluster_graph.internal.astype(np.float64)
    best_cost = np.inf
    best: np.ndarray | None = None
    for combo in product(range(k), repeat=m):
        a = np.asarray(combo, dtype=np.int64)
        loads = np.bincount(a, weights=internal, minlength=k)
        cut = _total_partition_cut(cluster_graph, a)
        cost = (lambda_value / k) * float(np.sum(loads**2)) + cut
        if cost < best_cost:
            best_cost = cost
            best = a
    assert best is not None
    return best, float(best_cost)
