"""Pass 3 — partition transformation (Algorithm 1 of the paper).

Joins the vertex->cluster table (pass 1) with the cluster->partition table
(pass 2) on the fly — ``{<v_i, p_j>} = {<v_i, c_j>} |><| {<c_i, p_j>}`` —
and re-streams the edges to produce the final edge->partition assignment:

* **hard load cap** (lines 6-14): ``L_max = tau * |E| / k``; an edge whose
  both endpoint partitions are full spills to any underfull partition, so
  the relative balance *strictly* conforms to ``tau``;
* **agreement** (lines 15-16): both endpoints in the same partition — the
  edge goes there, no replica;
* **mirror reuse** (lines 18-19): a *divided* vertex already has mirrors
  (pass 1 split it), so it is the one cut again — the edge follows the
  other endpoint;
* **degree rule** (lines 21-22): otherwise the higher-degree endpoint is
  cut (it will be replicated anyway on a power-law graph — the HDRF/DBH
  insight).

Space O(k) beyond the pass-1 tables, time O(|E|) (the spill scan is
amortized O(k) total because partitions only fill up).
"""

from __future__ import annotations

import math

import numpy as np

from ..graph.stream import EdgeStream
from .clustering import ClusteringResult

__all__ = ["transform_partitions", "TransformStats"]


class TransformStats:
    """Counters describing which Algorithm 1 rule fired per edge."""

    __slots__ = ("agreement", "mirror_reuse", "degree_cut", "balance_spill", "load_cap")

    def __init__(self, load_cap: int) -> None:
        self.agreement = 0
        self.mirror_reuse = 0
        self.degree_cut = 0
        self.balance_spill = 0
        self.load_cap = load_cap

    def total(self) -> int:
        return self.agreement + self.mirror_reuse + self.degree_cut + self.balance_spill

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransformStats(agree={self.agreement}, mirror={self.mirror_reuse}, "
            f"degree={self.degree_cut}, spill={self.balance_spill})"
        )


def transform_partitions(
    stream: EdgeStream,
    clustering: ClusteringResult,
    cluster_partition: np.ndarray,
    num_partitions: int,
    imbalance_factor: float = 1.0,
) -> tuple[np.ndarray, TransformStats]:
    """Run Algorithm 1; returns ``(edge_partition, stats)``.

    Parameters
    ----------
    stream:
        The edge stream (third pass over the same edges).
    clustering:
        Pass-1 output (cluster ids, degrees, divided flags, mirrors).
    cluster_partition:
        Pass-2 output — partition id per compact cluster id.
    num_partitions:
        ``k``.
    imbalance_factor:
        ``tau >= 1``; the hard cap is ``L_max = ceil(tau * |E| / k)``.
    """
    k = int(num_partitions)
    if imbalance_factor < 1.0:
        raise ValueError(f"imbalance_factor must be >= 1, got {imbalance_factor}")
    cluster_partition = np.asarray(cluster_partition, dtype=np.int64)
    if cluster_partition.shape != (clustering.num_clusters,):
        raise ValueError(
            f"cluster_partition must map all {clustering.num_clusters} clusters"
        )
    if cluster_partition.size and (
        cluster_partition.min() < 0 or cluster_partition.max() >= k
    ):
        raise ValueError("cluster_partition ids out of range")
    num_edges = stream.num_edges
    load_cap = max(1, math.ceil(imbalance_factor * num_edges / k))
    stats = TransformStats(load_cap)
    # vertex -> partition via the join (vectorized once; O(|V|) memory is
    # already required by pass 1's tables, so this does not change the
    # asymptotic footprint; the paper's sequential two-table query is an
    # equivalent O(1)-per-edge lookup).
    vertex_partition = np.full(stream.num_vertices, -1, dtype=np.int64)
    seen = clustering.cluster_of >= 0
    vertex_partition[seen] = cluster_partition[clustering.cluster_of[seen]]
    divided = clustering.divided
    degree = clustering.degree

    loads = np.zeros(k, dtype=np.int64)
    out = np.empty(num_edges, dtype=np.int64)
    spill_ptr = 0  # rotates forward over partitions; loads only grow
    src_list = stream.src.tolist()
    dst_list = stream.dst.tolist()
    vp = vertex_partition
    for i in range(num_edges):
        u = src_list[i]
        v = dst_list[i]
        pu = int(vp[u])
        pv = int(vp[v])
        if loads[pu] >= load_cap or loads[pv] >= load_cap:
            if loads[pu] < load_cap:
                target = pu
            elif loads[pv] < load_cap:
                target = pv
            else:
                while loads[spill_ptr] >= load_cap:
                    spill_ptr += 1
                    if spill_ptr == k:  # pragma: no cover - tau>=1 guarantees room
                        raise RuntimeError("no underfull partition available")
                target = spill_ptr
            stats.balance_spill += 1
        elif pu == pv:
            target = pu
            stats.agreement += 1
        elif divided[u] and not divided[v]:
            target = pv  # u already has mirrors: cut u again
            stats.mirror_reuse += 1
        elif divided[v] and not divided[u]:
            target = pu
            stats.mirror_reuse += 1
        else:
            # both or neither divided: cut the higher-degree endpoint
            target = pu if degree[v] > degree[u] else pv
            stats.degree_cut += 1
        out[i] = target
        loads[target] += 1
    return out, stats
