"""Pass 3 — partition transformation (Algorithm 1 of the paper).

Joins the vertex->cluster table (pass 1) with the cluster->partition table
(pass 2) on the fly — ``{<v_i, p_j>} = {<v_i, c_j>} |><| {<c_i, p_j>}`` —
and re-streams the edges to produce the final edge->partition assignment:

* **hard load cap** (lines 6-14): ``L_max = tau * |E| / k``; an edge whose
  both endpoint partitions are full spills to any underfull partition, so
  the relative balance *strictly* conforms to ``tau``;
* **agreement** (lines 15-16): both endpoints in the same partition — the
  edge goes there, no replica;
* **mirror reuse** (lines 18-19): a *divided* vertex already has mirrors
  (pass 1 split it), so it is the one cut again — the edge follows the
  other endpoint;
* **degree rule** (lines 21-22): otherwise the higher-degree endpoint is
  cut (it will be replicated anyway on a power-law graph — the HDRF/DBH
  insight).

Space O(k) beyond the pass-1 tables, time O(|E|) (the spill scan is
amortized O(k) total because partitions only fill up).

Chunked ingestion
-----------------
:class:`TransformState` consumes ``(m, 2)`` edge chunks and is
bit-identical to :func:`transform_partitions`.  The rule table
(agreement / mirror / degree) is evaluated for a whole chunk as boolean
masks over the gathered vertex->partition join; the only sequential part
of Algorithm 1 is the hard load cap.  Loads only ever grow, so the chunk
is committed vectorized up to the first position where any partition
*could* reach ``L_max`` (computed from per-partition running counts of the
tentative targets), and the exact reference loop — including the O(k)
rotating spill pointer — finishes the remainder.  Before the cap bites
(the overwhelming majority of the stream for ``tau >= 1``) every chunk
takes the all-vectorized path.
"""

from __future__ import annotations

import math

import numpy as np

from .. import kernels
from ..graph.stream import EdgeStream
from .clustering import ClusteringResult

__all__ = [
    "transform_partitions",
    "transform_partitions_chunked",
    "replay_transform_chunked",
    "TransformState",
    "TransformStats",
]


class TransformStats:
    """Counters describing which Algorithm 1 rule fired per edge."""

    __slots__ = ("agreement", "mirror_reuse", "degree_cut", "balance_spill", "load_cap")

    def __init__(self, load_cap: int) -> None:
        self.agreement = 0
        self.mirror_reuse = 0
        self.degree_cut = 0
        self.balance_spill = 0
        self.load_cap = load_cap

    def total(self) -> int:
        """Edges placed so far, summed over the four placement rules."""
        return self.agreement + self.mirror_reuse + self.degree_cut + self.balance_spill

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransformStats(agree={self.agreement}, mirror={self.mirror_reuse}, "
            f"degree={self.degree_cut}, spill={self.balance_spill})"
        )


def _check_inputs(
    clustering: ClusteringResult,
    cluster_partition: np.ndarray,
    num_partitions: int,
    imbalance_factor: float,
) -> np.ndarray:
    if imbalance_factor < 1.0:
        raise ValueError(f"imbalance_factor must be >= 1, got {imbalance_factor}")
    cluster_partition = np.asarray(cluster_partition, dtype=np.int64)
    if cluster_partition.shape != (clustering.num_clusters,):
        raise ValueError(
            f"cluster_partition must map all {clustering.num_clusters} clusters"
        )
    if cluster_partition.size and (
        cluster_partition.min() < 0 or cluster_partition.max() >= num_partitions
    ):
        raise ValueError("cluster_partition ids out of range")
    return cluster_partition


def _vertex_partition_join(
    clustering: ClusteringResult, cluster_partition: np.ndarray, num_vertices: int
) -> np.ndarray:
    """vertex -> partition via the join (vectorized once; O(|V|) memory is
    already required by pass 1's tables, so this does not change the
    asymptotic footprint; the paper's sequential two-table query is an
    equivalent O(1)-per-edge lookup)."""
    vertex_partition = np.full(num_vertices, -1, dtype=np.int64)
    seen = clustering.active_mask()
    vertex_partition[seen] = cluster_partition[clustering.cluster_of[seen]]
    return vertex_partition


def transform_partitions(
    stream: EdgeStream,
    clustering: ClusteringResult,
    cluster_partition: np.ndarray,
    num_partitions: int,
    imbalance_factor: float = 1.0,
) -> tuple[np.ndarray, TransformStats]:
    """Run Algorithm 1 per edge; returns ``(edge_partition, stats)``.

    This is the faithful per-edge reference loop; :class:`TransformState`
    is the chunked production path and must stay bit-identical to it.

    Parameters
    ----------
    stream:
        The edge stream (third pass over the same edges).
    clustering:
        Pass-1 output (cluster ids, degrees, divided flags, mirrors).
    cluster_partition:
        Pass-2 output — partition id per compact cluster id.
    num_partitions:
        ``k``.
    imbalance_factor:
        ``tau >= 1``; the hard cap is ``L_max = ceil(tau * |E| / k)``.
    """
    k = int(num_partitions)
    cluster_partition = _check_inputs(
        clustering, cluster_partition, k, imbalance_factor
    )
    num_edges = stream.num_edges
    load_cap = max(1, math.ceil(imbalance_factor * num_edges / k))
    stats = TransformStats(load_cap)
    vertex_partition = _vertex_partition_join(
        clustering, cluster_partition, stream.num_vertices
    )
    divided = clustering.divided
    degree = clustering.degree

    loads = np.zeros(k, dtype=np.int64)
    out = np.empty(num_edges, dtype=np.int64)
    spill_ptr = 0  # rotates forward over partitions; loads only grow
    src_list = stream.src.tolist()
    dst_list = stream.dst.tolist()
    vp = vertex_partition
    for i in range(num_edges):
        u = src_list[i]
        v = dst_list[i]
        pu = int(vp[u])
        pv = int(vp[v])
        if loads[pu] >= load_cap or loads[pv] >= load_cap:
            if loads[pu] < load_cap:
                target = pu
            elif loads[pv] < load_cap:
                target = pv
            else:
                while loads[spill_ptr] >= load_cap:
                    spill_ptr += 1
                    if spill_ptr == k:  # pragma: no cover - tau>=1 guarantees room
                        raise RuntimeError("no underfull partition available")
                target = spill_ptr
            stats.balance_spill += 1
        elif pu == pv:
            target = pu
            stats.agreement += 1
        elif divided[u] and not divided[v]:
            target = pv  # u already has mirrors: cut u again
            stats.mirror_reuse += 1
        elif divided[v] and not divided[u]:
            target = pu
            stats.mirror_reuse += 1
        else:
            # both or neither divided: cut the higher-degree endpoint
            target = pu if degree[v] > degree[u] else pv
            stats.degree_cut += 1
        out[i] = target
        loads[target] += 1
    return out, stats


class TransformState:
    """Incremental pass-3 state consuming ``(m, 2)`` edge chunks.

    Bit-identical to :func:`transform_partitions`; see the module
    docstring for the prefix-commit scheme.

    Usage::

        state = TransformState(clustering, cluster_partition, k,
                               num_edges=stream.num_edges, num_vertices=n)
        parts = [state.ingest(chunk) for chunk in stream.chunks(size)]
    """

    def __init__(
        self,
        clustering: ClusteringResult,
        cluster_partition: np.ndarray | None,
        num_partitions: int,
        num_edges: int,
        num_vertices: int,
        imbalance_factor: float = 1.0,
        vertex_partition: np.ndarray | None = None,
        load_caps: np.ndarray | None = None,
        initial_loads: np.ndarray | None = None,
        chunk_impl: str = "fast",
        kernel_backend: str = "auto",
    ) -> None:
        """Build pass-3 state for a stream of ``num_edges`` edges.

        Parameters
        ----------
        clustering:
            Pass-1 output; supplies the ``divided`` flags and degrees the
            mirror/degree rules read (and the join table when
            ``cluster_partition`` is given).
        cluster_partition:
            Pass-2 output (partition per compact cluster); mutually
            exclusive with ``vertex_partition``.
        num_partitions:
            ``k``.
        num_edges:
            Number of edges this state will ingest; sizes the uniform
            hard cap ``L_max = ceil(tau * num_edges / k)`` and validates
            that the caps can hold the stream.
        num_vertices:
            Vertex-id space size (shapes the join / mapping checks).
        imbalance_factor:
            ``tau >= 1`` for the uniform cap.
        vertex_partition:
            Externally supplied vertex->partition map (the distributed
            broadcast, or the service's served map); ``-1`` marks
            vertices absent from this shard.
        load_caps:
            Per-partition quota vector overriding the uniform cap (the
            PR 5 balance quota exchange).
        initial_loads:
            Pre-existing per-partition edge counts to seed ``loads``
            with.  The incremental service uses this for *delta
            application*: retained edges keep their partitions, their
            counts are seeded here, and only the re-routed and new edges
            stream through this state — bit-identical to re-ingesting
            the retained edges first (loads are the only coupling
            between edges on the non-spill path).
        chunk_impl:
            ``"fast"`` (default) is the vectorized prefix-commit scheme;
            ``"reference"`` replays every edge through the exact scalar
            loop; ``"jit"`` dispatches whole chunks into a compiled
            kernel (:mod:`repro.kernels`), degrading to ``"fast"`` when
            no backend is available.  All three are bit-identical.
        kernel_backend:
            Which kernel backend ``"jit"`` resolves.
        """
        k = int(num_partitions)
        if chunk_impl not in ("fast", "reference", "jit"):
            raise ValueError(
                f"chunk_impl must be 'fast', 'reference' or 'jit', got {chunk_impl!r}"
            )
        self.chunk_impl = chunk_impl
        self.kernel_backend = kernel_backend
        self._run_impl = chunk_impl
        self._backend = None
        if chunk_impl == "jit":
            self._backend = kernels.get_backend(kernel_backend)
            if self._backend is None:
                self._run_impl = "fast"  # graceful degradation, same results
        if (cluster_partition is None) == (vertex_partition is None):
            raise ValueError(
                "exactly one of cluster_partition and vertex_partition is required"
            )
        self._external = False
        if vertex_partition is None:
            cluster_partition = _check_inputs(
                clustering, cluster_partition, k, imbalance_factor
            )
            vp = _vertex_partition_join(clustering, cluster_partition, num_vertices)
        else:
            # externally supplied mapping: the distributed merged mode
            # replays pass 3 on each node under the coordinator's global
            # vertex->partition decision instead of the local join
            if imbalance_factor < 1.0:
                raise ValueError(
                    f"imbalance_factor must be >= 1, got {imbalance_factor}"
                )
            vp = np.asarray(vertex_partition, dtype=np.int64)
            if vp.shape != (num_vertices,):
                raise ValueError(
                    f"vertex_partition must map all {num_vertices} vertices"
                )
            if vp.size and vp.max() >= k:
                raise ValueError("vertex_partition ids out of range")
            # -1 marks vertices absent from this shard; streamed endpoints
            # must be mapped, checked per chunk (the stream arrives later)
            self._external = True
        self.k = k
        if initial_loads is None:
            seeded = np.zeros(k, dtype=np.int64)
        else:
            seeded = np.asarray(initial_loads, dtype=np.int64).copy()
            if seeded.shape != (k,):
                raise ValueError(f"initial_loads must have one entry per partition ({k})")
            if seeded.size and int(seeded.min()) < 0:
                raise ValueError("initial_loads must be non-negative")
        placed = int(seeded.sum())
        self.load_cap = max(1, math.ceil(imbalance_factor * num_edges / k))
        if load_caps is None:
            # Algorithm 1's uniform hard cap L_max
            if placed and k * self.load_cap < num_edges + placed:
                raise ValueError(
                    f"uniform cap {self.load_cap} x {k} cannot hold {num_edges} "
                    f"edges on top of {placed} already placed; pass load_caps"
                )
            self._caps = np.full(k, self.load_cap, dtype=np.int64)
        else:
            # per-partition quotas (the distributed merged mode's balance
            # quota exchange): the coordinator hands each node caps that
            # sum to the global L_max column-wise, so per-node enforcement
            # still bounds the *global* relative balance by tau
            caps = np.asarray(load_caps, dtype=np.int64)
            if caps.shape != (k,):
                raise ValueError(f"load_caps must have one entry per partition ({k})")
            if caps.size and int(caps.min()) < 0:
                raise ValueError("load_caps must be non-negative")
            if int(caps.sum()) < num_edges + placed:
                raise ValueError(
                    f"load_caps sum {int(caps.sum())} cannot hold {num_edges} edges"
                    + (f" on top of {placed} already placed" if placed else "")
                )
            self._caps = caps
            self.load_cap = int(caps.max()) if caps.size else self.load_cap
        self.stats = TransformStats(self.load_cap)
        self.loads = seeded
        self.spill_ptr = 0
        self._vp = vp
        self._div = clustering.divided
        self._deg = clustering.degree
        if self._run_impl == "jit":
            # kernel-facing views: contiguous uint8 divided flags, int64 rest
            if self._div.dtype == np.bool_ and self._div.flags.c_contiguous:
                self._div_u8 = self._div.view(np.uint8)
            else:
                self._div_u8 = np.ascontiguousarray(self._div, dtype=np.uint8)
            self._deg = np.ascontiguousarray(self._deg, dtype=np.int64)
            self._vp = np.ascontiguousarray(self._vp, dtype=np.int64)

    def ingest(self, edges: np.ndarray) -> np.ndarray:
        """Assign one chunk of edges; returns their partition ids."""
        edges = np.asarray(edges, dtype=np.int64)
        return self.ingest_pair(edges[:, 0], edges[:, 1])

    def ingest_pair(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Assign one chunk given as endpoint column arrays.

        Same semantics as :meth:`ingest`; whole-stream drivers use this
        with :meth:`EdgeStream.batches` to skip the ``(m, 2)`` stack copy.
        """
        m = u.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        if self._run_impl == "jit":
            return self._ingest_jit(u, v)
        k = self.k
        caps = self._caps
        pu = self._vp[u]
        pv = self._vp[v]
        if self._external and (int(pu.min()) < 0 or int(pv.min()) < 0):
            raise ValueError(
                "vertex_partition does not cover every streamed vertex "
                "(-1 entry gathered for a chunk endpoint)"
            )
        # Algorithm 1 rule table as masks (the non-spill elif chain):
        # agreement -> pu; u-mirrored -> pv; v-mirrored -> pu; else the
        # higher-degree endpoint is cut (ties cut v) -> pu iff deg[v] > deg[u]
        agree = pu == pv
        du = self._div[u]
        dv = self._div[v]
        mirror = du ^ dv  # exactly one endpoint already has mirrors
        mirror_u = du & mirror  # u is cut again -> edge follows v
        deg_to_u = self._deg[v] > self._deg[u]  # cut u -> target pu
        take_pu = agree | (mirror & ~mirror_u) | (~mirror & deg_to_u)
        tentative = np.where(take_pu, pu, pv)
        rule = np.full(m, 2, dtype=np.int64)
        rule[mirror] = 1
        rule[agree] = 0
        if self._run_impl == "reference":
            cut = 0  # plain sequential oracle: scalar loop from edge 0
        else:
            # fast path: no partition can reach its cap anywhere in this chunk
            projected = self.loads + np.bincount(tentative, minlength=k)
            candidates = np.flatnonzero(projected >= caps)
            if candidates.size == 0:
                cut = m
            else:
                # exact first index where the reference enters the spill branch
                violated = np.zeros(m, dtype=bool)
                for p in candidates.tolist():
                    run = np.zeros(m, dtype=np.int64)
                    np.cumsum(tentative[:-1] == p, out=run[1:])
                    run += self.loads[p]
                    violated |= ((pu == p) | (pv == p)) & (run >= caps[p])
                cut = int(np.argmax(violated)) if violated.any() else m
        out = np.empty(m, dtype=np.int64)
        if cut:
            out[:cut] = tentative[:cut]
            self.loads += np.bincount(tentative[:cut], minlength=k)
            rule_counts = np.bincount(rule[:cut], minlength=3)
            self.stats.agreement += int(rule_counts[0])
            self.stats.mirror_reuse += int(rule_counts[1])
            self.stats.degree_cut += int(rule_counts[2])
        if cut < m:
            self._scalar_tail(
                out,
                cut,
                pu.tolist(),
                pv.tolist(),
                tentative.tolist(),
                rule.tolist(),
            )
        return out

    def _ingest_jit(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Dispatch one chunk into the compiled transform kernel.

        The kernel runs the whole reference loop (spill branch included)
        in machine code; the spill pointer and rule counters round-trip
        through a small int64 array.  The externally-mapped ``-1``
        endpoint check is performed by the kernel *before* any state
        mutation (status 2), matching the fast path's pre-check.
        """
        m = u.shape[0]
        out = np.empty(m, dtype=np.int64)
        stats = self.stats
        counters = np.array(
            [
                self.spill_ptr,
                stats.agreement,
                stats.mirror_reuse,
                stats.degree_cut,
                stats.balance_spill,
            ],
            dtype=np.int64,
        )
        status = self._backend.transform_chunk(
            np.ascontiguousarray(u),
            np.ascontiguousarray(v),
            self.k,
            self._vp,
            self._div_u8,
            self._deg,
            self.loads,
            self._caps,
            counters,
            self._external,
            out,
        )
        if status == 2:
            raise ValueError(
                "vertex_partition does not cover every streamed vertex "
                "(-1 entry gathered for a chunk endpoint)"
            )
        if status == 1:  # pragma: no cover - caps sum guarantees room
            raise RuntimeError("no underfull partition available")
        self.spill_ptr = int(counters[0])
        stats.agreement = int(counters[1])
        stats.mirror_reuse = int(counters[2])
        stats.degree_cut = int(counters[3])
        stats.balance_spill = int(counters[4])
        return out

    def _scalar_tail(
        self,
        out: np.ndarray,
        start: int,
        pu_l: list[int],
        pv_l: list[int],
        t_l: list[int],
        rule_l: list[int],
    ) -> None:
        """Exact reference loop (spill branch included) from ``start`` on."""
        k = self.k
        caps_l = self._caps.tolist()
        loads_l = self.loads.tolist()
        sp = self.spill_ptr
        stats = self.stats
        agree_ct = mirror_ct = degree_ct = spill_ct = 0
        m = len(pu_l)
        out_l = [0] * (m - start)
        for i in range(start, m):
            p_u = pu_l[i]
            p_v = pv_l[i]
            if loads_l[p_u] < caps_l[p_u] and loads_l[p_v] < caps_l[p_v]:
                target = t_l[i]
                rc = rule_l[i]
                if rc == 0:
                    agree_ct += 1
                elif rc == 1:
                    mirror_ct += 1
                else:
                    degree_ct += 1
            else:
                if loads_l[p_u] < caps_l[p_u]:
                    target = p_u
                elif loads_l[p_v] < caps_l[p_v]:
                    target = p_v
                else:
                    while loads_l[sp] >= caps_l[sp]:
                        sp += 1
                        if sp == k:  # pragma: no cover - caps sum guarantees room
                            raise RuntimeError("no underfull partition available")
                    target = sp
                spill_ct += 1
            out_l[i - start] = target
            loads_l[target] += 1
        out[start:] = out_l
        self.loads[:] = loads_l
        self.spill_ptr = sp
        stats.agreement += agree_ct
        stats.mirror_reuse += mirror_ct
        stats.degree_cut += degree_ct
        stats.balance_spill += spill_ct


def replay_transform_chunked(
    stream: EdgeStream,
    clustering: ClusteringResult,
    vertex_partition: np.ndarray,
    num_partitions: int,
    imbalance_factor: float = 1.0,
    load_caps: np.ndarray | None = None,
    chunk_size: int = 1 << 16,
    chunk_impl: str = "fast",
    kernel_backend: str = "auto",
) -> tuple[np.ndarray, TransformStats]:
    """Replay pass 3 under an externally supplied vertex->partition map.

    The single implementation behind the distributed merged mode's node
    replay — both the staged
    :meth:`~repro.core.partitioner.ClugpPartitioner.transform_with_mapping`
    API and the probe/commit stage workers call this, so the two paths
    cannot drift.  ``load_caps`` carries the coordinator's per-partition
    quotas (None = Algorithm 1's uniform cap).
    """
    state = TransformState(
        clustering,
        None,
        num_partitions,
        num_edges=stream.num_edges,
        num_vertices=stream.num_vertices,
        imbalance_factor=imbalance_factor,
        vertex_partition=vertex_partition,
        load_caps=load_caps,
        chunk_impl=chunk_impl,
        kernel_backend=kernel_backend,
    )
    parts = [
        state.ingest_pair(src, dst)
        for src, dst in stream.batches(max(1, chunk_size))
    ]
    if not parts:
        return np.empty(0, dtype=np.int64), state.stats
    out = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return out, state.stats


def transform_partitions_chunked(
    stream: EdgeStream,
    clustering: ClusteringResult,
    cluster_partition: np.ndarray,
    num_partitions: int,
    imbalance_factor: float = 1.0,
    chunk_size: int = 1 << 16,
    chunk_impl: str = "fast",
    kernel_backend: str = "auto",
) -> tuple[np.ndarray, TransformStats]:
    """Run Algorithm 1 by chunked ingestion; bit-identical to
    :func:`transform_partitions` for every chunk size and ``chunk_impl``."""
    state = TransformState(
        clustering,
        cluster_partition,
        num_partitions,
        num_edges=stream.num_edges,
        num_vertices=stream.num_vertices,
        imbalance_factor=imbalance_factor,
        chunk_impl=chunk_impl,
        kernel_backend=kernel_backend,
    )
    parts = [state.ingest(chunk) for chunk in stream.chunks(chunk_size)]
    if not parts:
        return np.empty(0, dtype=np.int64), state.stats
    out = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return out, state.stats
