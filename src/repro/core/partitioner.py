"""The CLUGP pipeline (Figure 1) and its ablation variants (Figure 9).

Three restreaming passes:

1. :func:`~repro.core.clustering.streaming_clustering` — vertex clusters;
2. :func:`~repro.core.cluster_graph.build_cluster_graph` +
   :class:`~repro.core.game.ClusterPartitioningGame` (or the batched
   :func:`~repro.core.parallel.parallel_game`) — cluster -> partition map;
3. :func:`~repro.core.transform.transform_partitions` — edge -> partition.

Ablations:

* :class:`ClugpNoSplitPartitioner` ("CLUGP-S") disables the splitting
  operation — pass 1 degenerates to Hollocou's allocation-migration;
* :class:`ClugpGreedyPartitioner` ("CLUGP-G") replaces the game with the
  greedy rule "biggest cluster into currently smallest partition".
"""

from __future__ import annotations

import numpy as np

from .._util import StageTimes, Timer
from ..config import ClugpConfig, GameConfig
from ..graph.stream import EdgeStream
from ..partitioners.base import EdgePartitioner, PartitionAssignment
from .clustering import ClusteringResult, streaming_clustering
from .cluster_graph import ClusterGraph, build_cluster_graph
from .game import ClusterPartitioningGame, GameResult
from .parallel import parallel_game
from .transform import TransformStats, transform_partitions

__all__ = [
    "ClugpPartitioner",
    "ClugpNoSplitPartitioner",
    "ClugpGreedyPartitioner",
    "greedy_cluster_assignment",
]


def greedy_cluster_assignment(cluster_graph: ClusterGraph, num_partitions: int) -> np.ndarray:
    """CLUGP-G pass 2: big clusters first, each into the lightest partition.

    This is the classic LPT bin-packing heuristic — balance-only, blind to
    edge cutting — which is exactly what Figure 9 isolates.
    """
    order = np.argsort(-cluster_graph.internal, kind="stable")
    loads = np.zeros(num_partitions, dtype=np.int64)
    assignment = np.empty(cluster_graph.num_clusters, dtype=np.int64)
    for c in order.tolist():
        target = int(np.argmin(loads))
        assignment[c] = target
        loads[target] += int(cluster_graph.internal[c])
    return assignment


class ClugpPartitioner(EdgePartitioner):
    """CLUGP: clustering-based restreaming vertex-cut graph partitioning.

    Parameters
    ----------
    num_partitions:
        ``k``.
    seed:
        Seed for the game's random initial assignment.
    config:
        Full :class:`~repro.config.ClugpConfig`; when omitted, a default
        config with this ``k``/``seed`` is built.  Keyword conveniences
        (``imbalance_factor``, ``max_cluster_volume``, ``parallel_game``,
        ``game``) override single fields.

    After :meth:`partition` the intermediate products of the three passes
    are exposed as :attr:`last_clustering`, :attr:`last_cluster_graph`,
    :attr:`last_game_result` and :attr:`last_transform_stats` for
    inspection, testing, and the ablation benchmarks.
    """

    name = "clugp"
    passes = 3
    preferred_order = "natural"
    _enable_splitting = True
    _use_game = True

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        config: ClugpConfig | None = None,
        imbalance_factor: float | None = None,
        max_cluster_volume: int | None = None,
        parallel: bool | None = None,
        game: GameConfig | None = None,
    ) -> None:
        super().__init__(num_partitions, seed)
        if config is None:
            config = ClugpConfig(num_partitions=num_partitions)
        if config.num_partitions != num_partitions:
            config = config.with_(num_partitions=num_partitions)
        overrides = {}
        if imbalance_factor is not None:
            overrides["imbalance_factor"] = imbalance_factor
        if max_cluster_volume is not None:
            overrides["max_cluster_volume"] = max_cluster_volume
        if parallel is not None:
            overrides["parallel_game"] = parallel
        overrides["enable_splitting"] = self._enable_splitting
        overrides["use_game"] = self._use_game
        if game is not None:
            overrides["game"] = game
        config = config.with_(**overrides)
        if config.game.seed != seed:
            config = config.with_(game=config.game.with_(seed=seed))
        self.config = config
        self.last_clustering: ClusteringResult | None = None
        self.last_cluster_graph: ClusterGraph | None = None
        self.last_game_result: GameResult | None = None
        self.last_transform_stats: TransformStats | None = None

    # ------------------------------------------------------------------ #

    def partition(self, stream: EdgeStream) -> PartitionAssignment:
        """Run the three passes; stage timings are recorded per pass."""
        self._last_stream = stream
        times = StageTimes()
        cfg = self.config
        vmax = cfg.resolve_vmax(stream.num_edges)

        with Timer() as t1:
            clustering = streaming_clustering(
                stream, vmax, enable_splitting=cfg.enable_splitting
            )
        times.add("clustering", t1.elapsed)

        with Timer() as t2:
            cluster_graph = build_cluster_graph(stream, clustering)
            game_result = self._map_clusters(cluster_graph)
        times.add("game", t2.elapsed)

        with Timer() as t3:
            edge_partition, stats = transform_partitions(
                stream,
                clustering,
                game_result.assignment,
                cfg.num_partitions,
                imbalance_factor=cfg.imbalance_factor,
            )
        times.add("transform", t3.elapsed)

        self.last_clustering = clustering
        self.last_cluster_graph = cluster_graph
        self.last_game_result = game_result
        self.last_transform_stats = stats
        return PartitionAssignment(stream, edge_partition, cfg.num_partitions, times)

    def _assign(self, stream: EdgeStream) -> np.ndarray:  # pragma: no cover
        # partition() is overridden wholesale; _assign exists to satisfy the
        # abstract interface for callers that bypass partition().
        return self.partition(stream).edge_partition

    def _map_clusters(self, cluster_graph: ClusterGraph) -> GameResult:
        cfg = self.config
        if not cfg.use_game:
            assignment = greedy_cluster_assignment(cluster_graph, cfg.num_partitions)
            return GameResult(
                assignment=assignment,
                rounds=0,
                moves=0,
                lambda_value=0.0,
                potential_trace=[],
            )
        if cfg.parallel_game:
            return parallel_game(cluster_graph, cfg.num_partitions, cfg.game)
        game = ClusterPartitioningGame(cluster_graph, cfg.num_partitions, cfg.game)
        return game.run()

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """O(2|V|) vertex tables + cluster tables (Section VI: CLUGP keeps
        the vertex->cluster map and the degree array)."""
        m = self.last_clustering.num_clusters if self.last_clustering else 0
        return 2 * stream.num_vertices * 8 + 3 * m * 8


class ClugpNoSplitPartitioner(ClugpPartitioner):
    """CLUGP-S ablation: splitting disabled (Holl-style pass 1)."""

    name = "clugp-s"
    _enable_splitting = False


class ClugpGreedyPartitioner(ClugpPartitioner):
    """CLUGP-G ablation: greedy cluster placement instead of the game."""

    name = "clugp-g"
    _use_game = False
