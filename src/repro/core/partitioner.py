"""The CLUGP pipeline (Figure 1) and its ablation variants (Figure 9).

Three restreaming passes:

1. :class:`~repro.core.clustering.ClusteringState` (chunk-by-chunk) /
   :func:`~repro.core.clustering.streaming_clustering` (per-edge
   reference) — vertex clusters;
2. :func:`~repro.core.cluster_graph.build_cluster_graph` +
   :class:`~repro.core.game.ClusterPartitioningGame` (or the batched
   :func:`~repro.core.parallel.parallel_game`) — cluster -> partition map;
3. :class:`~repro.core.transform.TransformState` (chunk-by-chunk) /
   :func:`~repro.core.transform.transform_partitions` (per-edge
   reference) — edge -> partition.

Ablations:

* :class:`ClugpNoSplitPartitioner` ("CLUGP-S") disables the splitting
  operation — pass 1 degenerates to Hollocou's allocation-migration;
* :class:`ClugpGreedyPartitioner` ("CLUGP-G") replaces the game with the
  greedy rule "biggest cluster into currently smallest partition".

Ingestion paths
---------------
All three variants implement the PR-1 chunk protocol
(``begin_chunks`` / ``partition_chunk`` / ``finish_chunks``): pass 1
consumes each ``(m, 2)`` chunk incrementally while the chunk is also
buffered (a multi-pass algorithm re-reads the stream; buffering is the
in-memory stand-in for the re-scan, so the protocol defers every edge and
flushes the full assignment from ``finish_chunks`` after passes 2-3 run).
:meth:`partition` drives the same vectorized engines over the whole
stream; :meth:`partition_per_edge` retains the faithful per-edge loops
(and the per-neighbor game scorer) as the correctness reference.  All
three paths produce bit-identical assignments.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from .._util import StageTimes, Timer
from ..config import ClugpConfig, GameConfig
from ..graph.stream import EdgeStream
from ..partitioners.base import EdgePartitioner, PartitionAssignment
from .clustering import ClusteringResult, ClusteringState, streaming_clustering
from .cluster_graph import ClusterGraph, build_cluster_graph, cluster_graph_from_labels
from .game import ClusterPartitioningGame, GameResult
from .parallel import parallel_game
from .transform import (
    TransformState,
    TransformStats,
    replay_transform_chunked,
    transform_partitions,
)

__all__ = [
    "ClusterSummary",
    "ClugpPartitioner",
    "ClugpNoSplitPartitioner",
    "ClugpGreedyPartitioner",
    "greedy_cluster_assignment",
]


@dataclass
class ClusterSummary:
    """The compact, serializable product of a node's pass 1 (+ local game).

    This is everything a distributed ingest node ships to the coordinator
    for the Section III-C merge — no raw interior edges, only cluster-level
    aggregates plus the boundary residue the node cannot resolve alone:

    * ``resolved`` — the shard's cluster graph restricted to edges with
      **no** shard-boundary endpoint.  For those edges the local cluster
      ids are final (an interior vertex lives in exactly one shard), so
      the coordinator can union them into the global cluster graph by a
      pure relabel (:meth:`ClusterGraph.merge`).
    * ``unresolved_*`` — the raw endpoints *and* local endpoint clusters
      of every edge that touches a boundary vertex.  Their cluster-graph
      attribution depends on the coordinator's boundary resolution, so
      they are shipped unaggregated and the coordinator attributes their
      cut weight exactly against the merged vertex->cluster map.
    * ``boundary_*`` — the vertex->cluster map (plus local degrees, used
      by the resolution policy) restricted to boundary vertices seen in
      this shard.
    * ``local_assignment`` — the node's local game equilibrium, the warm
      start of the coordinator's global refinement game.

    ``wire_bytes`` measures the payload a real deployment would serialize
    (the in-CSR of ``resolved`` is its transpose and is never shipped).
    """

    node: int
    num_vertices: int
    num_edges: int
    num_clusters: int
    volume: np.ndarray
    resolved: ClusterGraph
    boundary_vertices: np.ndarray
    boundary_clusters: np.ndarray
    boundary_degrees: np.ndarray
    unresolved_src: np.ndarray
    unresolved_dst: np.ndarray
    unresolved_src_cluster: np.ndarray
    unresolved_dst_cluster: np.ndarray
    local_assignment: np.ndarray
    local_game_rounds: int
    splits: int
    checksum: int = 0

    def _wire_arrays(self) -> tuple[np.ndarray, ...]:
        """Every array that crosses the wire, in a fixed canonical order."""
        return (
            self.volume,
            self.resolved.internal,
            self.resolved.indptr,
            self.resolved.indices,
            self.resolved.weights,
            self.boundary_vertices,
            self.boundary_clusters,
            self.boundary_degrees,
            self.unresolved_src,
            self.unresolved_dst,
            self.unresolved_src_cluster,
            self.unresolved_dst_cluster,
            self.local_assignment,
        )

    def wire_bytes(self) -> int:
        """Measured serialized size: every array that crosses the wire."""
        return int(sum(a.nbytes for a in self._wire_arrays()))

    def compute_checksum(self) -> int:
        """CRC-32 chained over the wire arrays plus the scalar header.

        Cheap enough to run on every summary (a few MB/ms) and exactly
        what the coordinator recomputes to detect payload corruption in
        transit — see :meth:`validate`.
        """
        crc = zlib.crc32(
            np.asarray(
                [self.node, self.num_vertices, self.num_edges, self.num_clusters,
                 self.local_game_rounds, self.splits],
                dtype=np.int64,
            ).tobytes()
        )
        for array in self._wire_arrays():
            crc = zlib.crc32(np.ascontiguousarray(array).tobytes(), crc)
        return crc

    def seal(self) -> "ClusterSummary":
        """Stamp :attr:`checksum` (the node's last act before shipping)."""
        self.checksum = self.compute_checksum()
        return self

    def validate(self) -> str | None:
        """Coordinator-side schema + checksum check; None means healthy.

        Returns a short problem description for anything a corrupt or
        truncated wire transfer could produce: inconsistent array
        lengths, a CSR whose ``indptr`` disagrees with its graph, or a
        checksum mismatch on byte-flipped payloads.
        """
        if self.num_clusters < 0 or self.num_edges < 0:
            return f"negative sizes (clusters={self.num_clusters}, edges={self.num_edges})"
        if self.volume.shape != (self.num_clusters,):
            return (
                f"volume length {self.volume.shape} != num_clusters {self.num_clusters}"
            )
        if self.local_assignment.shape != (self.num_clusters,):
            return (
                f"local_assignment length {self.local_assignment.shape} "
                f"!= num_clusters {self.num_clusters}"
            )
        if self.resolved.indptr.size != self.num_clusters + 1:
            return (
                f"resolved indptr size {self.resolved.indptr.size} "
                f"!= num_clusters + 1 = {self.num_clusters + 1}"
            )
        if not (
            self.boundary_vertices.shape
            == self.boundary_clusters.shape
            == self.boundary_degrees.shape
        ):
            return "boundary arrays have mismatched lengths"
        if not (
            self.unresolved_src.shape
            == self.unresolved_dst.shape
            == self.unresolved_src_cluster.shape
            == self.unresolved_dst_cluster.shape
        ):
            return "unresolved-edge arrays have mismatched lengths"
        for name in ("volume", "boundary_vertices", "local_assignment",
                     "unresolved_src"):
            if getattr(self, name).dtype != np.int64:
                return f"{name} has dtype {getattr(self, name).dtype}, expected int64"
        if self.checksum and self.compute_checksum() != self.checksum:
            return "checksum mismatch (payload corrupted in transit)"
        return None


def greedy_cluster_assignment(cluster_graph: ClusterGraph, num_partitions: int) -> np.ndarray:
    """CLUGP-G pass 2: big clusters first, each into the lightest partition.

    This is the classic LPT bin-packing heuristic — balance-only, blind to
    edge cutting — which is exactly what Figure 9 isolates.
    """
    order = np.argsort(-cluster_graph.internal, kind="stable")
    loads = np.zeros(num_partitions, dtype=np.int64)
    assignment = np.empty(cluster_graph.num_clusters, dtype=np.int64)
    for c in order.tolist():
        target = int(np.argmin(loads))
        assignment[c] = target
        loads[target] += int(cluster_graph.internal[c])
    return assignment


class ClugpPartitioner(EdgePartitioner):
    """CLUGP: clustering-based restreaming vertex-cut graph partitioning.

    Parameters
    ----------
    num_partitions:
        ``k``.
    seed:
        Seed for the game's random initial assignment.
    config:
        Full :class:`~repro.config.ClugpConfig`; when omitted, a default
        config with this ``k``/``seed`` is built.  Keyword conveniences
        (``imbalance_factor``, ``max_cluster_volume``, ``parallel_game``,
        ``game``, ``chunk_impl``, ``kernel_backend``, ``game_impl``)
        override single fields; ``game_impl`` reaches into the nested
        game config, and a non-default ``kernel_backend`` steers the
        game's backend too (see :class:`~repro.config.ClugpConfig`).

    After :meth:`partition` (or a chunked run) the intermediate products
    of the three passes are exposed as :attr:`last_clustering`,
    :attr:`last_cluster_graph`, :attr:`last_game_result` and
    :attr:`last_transform_stats` for inspection, testing, and the
    ablation benchmarks.
    """

    name = "clugp"
    passes = 3
    preferred_order = "natural"
    supports_chunks = True
    _enable_splitting = True
    _use_game = True

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        config: ClugpConfig | None = None,
        imbalance_factor: float | None = None,
        max_cluster_volume: int | None = None,
        parallel: bool | None = None,
        game: GameConfig | None = None,
        chunk_impl: str | None = None,
        kernel_backend: str | None = None,
        game_impl: str | None = None,
    ) -> None:
        super().__init__(num_partitions, seed)
        if config is None:
            config = ClugpConfig(num_partitions=num_partitions)
        if config.num_partitions != num_partitions:
            config = config.with_(num_partitions=num_partitions)
        overrides = {}
        if imbalance_factor is not None:
            overrides["imbalance_factor"] = imbalance_factor
        if max_cluster_volume is not None:
            overrides["max_cluster_volume"] = max_cluster_volume
        if parallel is not None:
            overrides["parallel_game"] = parallel
        if chunk_impl is not None:
            overrides["chunk_impl"] = chunk_impl
        if kernel_backend is not None:
            overrides["kernel_backend"] = kernel_backend
        overrides["enable_splitting"] = self._enable_splitting
        overrides["use_game"] = self._use_game
        if game is not None:
            overrides["game"] = game
        config = config.with_(**overrides)
        if config.game.seed != seed:
            config = config.with_(game=config.game.with_(seed=seed))
        if game_impl is not None and config.game.game_impl != game_impl:
            config = config.with_(game=config.game.with_(game_impl=game_impl))
        self.config = config
        self.last_clustering: ClusteringResult | None = None
        self.last_cluster_graph: ClusterGraph | None = None
        self.last_game_result: GameResult | None = None
        self.last_transform_stats: TransformStats | None = None
        # chunk-protocol state
        self._chunk_state: ClusteringState | None = None
        self._chunk_buffer: list[np.ndarray] | None = None
        self._chunk_stream_meta: tuple[int, int] | None = None

    # ------------------------------------------------------------------ #
    # whole-stream ingestion (vectorized engines)
    # ------------------------------------------------------------------ #

    def partition(self, stream: EdgeStream) -> PartitionAssignment:
        """Run the three passes; stage timings are recorded per pass."""
        self._last_stream = stream
        times = StageTimes()
        cfg = self.config
        vmax = cfg.resolve_vmax(stream.num_edges)

        with Timer() as t1:
            state = ClusteringState(
                stream.num_vertices,
                vmax,
                enable_splitting=cfg.enable_splitting,
                chunk_impl=cfg.chunk_impl,
                kernel_backend=cfg.kernel_backend,
            )
            for src, dst in stream.batches(max(1, self.default_chunk_size)):
                state.ingest_pair(src, dst)
            clustering = state.finalize()
        times.add("clustering", t1.elapsed)

        with Timer() as t2:
            cluster_graph = build_cluster_graph(stream, clustering)
            game_result = self._map_clusters(cluster_graph)
        times.add("game", t2.elapsed)

        with Timer() as t3:
            transform = TransformState(
                clustering,
                game_result.assignment,
                cfg.num_partitions,
                num_edges=stream.num_edges,
                num_vertices=stream.num_vertices,
                imbalance_factor=cfg.imbalance_factor,
                chunk_impl=cfg.chunk_impl,
                kernel_backend=cfg.kernel_backend,
            )
            parts = [
                transform.ingest_pair(src, dst)
                for src, dst in stream.batches(max(1, self.default_chunk_size))
            ]
            if not parts:
                edge_partition = np.empty(0, dtype=np.int64)
            else:
                edge_partition = (
                    parts[0] if len(parts) == 1 else np.concatenate(parts)
                )
        times.add("transform", t3.elapsed)

        self.last_clustering = clustering
        self.last_cluster_graph = cluster_graph
        self.last_game_result = game_result
        self.last_transform_stats = transform.stats
        return PartitionAssignment(stream, edge_partition, cfg.num_partitions, times)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        # partition() is overridden wholesale; _assign exists to satisfy the
        # abstract interface for callers that bypass partition().
        return self.partition(stream).edge_partition

    # ------------------------------------------------------------------ #
    # per-edge reference path
    # ------------------------------------------------------------------ #

    def _assign_per_edge(self, stream: EdgeStream) -> np.ndarray:
        """The faithful per-edge pipeline: reference loops for passes 1
        and 3 and the per-neighbor game scorer for pass 2."""
        cfg = self.config
        vmax = cfg.resolve_vmax(stream.num_edges)
        clustering = streaming_clustering(
            stream, vmax, enable_splitting=cfg.enable_splitting
        )
        cluster_graph = build_cluster_graph(stream, clustering)
        game_result = self._map_clusters(cluster_graph, vectorized=False)
        edge_partition, stats = transform_partitions(
            stream,
            clustering,
            game_result.assignment,
            cfg.num_partitions,
            imbalance_factor=cfg.imbalance_factor,
        )
        self.last_clustering = clustering
        self.last_cluster_graph = cluster_graph
        self.last_game_result = game_result
        self.last_transform_stats = stats
        return edge_partition

    # ------------------------------------------------------------------ #
    # incremental chunk protocol
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        """Reset pass-1 state; reads only stream metadata (``V_max``
        resolves against ``num_edges``, as Section VI-A prescribes)."""
        cfg = self.config
        vmax = cfg.resolve_vmax(stream.num_edges)
        self._chunk_state = ClusteringState(
            stream.num_vertices,
            vmax,
            enable_splitting=cfg.enable_splitting,
            chunk_impl=cfg.chunk_impl,
            kernel_backend=cfg.kernel_backend,
        )
        self._chunk_buffer = []
        self._chunk_stream_meta = (stream.num_vertices, stream.num_edges)

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        """Feed pass 1 and buffer the chunk for the later passes.

        CLUGP is a three-pass algorithm, so no edge can be committed until
        the clustering and the game have seen the whole stream — every
        edge is deferred and flushed by :meth:`finish_chunks`."""
        if self._chunk_state is None or self._chunk_buffer is None:
            raise RuntimeError("begin_chunks must be called first")
        edges = np.asarray(edges, dtype=np.int64)
        self._chunk_state.ingest(edges)
        self._chunk_buffer.append(edges)
        return np.empty(0, dtype=np.int64)

    def finish_chunks(self) -> np.ndarray:
        """Run passes 2-3 over the buffered chunks; returns every edge's
        partition in stream order."""
        if self._chunk_state is None or self._chunk_buffer is None:
            raise RuntimeError("begin_chunks must be called first")
        num_vertices, _ = self._chunk_stream_meta
        cfg = self.config
        clustering = self._chunk_state.finalize()
        buffered = EdgeStream.from_chunks(self._chunk_buffer, num_vertices)
        # the concatenated stream supersedes the per-chunk copies; drop the
        # buffer now so passes 2-3 run against a single copy of the edges
        self._chunk_buffer = None
        cluster_graph = build_cluster_graph(buffered, clustering)
        game_result = self._map_clusters(cluster_graph)
        transform = TransformState(
            clustering,
            game_result.assignment,
            cfg.num_partitions,
            num_edges=buffered.num_edges,
            num_vertices=num_vertices,
            imbalance_factor=cfg.imbalance_factor,
            chunk_impl=cfg.chunk_impl,
            kernel_backend=cfg.kernel_backend,
        )
        parts = [
            transform.ingest_pair(src, dst)
            for src, dst in buffered.batches(max(1, self.default_chunk_size))
        ]
        self.last_clustering = clustering
        self.last_cluster_graph = cluster_graph
        self.last_game_result = game_result
        self.last_transform_stats = transform.stats
        self._chunk_state = None
        self._chunk_stream_meta = None
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # staged API (the distributed protocol's separable stages)
    # ------------------------------------------------------------------ #

    def cluster_summary(
        self,
        stream: EdgeStream,
        boundary_mask: np.ndarray | None = None,
        chunk_size: int | None = None,
        node: int = 0,
    ) -> ClusterSummary:
        """Stage 1+2 (node-side): pass 1 over ``stream``, the local game,
        and the serializable :class:`ClusterSummary` for the coordinator.

        ``boundary_mask`` flags shard-boundary vertices (vertices that
        also appear in other shards); edges touching one are shipped
        unresolved, everything else is aggregated into the ``resolved``
        cluster graph.  With no mask (or a single shard) every edge is
        resolved and the summary carries the full local cluster graph.

        The intermediate pipeline products are retained on
        :attr:`last_clustering` / :attr:`last_cluster_graph` /
        :attr:`last_game_result`, so a node can replay pass 3 afterwards
        via :meth:`transform_with_mapping`.
        """
        cfg = self.config
        vmax = cfg.resolve_vmax(stream.num_edges)
        state = ClusteringState(
            stream.num_vertices,
            vmax,
            enable_splitting=cfg.enable_splitting,
            chunk_impl=cfg.chunk_impl,
            kernel_backend=cfg.kernel_backend,
        )
        size = chunk_size if chunk_size is not None else self.default_chunk_size
        for src, dst in stream.batches(max(1, size)):
            state.ingest_pair(src, dst)
        clustering = state.finalize()
        # the node's own (full) cluster graph drives its local game; the
        # summary ships the boundary-free restriction of it
        cluster_graph = build_cluster_graph(stream, clustering)
        game_result = self._map_clusters(cluster_graph)
        if boundary_mask is None:
            boundary_mask = np.zeros(stream.num_vertices, dtype=bool)
        cu = clustering.cluster_of[stream.src]
        cv = clustering.cluster_of[stream.dst]
        unresolved = boundary_mask[stream.src] | boundary_mask[stream.dst]
        resolved_graph = cluster_graph_from_labels(
            cu[~unresolved], cv[~unresolved], clustering.num_clusters
        )
        bverts = np.flatnonzero(clustering.active_mask() & boundary_mask)
        self.last_clustering = clustering
        self.last_cluster_graph = cluster_graph
        self.last_game_result = game_result
        return ClusterSummary(
            node=node,
            num_vertices=stream.num_vertices,
            num_edges=stream.num_edges,
            num_clusters=clustering.num_clusters,
            volume=clustering.volume,
            resolved=resolved_graph,
            boundary_vertices=bverts,
            boundary_clusters=clustering.cluster_of[bverts],
            boundary_degrees=clustering.degree[bverts],
            unresolved_src=stream.src[unresolved],
            unresolved_dst=stream.dst[unresolved],
            unresolved_src_cluster=cu[unresolved],
            unresolved_dst_cluster=cv[unresolved],
            local_assignment=game_result.assignment,
            local_game_rounds=game_result.rounds,
            splits=clustering.splits,
        ).seal()

    def transform_with_mapping(
        self,
        stream: EdgeStream,
        vertex_partition: np.ndarray,
        clustering: ClusteringResult | None = None,
        chunk_size: int | None = None,
        load_caps: np.ndarray | None = None,
    ) -> np.ndarray:
        """Stage 4 (node-side): replay pass 3 over ``stream`` under an
        externally supplied vertex->partition mapping.

        The distributed merged mode broadcasts the coordinator's global
        decision and each node re-streams only its own shard; the local
        mirror/degree heuristics (``divided`` flags, degrees) still come
        from the node's pass-1 ``clustering`` (default: the one retained
        by :meth:`cluster_summary`).  ``load_caps`` carries per-partition
        quotas from the balance quota exchange (None = the uniform cap).
        """
        if clustering is None:
            clustering = self.last_clustering
        if clustering is None:
            raise RuntimeError("run cluster_summary first or pass clustering")
        cfg = self.config
        size = chunk_size if chunk_size is not None else self.default_chunk_size
        edge_partition, stats = replay_transform_chunked(
            stream,
            clustering,
            vertex_partition,
            cfg.num_partitions,
            imbalance_factor=cfg.imbalance_factor,
            load_caps=load_caps,
            chunk_size=size,
            chunk_impl=cfg.chunk_impl,
            kernel_backend=cfg.kernel_backend,
        )
        self.last_transform_stats = stats
        return edge_partition

    # ------------------------------------------------------------------ #

    def _map_clusters(
        self, cluster_graph: ClusterGraph, vectorized: bool = True
    ) -> GameResult:
        cfg = self.config
        if not cfg.use_game:
            assignment = greedy_cluster_assignment(cluster_graph, cfg.num_partitions)
            return GameResult(
                assignment=assignment,
                rounds=0,
                moves=0,
                lambda_value=0.0,
                potential_trace=[],
            )
        if cfg.parallel_game:
            return parallel_game(cluster_graph, cfg.num_partitions, cfg.game)
        game = ClusterPartitioningGame(
            cluster_graph, cfg.num_partitions, cfg.game, vectorized=vectorized
        )
        return game.run()

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """O(2|V|) vertex tables + cluster tables (Section VI: CLUGP keeps
        the vertex->cluster map and the degree array)."""
        m = self.last_clustering.num_clusters if self.last_clustering else 0
        return 2 * stream.num_vertices * 8 + 3 * m * 8


class ClugpNoSplitPartitioner(ClugpPartitioner):
    """CLUGP-S ablation: splitting disabled (Holl-style pass 1)."""

    name = "clugp-s"
    _enable_splitting = False


class ClugpGreedyPartitioner(ClugpPartitioner):
    """CLUGP-G ablation: greedy cluster placement instead of the game."""

    name = "clugp-g"
    _use_game = False
