"""Parallel batched cluster-partitioning game (Section V-D, Figure 1(d)).

The sequential game (Algorithm 3) is compute-bound, so the paper batches
clusters by *consecutive ids* — streaming clustering preserves graph
locality, so id-adjacent clusters are structurally adjacent — and hands
each batch to a partitioning thread.  Threads best-respond their batch
against a snapshot of the global loads; moves are applied at batch
barriers, and outer rounds repeat until no cluster moves.

Batched evaluation (PR 3): a thread no longer loops per cluster — it
scores its whole remaining batch as one ``(batch, k)`` cost matrix
(:meth:`ClusterPartitioningGame.batch_cost_matrix`: segmented bincount
over the batch's CSR slice + one matrix expression — with
``game_impl="jit"`` the rows come from the compiled ``game_cost_rows``
kernel instead, bit-identically), commits every cluster before the
first mover wholesale (their frozen evaluation *is* the sequential
one), applies that mover, and re-scores only the perturbed suffix.  Mover-dense stretches fall back to the retained
sequential loop (:func:`_batch_best_response_reference`); proposed moves
are identical either way.

Notes on fidelity: the paper's Java implementation shares a lock-free load
table; under CPython the thread pool mostly pipelines numpy work, so we
report both wall time and *work units* (cost evaluations) — the scalability
shape of Figure 10 comes from the batching structure, not the GIL.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import GameConfig
from .cluster_graph import ClusterGraph
from .game import _IMPROVEMENT_EPS, ClusterPartitioningGame, GameResult

__all__ = ["parallel_game"]

#: movers seen in one vectorized suffix evaluation above which the batch
#: falls back to the sequential per-cluster loop: each extra mover forces
#: a full suffix re-evaluation (loads changed), so mover-dense early
#: rounds are cheaper sequentially while the quiet late rounds — the vast
#: majority — settle in a single matrix evaluation per batch.
_SCALAR_FALLBACK_MOVERS = 8


def _batch_best_response_reference(
    game: ClusterPartitioningGame,
    batch: range,
    assignment_snapshot: np.ndarray,
    loads_snapshot: np.ndarray,
) -> list[tuple[int, int]]:
    """Per-cluster best responses for ``batch`` against frozen global state.

    Returns proposed moves ``(cluster, new_partition)``.  Within the batch
    the snapshot is updated locally so the thread's own decisions compose
    (this mirrors the paper's per-thread task that finds the equilibrium of
    its batch).  Each cluster's adjacency is one bincount over its CSR
    neighbor slice of the symmetrized cluster graph.

    This is the sequential reference loop: the correctness oracle for the
    batched evaluator below, and the fallback it hands mover-dense
    stretches to.
    """
    k = game.k
    lam_eff = game._lambda_eff
    internal = game.graph.internal
    indptr = game._sym_indptr
    indices = game._sym_indices
    weights = game._sym_weights
    moves: list[tuple[int, int]] = []
    local_assign = assignment_snapshot
    local_loads = loads_snapshot
    for c in batch:
        size = float(internal[c])
        cur = int(local_assign[c])
        loads_wo = local_loads.copy()
        loads_wo[cur] -= size
        load_cost = (lam_eff / k) * size * (loads_wo + size)
        s, e = int(indptr[c]), int(indptr[c + 1])
        if s == e:
            adj = np.zeros(k, dtype=np.float64)
        else:
            adj = np.bincount(
                local_assign[indices[s:e]], weights=weights[s:e], minlength=k
            )
        cut_cost = 0.5 * (game._cut_degree[c] - adj)
        costs = load_cost + cut_cost
        best = int(np.argmin(costs))
        if costs[best] < costs[cur] - _IMPROVEMENT_EPS:
            moves.append((c, best))
            local_assign[c] = best
            local_loads[cur] -= size
            local_loads[best] += size
    return moves


def _batch_best_response(
    game: ClusterPartitioningGame,
    batch: range,
    assignment_snapshot: np.ndarray,
    loads_snapshot: np.ndarray,
) -> list[tuple[int, int]]:
    """Batched best responses: vectorized suffix evaluation with exact
    sequential semantics.

    The whole remaining batch is scored as one
    :meth:`~repro.core.game.ClusterPartitioningGame.batch_cost_matrix`
    call (segmented bincount over the batch's CSR slice + one matrix
    expression).  Every cluster before the first mover provably repeats
    its sequential no-move decision (the frozen state it was scored
    against *is* the state the sequential loop would see), so the scan
    commits all of them at once, applies the first mover, and re-evaluates
    only the suffix whose loads that move perturbed.  Proposed moves are
    identical to :func:`_batch_best_response_reference` — enforced by
    tests and the bench identity check — because the cost kernel is
    bit-for-bit the same expression.

    Quiet batches (no mover, the common case once the game approaches
    equilibrium) cost a single matrix evaluation; mover-dense stretches
    are handed to the sequential reference loop, which is cheaper than
    one re-evaluation per mover.
    """
    internal = game.graph.internal
    moves: list[tuple[int, int]] = []
    local_assign = assignment_snapshot
    local_loads = loads_snapshot
    s = batch.start
    stop = batch.stop
    while s < stop:
        costs = game.batch_cost_matrix(s, stop, local_assign, local_loads)
        rows = np.arange(stop - s)
        cur = local_assign[s:stop]
        best = costs.argmin(axis=1)
        improves = costs[rows, best] < costs[rows, cur] - _IMPROVEMENT_EPS
        num_movers = int(improves.sum())
        if num_movers == 0:
            break
        first = int(np.argmax(improves))
        c = s + first
        target = int(best[first])
        size = float(internal[c])
        current = int(local_assign[c])
        moves.append((c, target))
        local_assign[c] = target
        local_loads[current] -= size
        local_loads[target] += size
        s = c + 1
        if num_movers - 1 > _SCALAR_FALLBACK_MOVERS:
            moves.extend(
                _batch_best_response_reference(
                    game, range(s, stop), local_assign, local_loads
                )
            )
            break
    return moves


def parallel_game(
    cluster_graph: ClusterGraph,
    num_partitions: int,
    config: GameConfig | None = None,
    initial_assignment: np.ndarray | None = None,
) -> GameResult:
    """Run the batched multi-threaded game; same result type as the
    sequential :meth:`ClusterPartitioningGame.run`.

    Batches are contiguous id ranges of ``config.batch_size`` clusters;
    ``config.num_threads`` threads process batches concurrently.  Outer
    rounds repeat until a full round proposes no move (a batch-consistent
    equilibrium) or ``config.max_rounds`` is hit.  ``initial_assignment``
    replaces the random initialization (the distributed coordinator's
    warm-started global refinement).
    """
    config = config or GameConfig()
    game = ClusterPartitioningGame(
        cluster_graph, num_partitions, config, initial_assignment=initial_assignment
    )
    m = cluster_graph.num_clusters
    if m == 0:
        return GameResult(
            assignment=game.assignment.copy(),
            rounds=0,
            moves=0,
            lambda_value=game.lambda_value,
            potential_trace=[game.potential()],
        )
    batches = [
        range(start, min(start + config.batch_size, m))
        for start in range(0, m, config.batch_size)
    ]
    trace = [game.potential()]
    total_moves = 0
    rounds = 0
    converged = False
    with ThreadPoolExecutor(max_workers=config.num_threads) as pool:
        for rounds in range(1, config.max_rounds + 1):
            snapshot_assign = game.assignment.copy()
            snapshot_loads = game.loads.copy()
            futures = [
                pool.submit(
                    _batch_best_response,
                    game,
                    batch,
                    snapshot_assign.copy(),
                    snapshot_loads.copy(),
                )
                for batch in batches
            ]
            proposed = [mv for fut in futures for mv in fut.result()]
            # apply moves at the barrier, re-validating against true state:
            # accept a move only if it still strictly improves (stale
            # snapshots can propose conflicting moves).
            applied = 0
            for c, target in proposed:
                costs = game.cost_vector(c)
                cur = int(game.assignment[c])
                if costs[target] < costs[cur] - _IMPROVEMENT_EPS:
                    size = float(game.graph.internal[c])
                    game.loads[cur] -= size
                    game.loads[target] += size
                    game.assignment[c] = target
                    applied += 1
            total_moves += applied
            trace.append(game.potential())
            if applied == 0:
                converged = True
                break
    return GameResult(
        assignment=game.assignment.copy(),
        rounds=rounds,
        moves=total_moves,
        lambda_value=game.lambda_value,
        potential_trace=trace,
        converged=converged,
    )
