"""Parallel batched cluster-partitioning game (Section V-D, Figure 1(d)).

The sequential game (Algorithm 3) is compute-bound, so the paper batches
clusters by *consecutive ids* — streaming clustering preserves graph
locality, so id-adjacent clusters are structurally adjacent — and hands
each batch to a partitioning thread.  Threads best-respond their batch
against a snapshot of the global loads; moves are applied at batch
barriers, and outer rounds repeat until no cluster moves.

Notes on fidelity: the paper's Java implementation shares a lock-free load
table; under CPython the thread pool mostly pipelines numpy work, so we
report both wall time and *work units* (cost evaluations) — the scalability
shape of Figure 10 comes from the batching structure, not the GIL.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import GameConfig
from .cluster_graph import ClusterGraph
from .game import ClusterPartitioningGame, GameResult

__all__ = ["parallel_game"]


def _batch_best_response(
    game: ClusterPartitioningGame,
    batch: range,
    assignment_snapshot: np.ndarray,
    loads_snapshot: np.ndarray,
) -> list[tuple[int, int]]:
    """Compute best responses for ``batch`` against frozen global state.

    Returns proposed moves ``(cluster, new_partition)``.  Within the batch
    the snapshot is updated locally so the thread's own decisions compose
    (this mirrors the paper's per-thread task that finds the equilibrium of
    its batch).  Each cluster's adjacency is one bincount over its CSR
    neighbor slice of the symmetrized cluster graph — the batch is a view
    ``[indptr[batch.start] : indptr[batch.stop]]`` of the shared arrays,
    so threads do numpy work without copying or locking the graph.
    """
    k = game.k
    lam_eff = game._lambda_eff
    internal = game.graph.internal
    indptr = game._sym_indptr
    indices = game._sym_indices
    weights = game._sym_weights
    moves: list[tuple[int, int]] = []
    local_assign = assignment_snapshot
    local_loads = loads_snapshot
    for c in batch:
        size = float(internal[c])
        cur = int(local_assign[c])
        loads_wo = local_loads.copy()
        loads_wo[cur] -= size
        load_cost = (lam_eff / k) * size * (loads_wo + size)
        s, e = int(indptr[c]), int(indptr[c + 1])
        if s == e:
            adj = np.zeros(k, dtype=np.float64)
        else:
            adj = np.bincount(
                local_assign[indices[s:e]], weights=weights[s:e], minlength=k
            )
        cut_cost = 0.5 * (game._cut_degree[c] - adj)
        costs = load_cost + cut_cost
        best = int(np.argmin(costs))
        if costs[best] < costs[cur] - 1e-9:
            moves.append((c, best))
            local_assign[c] = best
            local_loads[cur] -= size
            local_loads[best] += size
    return moves


def parallel_game(
    cluster_graph: ClusterGraph,
    num_partitions: int,
    config: GameConfig | None = None,
) -> GameResult:
    """Run the batched multi-threaded game; same result type as the
    sequential :meth:`ClusterPartitioningGame.run`.

    Batches are contiguous id ranges of ``config.batch_size`` clusters;
    ``config.num_threads`` threads process batches concurrently.  Outer
    rounds repeat until a full round proposes no move (a batch-consistent
    equilibrium) or ``config.max_rounds`` is hit.
    """
    config = config or GameConfig()
    game = ClusterPartitioningGame(cluster_graph, num_partitions, config)
    m = cluster_graph.num_clusters
    if m == 0:
        return GameResult(
            assignment=game.assignment.copy(),
            rounds=0,
            moves=0,
            lambda_value=game.lambda_value,
            potential_trace=[game.potential()],
        )
    batches = [
        range(start, min(start + config.batch_size, m))
        for start in range(0, m, config.batch_size)
    ]
    trace = [game.potential()]
    total_moves = 0
    rounds = 0
    converged = False
    with ThreadPoolExecutor(max_workers=config.num_threads) as pool:
        for rounds in range(1, config.max_rounds + 1):
            snapshot_assign = game.assignment.copy()
            snapshot_loads = game.loads.copy()
            futures = [
                pool.submit(
                    _batch_best_response,
                    game,
                    batch,
                    snapshot_assign.copy(),
                    snapshot_loads.copy(),
                )
                for batch in batches
            ]
            proposed = [mv for fut in futures for mv in fut.result()]
            # apply moves at the barrier, re-validating against true state:
            # accept a move only if it still strictly improves (stale
            # snapshots can propose conflicting moves).
            applied = 0
            for c, target in proposed:
                costs = game.cost_vector(c)
                cur = int(game.assignment[c])
                if costs[target] < costs[cur] - 1e-9:
                    size = float(game.graph.internal[c])
                    game.loads[cur] -= size
                    game.loads[target] += size
                    game.assignment[c] = target
                    applied += 1
            total_moves += applied
            trace.append(game.potential())
            if applied == 0:
                converged = True
                break
    return GameResult(
        assignment=game.assignment.copy(),
        rounds=rounds,
        moves=total_moves,
        lambda_value=game.lambda_value,
        potential_trace=trace,
        converged=converged,
    )
