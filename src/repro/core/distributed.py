"""Distributed CLUGP (Section III-C, last paragraph).

    "Of the system, each distributed node accesses partial streaming edges
    and performs the three steps, clustering, game processing, and
    transformation, locally.  After the three steps, the final graph
    partitioning result is obtained by combining the partial partitioning
    results of distributed nodes."

This module simulates that deployment: the edge stream is sharded across
``num_nodes`` ingest nodes (contiguous ranges — each crawler node ingests
a contiguous part of the crawl), and the partial results are combined
under one of two protocols:

``merge_mode="independent"`` (the retained oracle)
    Every node runs the full three-pass pipeline on its shard with no
    shared state and the per-shard edge assignments are concatenated.
    Nodes never exchange vertex state, so a vertex appearing in several
    shards may be placed inconsistently — the quality price of the fully
    parallel mode, visible as a replication factor that inflates with
    ``num_nodes``.

``merge_mode="merged"`` (the cluster-summary merge)
    Nodes run pass 1 and a *local* game, then ship a compact
    :class:`~repro.core.partitioner.ClusterSummary` — per-cluster
    volumes, the boundary-free local cluster graph, the vertex->cluster
    map of shard-boundary vertices, and the raw endpoints of unresolved
    cross-shard edges.  The coordinator unions the cluster graphs
    (:meth:`~repro.core.cluster_graph.ClusterGraph.merge`), resolves each
    boundary vertex to one global cluster (highest local degree wins),
    attributes the unresolved cut weight exactly against that resolution,
    runs the (parallel) game **once** on the merged global cluster graph
    — warm-started from the union of local equilibria, i.e. global game
    refinement — and broadcasts the cluster->partition map.  Each node
    then replays pass 3 locally under the global decision.  No node ever
    materializes another shard's edges; the sync cost is the measured
    summary/broadcast wire bytes and the coordinator's merge+game wall.

With a single node the merged protocol degenerates exactly to the
single-machine pipeline: no boundary vertices, an identity relabel, and a
warm-started refinement game that proposes zero moves — the assignment is
bit-identical (see ``tests/test_core_distributed.py``).

Node pipelines execute on ``backend="thread"`` (in-process pool),
``backend="process"`` (a ``ProcessPoolExecutor``; summaries, clusterings
and shard arrays cross a real process boundary), or
``backend="persistent"`` (resident shared-memory workers from
:mod:`repro.distributed` with a pipelined arrival-order merge, bit-identical
to the process oracle), and :class:`DistributedResult` reports measured
per-stage walls (shard/merge/game/transform critical path) plus wire bytes
via ``to_dict()`` / ``summary()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._util import StageTimes, Timer, check_positive_int, human_bytes
from ..config import ClugpConfig
from ..graph.stream import EdgeStream
from ..reliability.faults import FaultInjector
from ..reliability.retry import RetryPolicy, RetryStats, run_reliable
from ..partitioners.base import EdgePartitioner, PartitionAssignment
from .cluster_graph import ClusterGraph, cluster_graph_from_labels
from .clustering import ClusteringResult
from .game import ClusterPartitioningGame, GameResult
from .parallel import parallel_game
from .partitioner import ClugpPartitioner, ClusterSummary
from .transform import replay_transform_chunked

__all__ = [
    "NodeReport",
    "MergeReport",
    "DistributedResult",
    "DistributedClugpPartitioner",
    "IncrementalMerger",
    "balance_quotas",
    "distributed_clugp",
]

_MERGE_MODES = ("independent", "merged")
_BACKENDS = ("thread", "process", "persistent")


@dataclass(frozen=True)
class NodeReport:
    """Diagnostics of one ingest node's local pipeline run."""

    node: int
    num_edges: int
    num_clusters: int
    splits: int
    game_rounds: int
    seconds: float
    summary_bytes: int = 0
    boundary_vertices: int = 0
    transform_seconds: float = 0.0

    def to_dict(self) -> dict:
        """Flat JSON-ready view of this node's stats."""
        return {
            "node": self.node,
            "num_edges": self.num_edges,
            "num_clusters": self.num_clusters,
            "splits": self.splits,
            "game_rounds": self.game_rounds,
            "seconds": self.seconds,
            "summary_bytes": self.summary_bytes,
            "boundary_vertices": self.boundary_vertices,
            "transform_seconds": self.transform_seconds,
        }


@dataclass
class MergeReport:
    """Coordinator-side diagnostics of the merged protocol."""

    num_global_clusters: int
    num_boundary_vertices: int
    num_unresolved_edges: int
    max_cluster_volume: int  # largest global cluster (granularity check)
    merge_bytes: int  # summed node->coordinator summary payloads
    broadcast_bytes: int  # one coordinator->node broadcast payload
    quota_bytes: int  # balance quota exchange (loads up + quotas down)
    game_rounds: int
    game_moves: int
    merge_seconds: float
    game_seconds: float

    def total_wire_bytes(self) -> int:
        """Everything the sync protocol moved, in one number — the
        single definition every table/summary prints."""
        return self.merge_bytes + self.broadcast_bytes + self.quota_bytes

    def to_dict(self) -> dict:
        """Flat JSON-ready view of the merge report."""
        return {
            "num_global_clusters": self.num_global_clusters,
            "num_boundary_vertices": self.num_boundary_vertices,
            "num_unresolved_edges": self.num_unresolved_edges,
            "max_cluster_volume": self.max_cluster_volume,
            "merge_bytes": self.merge_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "quota_bytes": self.quota_bytes,
            "total_wire_bytes": self.total_wire_bytes(),
            "game_rounds": self.game_rounds,
            "game_moves": self.game_moves,
            "merge_seconds": self.merge_seconds,
            "game_seconds": self.game_seconds,
        }


@dataclass
class DistributedResult:
    """Assignment plus per-node and merge-stage diagnostics."""

    assignment: PartitionAssignment
    nodes: list[NodeReport] = field(default_factory=list)
    merge_mode: str = "independent"
    backend: str = "thread"
    merge: MergeReport | None = None

    def max_node_seconds(self) -> float:
        """Wall-clock of the slowest node — the deployment's critical path."""
        return max((n.seconds for n in self.nodes), default=0.0)

    def to_dict(self) -> dict:
        """Machine-readable run profile (benchmark JSON, CLI --json)."""
        times = self.assignment.stage_times
        return {
            "merge_mode": self.merge_mode,
            "backend": self.backend,
            "num_nodes": len(self.nodes),
            "num_partitions": self.assignment.num_partitions,
            "num_edges": self.assignment.stream.num_edges,
            "replication_factor": self.assignment.replication_factor(),
            "relative_balance": self.assignment.relative_balance(),
            "stage_seconds": dict(times.stages),
            "stage_walls": dict(times.walls),
            "stage_overlaps": dict(times.overlaps),
            "reliability": dict(times.counters),
            "total_seconds": times.total,
            "wall_seconds": self.assignment.wall_time(),
            "merge": self.merge.to_dict() if self.merge else None,
            "nodes": [n.to_dict() for n in self.nodes],
        }

    def summary(self) -> str:
        """One human-readable paragraph: quality, walls, sync cost."""
        a = self.assignment
        lines = [
            f"distributed CLUGP [{self.merge_mode}/{self.backend}]: "
            f"{len(self.nodes)} nodes, k={a.num_partitions}, |E|={a.stream.num_edges}",
            f"  RF={a.replication_factor():.4f} balance={a.relative_balance():.4f} "
            f"wall={a.wall_time():.3f}s work={a.stage_times.total:.3f}s",
        ]
        walls = a.stage_times.walls
        if self.merge is not None:
            m = self.merge
            lines.append(
                f"  stages: shard={walls.get('shard', 0.0):.3f}s "
                f"merge={m.merge_seconds:.3f}s game={m.game_seconds:.3f}s "
                f"transform={walls.get('transform', 0.0):.3f}s (walls)"
            )
            lines.append(
                f"  merge: {m.num_global_clusters} global clusters, "
                f"{m.num_boundary_vertices} boundary vertices, "
                f"{m.num_unresolved_edges} unresolved edges, "
                f"wire={human_bytes(m.merge_bytes)} up + "
                f"{human_bytes(m.broadcast_bytes)} down, "
                f"refinement rounds={m.game_rounds} moves={m.game_moves}"
            )
        else:
            lines.append(f"  critical path (slowest node)={self.max_node_seconds():.3f}s")
        overlaps = a.stage_times.overlaps
        if overlaps.get("pipeline_overlap"):
            busy = sum(v for k, v in overlaps.items() if k.endswith("_busy"))
            idle = sum(v for k, v in overlaps.items() if k.endswith("_idle"))
            lines.append(
                f"  pipeline: {overlaps['pipeline_overlap']:.3f}s of merge hidden "
                f"under the shard wall (workers busy={busy:.3f}s idle={idle:.3f}s)"
            )
        counters = a.stage_times.counters
        if counters.get("retries"):
            detail = ", ".join(
                f"{name}={count}" for name, count in sorted(counters.items())
            )
            lines.append(f"  reliability: {detail}")
        return "\n".join(lines)


def _shard_ranges(num_edges: int, num_nodes: int) -> list[tuple[int, int]]:
    """Contiguous near-equal shard boundaries."""
    base, extra = divmod(num_edges, num_nodes)
    ranges = []
    start = 0
    for node in range(num_nodes):
        stop = start + base + (1 if node < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _boundary_mask(stream: EdgeStream, ranges: list[tuple[int, int]]) -> np.ndarray:
    """Vertices that appear in two or more shards.

    The coordinator owns the shard boundaries, so it derives this without
    reading edge *content* beyond per-shard seen-sets (in a real
    deployment each node ships its seen-vertex set once; the mask is the
    ">= 2 shards" reduction broadcast back).
    """
    counts = np.zeros(stream.num_vertices, dtype=np.int64)
    for start, stop in ranges:
        seen = np.zeros(stream.num_vertices, dtype=bool)
        seen[stream.src[start:stop]] = True
        seen[stream.dst[start:stop]] = True
        counts += seen
    return counts >= 2


# --------------------------------------------------------------------- #
# node-side stage workers (module-level: picklable for the process pool)
# --------------------------------------------------------------------- #


def _independent_node_worker(args) -> tuple[int, np.ndarray, NodeReport]:
    """Full three-pass pipeline on one shard (merge_mode='independent')."""
    node, src, dst, num_vertices, num_partitions, config, seed, chunk_size = args
    shard = EdgeStream(src, dst, num_vertices)
    partitioner = ClugpPartitioner(num_partitions, seed=seed + node, config=config)
    with Timer() as timer:
        assignment = partitioner.partition_chunked(shard, chunk_size=chunk_size)
    report = NodeReport(
        node=node,
        num_edges=shard.num_edges,
        num_clusters=partitioner.last_clustering.num_clusters,
        splits=partitioner.last_clustering.splits,
        game_rounds=partitioner.last_game_result.rounds,
        seconds=timer.elapsed,
    )
    return node, assignment.edge_partition, report


def _cluster_stage_worker(args) -> tuple[int, ClusterSummary, ClusteringResult, float]:
    """Pass 1 + local game + summary on one shard (merged stage 1)."""
    node, src, dst, num_vertices, boundary, num_partitions, config, seed, chunk_size = args
    shard = EdgeStream(src, dst, num_vertices)
    partitioner = ClugpPartitioner(num_partitions, seed=seed + node, config=config)
    with Timer() as timer:
        summary = partitioner.cluster_summary(
            shard, boundary_mask=boundary, chunk_size=chunk_size, node=node
        )
    return node, summary, partitioner.last_clustering, timer.elapsed


def _node_vertex_partition(
    clustering: ClusteringResult,
    offset: int,
    cluster_partition: np.ndarray,
    boundary_vertices: np.ndarray,
    boundary_global_cluster: np.ndarray,
    num_vertices: int,
) -> np.ndarray:
    """A node's shard-local view of the broadcast global decision.

    Interior vertices map through the node's own cluster table (offset
    into the global id space); boundary vertices through the broadcast
    resolution.  Entries for vertices absent from this shard stay -1 (or
    carry another shard's boundary placement — harmless either way, the
    shard never streams an edge touching them).
    """
    vp = np.full(num_vertices, -1, dtype=np.int64)
    seen = clustering.active_mask()
    vp[seen] = cluster_partition[clustering.cluster_of[seen] + offset]
    if boundary_vertices.size:
        vp[boundary_vertices] = cluster_partition[boundary_global_cluster]
    return vp


def _transform_probe_worker(args) -> tuple[int, np.ndarray, float]:
    """Uncapped tentative pass 3: measure this shard's per-partition load.

    Without a binding cap the Algorithm 1 rule table is load-free, so the
    probe is one vectorized pass; the node ships back ``k`` integers (its
    tentative load vector) for the coordinator's balance quota exchange.
    """
    (
        node, src, dst, num_vertices, clustering, offset, cluster_partition,
        boundary_vertices, boundary_global_cluster, num_partitions, chunk_size,
        chunk_impl, kernel_backend,
    ) = args
    shard = EdgeStream(src, dst, num_vertices)
    with Timer() as timer:
        vp = _node_vertex_partition(
            clustering, offset, cluster_partition,
            boundary_vertices, boundary_global_cluster, num_vertices,
        )
        out, _ = replay_transform_chunked(
            shard,
            clustering,
            vp,
            num_partitions,
            load_caps=np.full(num_partitions, max(1, shard.num_edges), dtype=np.int64),
            chunk_size=chunk_size,
            chunk_impl=chunk_impl,
            kernel_backend=kernel_backend,
        )
        loads = np.bincount(out, minlength=num_partitions)
    return node, loads, timer.elapsed


def _transform_commit_worker(args) -> tuple[int, np.ndarray, float]:
    """Final pass-3 replay under the coordinator's per-partition quotas."""
    (
        node, src, dst, num_vertices, clustering, offset, cluster_partition,
        boundary_vertices, boundary_global_cluster, num_partitions,
        imbalance_factor, load_caps, chunk_size, chunk_impl, kernel_backend,
    ) = args
    shard = EdgeStream(src, dst, num_vertices)
    with Timer() as timer:
        vp = _node_vertex_partition(
            clustering, offset, cluster_partition,
            boundary_vertices, boundary_global_cluster, num_vertices,
        )
        out, _ = replay_transform_chunked(
            shard,
            clustering,
            vp,
            num_partitions,
            imbalance_factor=imbalance_factor,
            load_caps=load_caps,
            chunk_size=chunk_size,
            chunk_impl=chunk_impl,
            kernel_backend=kernel_backend,
        )
    return node, out, timer.elapsed


def balance_quotas(node_loads: np.ndarray, cap: int) -> np.ndarray:
    """Split the global per-partition cap into per-node quotas.

    ``node_loads[i, p]`` is node ``i``'s tentative (uncapped) load; the
    returned ``quotas[i, p]`` satisfy, deterministically:

    * every column sums exactly to ``cap`` — per-node enforcement bounds
      the global partition load by ``L_max``, so relative balance still
      strictly conforms to tau;
    * every row sums to at least the node's edge count — each node can
      always place its whole shard (``sum(cap*k) >= |E|`` guarantees the
      pooled headroom covers the pooled deficit);
    * with one node the quota degenerates to the uniform global cap,
      which keeps merged ``num_nodes=1`` bit-identical to single-machine.

    Overfull partitions are scaled down proportionally (largest-remainder
    rounding); each node's resulting deficit is then covered from the
    underfull partitions' headroom, and leftover headroom is shared
    evenly.
    """
    num_nodes, k = node_loads.shape
    totals = node_loads.sum(axis=0)
    quotas = np.zeros((num_nodes, k), dtype=np.int64)
    over = totals > cap
    for p in np.flatnonzero(over).tolist():
        total = int(totals[p])
        scaled = node_loads[:, p] * cap // total
        remainder = int(cap - scaled.sum())
        if remainder:
            fractions = node_loads[:, p] * cap - scaled * total
            give = np.argsort(-fractions, kind="stable")[:remainder]
            scaled[give] += 1
        quotas[:, p] = scaled
    under = ~over
    quotas[:, under] = node_loads[:, under]
    headroom = np.where(under, cap - totals, 0).astype(np.int64)
    deficits = (node_loads - quotas).sum(axis=1)
    for i in range(num_nodes):
        need = int(deficits[i])
        if need <= 0:
            continue
        for p in np.flatnonzero(headroom > 0).tolist():
            take = min(int(headroom[p]), need)
            quotas[i, p] += take
            headroom[p] -= take
            need -= take
            if need == 0:
                break
    for p in np.flatnonzero(headroom > 0).tolist():
        share, extra = divmod(int(headroom[p]), num_nodes)
        quotas[:, p] += share
        quotas[:extra, p] += 1
    return quotas


# --------------------------------------------------------------------- #
# coordinator
# --------------------------------------------------------------------- #


@dataclass
class _MergeDecision:
    """Everything the coordinator derives from the shipped summaries."""

    merged_graph: ClusterGraph
    offsets: np.ndarray  # node -> first global cluster id of its range
    boundary_vertices: np.ndarray  # sorted unique boundary vertex ids
    boundary_global_cluster: np.ndarray  # their resolved global cluster
    warm_start: np.ndarray  # union of local equilibria (global ids)
    num_unresolved_edges: int


class IncrementalMerger:
    """Arrival-order incremental union of shard cluster summaries.

    ``ClusterGraph.merge`` produces a *canonical* CSR (sorted unique
    ``(row, col)`` pairs, exact int64 weight sums, exact internal sums),
    so merging is associative and commutative on the multiset of edge
    contributions: folding summaries pairwise **in whatever order they
    arrive** and applying one final permutation relabel is bit-identical
    to the one-shot batch union in node order.  That equivalence (the
    hypothesis gate of ``tests/test_persistent_runtime.py``) is what lets
    the persistent backend overlap the coordinator's merge with the
    slowest shard instead of barriering on all summaries:

    * :meth:`add` folds one summary's resolved cluster graph into the
      accumulator the moment it lands (ids offset in *arrival* order);
    * :meth:`finalize` re-labels the accumulator into canonical
      node-order global ids, resolves boundary vertices, attributes the
      unresolved cross-shard edges, and returns the same
      ``_MergeDecision`` the batch path produces.

    The batch path (:func:`_merge_summaries`) itself folds through this
    class in node order, so there is exactly one merge implementation.
    """

    def __init__(self) -> None:
        self._acc: ClusterGraph | None = None
        self._acc_clusters = 0
        self._arrival_offset: dict[int, int] = {}
        self._summaries: dict[int, ClusterSummary] = {}

    @property
    def num_added(self) -> int:
        """Summaries folded so far."""
        return len(self._summaries)

    def add(self, node: int, summary: ClusterSummary) -> None:
        """Fold one node's summary into the accumulator (arrival order)."""
        if node in self._summaries:
            raise ValueError(f"node {node} already merged")
        self._summaries[node] = summary
        self._arrival_offset[node] = self._acc_clusters
        graph = summary.resolved
        if self._acc is None:
            self._acc = graph
            self._acc_clusters = graph.num_clusters
            return
        before = self._acc_clusters
        total = before + graph.num_clusters
        self._acc = ClusterGraph.merge(
            [self._acc, graph],
            [
                np.arange(before, dtype=np.int64),
                np.arange(graph.num_clusters, dtype=np.int64) + before,
            ],
            num_clusters=total,
        )
        self._acc_clusters = total

    def finalize(self, num_vertices: int) -> _MergeDecision:
        """Resolve boundaries and permute into node-order global ids.

        Global cluster ids are the disjoint union of the per-node compact
        ids (node ``i``'s cluster ``c`` becomes ``offsets[i] + c`` — a
        bijection onto ``0..M-1``), independent of arrival order.  Each
        boundary vertex is resolved to the local cluster where it has the
        highest degree (ties: lowest node id); the unresolved cross-shard
        edges are then attributed through that resolution, which makes
        the merged graph *exactly* equal to
        ``build_cluster_graph(full_stream, global_clustering)`` — see
        DESIGN.md §6 for the argument and
        ``tests/test_distributed_merge.py`` for the oracle check.
        """
        if not self._summaries:
            raise ValueError("finalize() before any summary was added")
        nodes = sorted(self._summaries)
        summaries = [self._summaries[node] for node in nodes]
        counts = np.asarray([s.num_clusters for s in summaries], dtype=np.int64)
        offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        num_global = int(offsets[-1])

        # arrival-id space -> node-order global id space
        perm = np.empty(num_global, dtype=np.int64)
        for i, node in enumerate(nodes):
            start = self._arrival_offset[node]
            count = int(counts[i])
            perm[start:start + count] = np.arange(count, dtype=np.int64) + offsets[i]

        # boundary resolution: max local degree wins, ties to lowest node
        bv = np.concatenate([s.boundary_vertices for s in summaries])
        bc = np.concatenate(
            [s.boundary_clusters + offsets[i] for i, s in enumerate(summaries)]
        )
        bd = np.concatenate([s.boundary_degrees for s in summaries])
        bn = np.concatenate(
            [
                np.full(s.boundary_vertices.size, i, dtype=np.int64)
                for i, s in enumerate(summaries)
            ]
        )
        boundary_cluster_of = np.full(num_vertices, -1, dtype=np.int64)
        if bv.size:
            order = np.lexsort((bn, -bd, bv))
            sv = bv[order]
            first = np.ones(sv.size, dtype=bool)
            first[1:] = sv[1:] != sv[:-1]
            boundary_cluster_of[sv[first]] = bc[order][first]
        boundary_vertices = np.flatnonzero(boundary_cluster_of >= 0)

        # unresolved cross-shard edges: each endpoint maps through the
        # resolution if it is boundary, else through its node's relabel
        gu_parts: list[np.ndarray] = []
        gv_parts: list[np.ndarray] = []
        for i, s in enumerate(summaries):
            if not s.unresolved_src.size:
                continue
            bu = boundary_cluster_of[s.unresolved_src]
            bvv = boundary_cluster_of[s.unresolved_dst]
            gu_parts.append(np.where(bu >= 0, bu, s.unresolved_src_cluster + offsets[i]))
            gv_parts.append(np.where(bvv >= 0, bvv, s.unresolved_dst_cluster + offsets[i]))
        if gu_parts:
            gu = np.concatenate(gu_parts)
            gv = np.concatenate(gv_parts)
        else:
            gu = gv = np.empty(0, dtype=np.int64)
        unresolved_graph = cluster_graph_from_labels(gu, gv, num_global)

        merged = ClusterGraph.merge(
            [self._acc, unresolved_graph],
            [perm, np.arange(num_global, dtype=np.int64)],
            num_clusters=num_global,
        )
        warm = np.empty(0, dtype=np.int64)
        if num_global:
            warm = np.concatenate([s.local_assignment for s in summaries])
        return _MergeDecision(
            merged_graph=merged,
            offsets=offsets[:-1],
            boundary_vertices=boundary_vertices,
            boundary_global_cluster=boundary_cluster_of[boundary_vertices],
            warm_start=warm,
            num_unresolved_edges=int(gu.size),
        )


def _merge_summaries(summaries: list[ClusterSummary], num_vertices: int) -> _MergeDecision:
    """Union the shard summaries into the exact global cluster graph.

    Folds through :class:`IncrementalMerger` in node order — one merge
    implementation shared by the batch backends and the pipelined
    persistent backend (which folds in arrival order instead).
    """
    merger = IncrementalMerger()
    for node, summary in enumerate(summaries):
        merger.add(node, summary)
    return merger.finalize(num_vertices)


def _global_game(
    merged: ClusterGraph,
    config: ClugpConfig,
    seed: int,
    warm_start: np.ndarray,
) -> GameResult:
    """The coordinator's single global pass 2: refinement from the union
    of local equilibria, honoring the configured game flavor.

    Distributed nodes always play the game (``ClugpPartitioner`` pins
    ``use_game=True``), so the coordinator does too — the choice here is
    only sequential vs batched-parallel dynamics.
    """
    game_config = config.game if config.game.seed == seed else config.game.with_(seed=seed)
    if config.parallel_game:
        return parallel_game(
            merged, config.num_partitions, game_config, initial_assignment=warm_start
        )
    game = ClusterPartitioningGame(
        merged, config.num_partitions, game_config, initial_assignment=warm_start
    )
    return game.run()


# --------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------- #


def _summary_validator(item, index: int) -> str | None:
    """Coordinator-side quarantine check of a stage-1 result tuple."""
    _, summary, _, _ = item
    return summary.validate()


def _run_stage(
    tasks,
    worker,
    parallel: bool,
    backend: str,
    stage: str = "stage",
    policy: RetryPolicy | None = None,
    inject: FaultInjector | None = None,
    validate=None,
    times: StageTimes | None = None,
):
    """Map ``worker`` over ``tasks`` on the configured executor.

    All stage execution routes through :func:`~repro.reliability.retry.
    run_reliable`: failed, timed-out, or quarantined tasks are
    resubmitted per ``policy`` and the retry cost lands in ``times``'s
    counters (``<stage>_retries`` etc.) so reliability overhead is
    measurable per stage.
    """
    stats = RetryStats()
    results = run_reliable(
        tasks,
        worker,
        policy=policy,
        parallel=parallel,
        backend=backend,
        stage=stage,
        validate=validate,
        inject=inject,
        stats=stats,
    )
    if times is not None:
        counters = stats.to_counters()
        for name in ("retries", "crashes", "timeouts", "raises", "invalid"):
            times.bump(f"{stage}_{name}", counters[name])
        times.bump("retries", counters["retries"])
    return results


def distributed_clugp(
    stream: EdgeStream,
    num_partitions: int,
    num_nodes: int,
    config: ClugpConfig | None = None,
    seed: int = 0,
    parallel_nodes: bool = True,
    chunk_size: int | None = None,
    merge_mode: str = "independent",
    backend: str = "thread",
    runtime=None,
) -> DistributedResult:
    """Run the Section III-C distributed deployment of CLUGP.

    Parameters
    ----------
    stream:
        The global edge stream (crawl order).
    num_partitions:
        ``k`` — shared by every node; partial results target the same
        partition space.
    num_nodes:
        Number of ingest nodes, each processing a contiguous shard.
    config:
        Per-node pipeline configuration (``V_max`` resolves against each
        shard's edge count, as a real node would).
    parallel_nodes:
        Execute node pipelines concurrently (the deployment model) or
        sequentially (deterministic debugging).
    chunk_size:
        Each node ingests its shard through the chunked pipeline in
        ``(chunk_size, 2)`` batches (default: the partitioner's chunk
        size) — the node-local equivalent of a crawler handing the
        partitioner one fetch buffer at a time.
    merge_mode:
        ``"independent"`` concatenates per-shard pipelines (no node
        communication, the retained oracle); ``"merged"`` runs the
        cluster-summary merge protocol with one global game (see the
        module docstring).
    backend:
        ``"thread"`` or ``"process"`` — pooled executors forked per call
        — or ``"persistent"``: resident worker processes fed over shared
        memory with the pipelined shard->merge schedule
        (:mod:`repro.distributed`).
    runtime:
        Optional resident :class:`~repro.distributed.runtime.
        PersistentRuntime` to run on (``backend="persistent"`` only); by
        default an ephemeral pool is spawned and torn down for the call.
        Its ``num_workers`` must equal ``num_nodes``.
    """
    check_positive_int(num_nodes, "num_nodes")
    if num_nodes > max(1, stream.num_edges):
        raise ValueError(
            f"num_nodes={num_nodes} exceeds the number of edges {stream.num_edges}"
        )
    if merge_mode not in _MERGE_MODES:
        raise ValueError(f"merge_mode must be one of {_MERGE_MODES}, got {merge_mode!r}")
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    config = config or ClugpConfig(num_partitions=num_partitions)
    if config.num_partitions != num_partitions:
        config = config.with_(num_partitions=num_partitions)
    ranges = _shard_ranges(stream.num_edges, num_nodes)
    size = chunk_size if chunk_size is not None else ClugpPartitioner.default_chunk_size
    rel = config.reliability
    policy = RetryPolicy(
        max_retries=rel.max_retries,
        task_timeout=rel.task_timeout,
        backoff_base=rel.backoff_base,
        backoff_factor=rel.backoff_factor,
        backoff_max=rel.backoff_max,
    )
    inject = FaultInjector.from_spec(rel.inject_faults)

    if backend == "persistent":
        from ..distributed.pipeline import run_persistent

        return run_persistent(
            stream, num_partitions, num_nodes, config, seed,
            chunk_size if merge_mode == "independent" else size,
            ranges, policy, inject, merge_mode, runtime=runtime,
        )
    if runtime is not None:
        raise ValueError("runtime= requires backend='persistent'")
    if merge_mode == "independent":
        return _run_independent(
            stream, num_partitions, num_nodes, config, seed, parallel_nodes,
            chunk_size, ranges, backend, policy, inject,
        )
    return _run_merged(
        stream, num_partitions, num_nodes, config, seed, parallel_nodes,
        size, ranges, backend, policy, inject,
    )


def _run_independent(
    stream, num_partitions, num_nodes, config, seed, parallel_nodes,
    chunk_size, ranges, backend, policy, inject,
) -> DistributedResult:
    tasks = [
        (
            node,
            stream.src[start:stop],
            stream.dst[start:stop],
            stream.num_vertices,
            num_partitions,
            config,
            seed,
            chunk_size,
        )
        for node, (start, stop) in enumerate(ranges)
    ]
    times = StageTimes()
    results = _run_stage(
        tasks, _independent_node_worker, parallel_nodes, backend,
        stage="independent", policy=policy, inject=inject, times=times,
    )
    results.sort(key=lambda item: item[0])

    edge_partition = np.empty(stream.num_edges, dtype=np.int64)
    reports: list[NodeReport] = []
    for node, partial, report in results:
        start, stop = ranges[node]
        edge_partition[start:stop] = partial
        reports.append(report)
    # "total" is the summed node work (what a single machine would spend);
    # the deployment's wall-clock is the slowest node — nodes run
    # concurrently, so the critical path is a max, not a sum, and is
    # recorded as a non-additive wall so it never inflates `total`.
    times.add("total", sum(r.seconds for r in reports))
    times.add_wall("max_node", max((r.seconds for r in reports), default=0.0))
    assignment = PartitionAssignment(stream, edge_partition, num_partitions, times)
    return DistributedResult(
        assignment=assignment,
        nodes=reports,
        merge_mode="independent",
        backend=backend,
    )


def _run_merged(
    stream, num_partitions, num_nodes, config, seed, parallel_nodes,
    chunk_size, ranges, backend, policy, inject,
) -> DistributedResult:
    n = stream.num_vertices
    times = StageTimes()
    boundary = (
        _boundary_mask(stream, ranges)
        if num_nodes > 1
        else np.zeros(n, dtype=bool)
    )

    # stage 1 (nodes): pass 1 + local game + summary
    cluster_tasks = [
        (
            node,
            stream.src[start:stop],
            stream.dst[start:stop],
            n,
            boundary,
            num_partitions,
            config,
            seed,
            chunk_size,
        )
        for node, (start, stop) in enumerate(ranges)
    ]
    stage1 = _run_stage(
        cluster_tasks, _cluster_stage_worker, parallel_nodes, backend,
        stage="shard", policy=policy, inject=inject, times=times,
        validate=_summary_validator if config.reliability.validate_summaries else None,
    )
    stage1.sort(key=lambda item: item[0])
    summaries = [item[1] for item in stage1]
    clusterings = [item[2] for item in stage1]
    cluster_seconds = [item[3] for item in stage1]

    # stage 2 (coordinator): cluster-graph union + boundary resolution
    with Timer() as t_merge:
        decision = _merge_summaries(summaries, n)
    # stage 3 (coordinator): one global game, warm-started
    with Timer() as t_game:
        game_result = _global_game(
            decision.merged_graph, config, seed, decision.warm_start
        )
    cluster_partition = game_result.assignment
    broadcast_bytes = int(
        cluster_partition.nbytes
        + decision.boundary_vertices.nbytes
        + decision.boundary_global_cluster.nbytes
    )

    # stage 4a (nodes): uncapped tentative pass 3 -> per-partition loads
    common = [
        (
            node,
            stream.src[start:stop],
            stream.dst[start:stop],
            n,
            clusterings[node],
            int(decision.offsets[node]),
            cluster_partition,
            decision.boundary_vertices,
            decision.boundary_global_cluster,
            num_partitions,
        )
        for node, (start, stop) in enumerate(ranges)
    ]
    probe_tasks = [
        task + (chunk_size, config.chunk_impl, config.kernel_backend)
        for task in common
    ]
    stage4a = _run_stage(
        probe_tasks, _transform_probe_worker, parallel_nodes, backend,
        stage="probe", policy=policy, inject=inject, times=times,
    )
    stage4a.sort(key=lambda item: item[0])
    node_loads = np.stack([item[1] for item in stage4a])
    probe_seconds = [item[2] for item in stage4a]

    # stage 4b (coordinator): balance quota exchange — per-node caps that
    # column-sum to the global L_max, so only the true global excess spills
    global_cap = max(1, math.ceil(config.imbalance_factor * stream.num_edges / num_partitions))
    quotas = balance_quotas(node_loads, global_cap)

    # stage 4c (nodes): committed pass-3 replay under the quotas
    commit_tasks = [
        task
        + (
            config.imbalance_factor,
            quotas[node],
            chunk_size,
            config.chunk_impl,
            config.kernel_backend,
        )
        for node, task in enumerate(common)
    ]
    stage4c = _run_stage(
        commit_tasks, _transform_commit_worker, parallel_nodes, backend,
        stage="commit", policy=policy, inject=inject, times=times,
    )
    stage4c.sort(key=lambda item: item[0])

    edge_partition = np.empty(stream.num_edges, dtype=np.int64)
    reports: list[NodeReport] = []
    for node, (_, partial, t_commit) in enumerate(stage4c):
        start, stop = ranges[node]
        edge_partition[start:stop] = partial
        s = summaries[node]
        t_transform = probe_seconds[node] + t_commit
        reports.append(
            NodeReport(
                node=node,
                num_edges=s.num_edges,
                num_clusters=s.num_clusters,
                splits=s.splits,
                game_rounds=s.local_game_rounds,
                seconds=cluster_seconds[node] + t_transform,
                summary_bytes=s.wire_bytes(),
                boundary_vertices=int(s.boundary_vertices.size),
                transform_seconds=t_transform,
            )
        )

    times.add("shard", sum(cluster_seconds))
    times.add("merge", t_merge.elapsed)
    times.add("game", t_game.elapsed)
    times.add("transform", sum(r.transform_seconds for r in reports))
    shard_wall = max(cluster_seconds, default=0.0)
    transform_wall = max((r.transform_seconds for r in reports), default=0.0)
    times.add_wall("shard", shard_wall)
    times.add_wall("transform", transform_wall)
    # the merged deployment is a fork-join pipeline: concurrent shard
    # stage, serial coordinator merge+game, concurrent transform replay
    times.add_wall(
        "critical_path",
        shard_wall + t_merge.elapsed + t_game.elapsed + transform_wall,
    )
    assignment = PartitionAssignment(stream, edge_partition, num_partitions, times)
    # the shipped per-cluster volumes give the coordinator a granularity
    # diagnostic over the merged id space: the largest global cluster's
    # pass-1 volume (relabels are injective, so volumes concatenate)
    max_volume = max(
        (int(s.volume.max()) for s in summaries if s.volume.size), default=0
    )
    merge_report = MergeReport(
        num_global_clusters=decision.merged_graph.num_clusters,
        num_boundary_vertices=int(decision.boundary_vertices.size),
        num_unresolved_edges=decision.num_unresolved_edges,
        max_cluster_volume=max_volume,
        merge_bytes=sum(s.wire_bytes() for s in summaries),
        broadcast_bytes=broadcast_bytes,
        quota_bytes=int(node_loads.nbytes + quotas.nbytes),
        game_rounds=game_result.rounds,
        game_moves=game_result.moves,
        merge_seconds=t_merge.elapsed,
        game_seconds=t_game.elapsed,
    )
    return DistributedResult(
        assignment=assignment,
        nodes=reports,
        merge_mode="merged",
        backend=backend,
        merge=merge_report,
    )


class DistributedClugpPartitioner(EdgePartitioner):
    """Distributed CLUGP behind the standard partitioner interface.

    Parameters
    ----------
    num_nodes:
        Ingest nodes (default 4).
    chunk_size:
        Per-node chunked ingestion batch size (None = partitioner default).
    merge_mode:
        ``"independent"`` (concatenate shard pipelines) or ``"merged"``
        (cluster-summary merge + one global game).
    backend:
        Node executor: ``"thread"``, ``"process"``, or ``"persistent"``.
        The persistent backend keeps a resident
        :class:`~repro.distributed.runtime.PersistentRuntime` across
        ``partition()`` calls — spawn once, reuse forever; release it
        with :meth:`close` (also a context manager).
    """

    name = "clugp-dist"
    passes = 3
    preferred_order = "natural"

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        num_nodes: int = 4,
        config: ClugpConfig | None = None,
        chunk_size: int | None = None,
        merge_mode: str = "independent",
        backend: str = "thread",
    ) -> None:
        super().__init__(num_partitions, seed)
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.config = config
        self.chunk_size = chunk_size
        self.merge_mode = merge_mode
        self.backend = backend
        self.last_result: DistributedResult | None = None
        self._runtime = None

    def runtime_for(self, num_nodes: int):
        """The resident worker pool, (re)created to match ``num_nodes``.

        Only meaningful for ``backend="persistent"``; the pool survives
        across ``partition()`` calls (the whole point of the backend) and
        is resized — close + respawn — only if the effective node count
        changes (e.g. a stream smaller than ``num_nodes``).
        """
        if self.backend != "persistent":
            return None
        if self._runtime is not None and self._runtime.num_workers != num_nodes:
            self._runtime.close()
            self._runtime = None
        if self._runtime is None:
            from ..distributed.runtime import PersistentRuntime

            self._runtime = PersistentRuntime(num_nodes)
        return self._runtime

    def close(self) -> None:
        """Shut down the resident worker pool (no-op for pooled backends)."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "DistributedClugpPartitioner":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: release resident workers."""
        self.close()

    def partition(self, stream: EdgeStream) -> PartitionAssignment:
        """Run the full distributed pipeline; keeps ``last_result``."""
        self._last_stream = stream
        effective_nodes = min(self.num_nodes, max(1, stream.num_edges))
        result = distributed_clugp(
            stream,
            self.num_partitions,
            num_nodes=effective_nodes,
            config=self.config,
            seed=self.seed,
            chunk_size=self.chunk_size,
            merge_mode=self.merge_mode,
            backend=self.backend,
            runtime=self.runtime_for(effective_nodes),
        )
        self.last_result = result
        return result.assignment

    def _assign(self, stream: EdgeStream) -> np.ndarray:  # pragma: no cover
        return self.partition(stream).edge_partition

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Rough per-node state footprint for the memory comparisons."""
        # per-node vertex tables over its shard; upper-bounded by the
        # single-node footprint times the node count in the worst case of
        # fully-overlapping shards
        return 2 * stream.num_vertices * 8
