"""Distributed CLUGP (Section III-C, last paragraph).

    "Of the system, each distributed node accesses partial streaming edges
    and performs the three steps, clustering, game processing, and
    transformation, locally.  After the three steps, the final graph
    partitioning result is obtained by combining the partial partitioning
    results of distributed nodes."

This module simulates that deployment: the edge stream is sharded across
``num_nodes`` ingest nodes (contiguous ranges — each crawler node ingests
a contiguous part of the crawl), every node runs the full three-pass CLUGP
pipeline on its shard *independently* (no shared tables, which is exactly
the paper's scalability argument) through the chunked ingestion protocol
(``begin_chunks`` / ``partition_chunk`` / ``finish_chunks``, i.e. the node
consumes its crawl buffer-by-buffer), and the per-shard edge assignments
are concatenated back into a global assignment over the same ``k``
partitions.

Because nodes never exchange vertex state, a vertex appearing in several
shards may be placed inconsistently — that is the quality price of the
fully parallel mode, and :func:`distributed_clugp` reports it via the
returned per-node diagnostics so the trade-off is measurable (see
``tests/test_core_distributed.py`` and the scalability example).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .._util import StageTimes, Timer, check_positive_int
from ..config import ClugpConfig
from ..graph.stream import EdgeStream
from ..partitioners.base import EdgePartitioner, PartitionAssignment
from .partitioner import ClugpPartitioner

__all__ = ["NodeReport", "DistributedClugpPartitioner", "distributed_clugp"]


@dataclass(frozen=True)
class NodeReport:
    """Diagnostics of one ingest node's local pipeline run."""

    node: int
    num_edges: int
    num_clusters: int
    splits: int
    game_rounds: int
    seconds: float


@dataclass
class DistributedResult:
    """Assignment plus per-node diagnostics."""

    assignment: PartitionAssignment
    nodes: list[NodeReport] = field(default_factory=list)

    def max_node_seconds(self) -> float:
        """Wall-clock of the slowest node — the deployment's critical path."""
        return max((n.seconds for n in self.nodes), default=0.0)


def _shard_ranges(num_edges: int, num_nodes: int) -> list[tuple[int, int]]:
    """Contiguous near-equal shard boundaries."""
    base, extra = divmod(num_edges, num_nodes)
    ranges = []
    start = 0
    for node in range(num_nodes):
        stop = start + base + (1 if node < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def distributed_clugp(
    stream: EdgeStream,
    num_partitions: int,
    num_nodes: int,
    config: ClugpConfig | None = None,
    seed: int = 0,
    parallel_nodes: bool = True,
    chunk_size: int | None = None,
) -> DistributedResult:
    """Run the Section III-C distributed deployment of CLUGP.

    Parameters
    ----------
    stream:
        The global edge stream (crawl order).
    num_partitions:
        ``k`` — shared by every node; partial results target the same
        partition space.
    num_nodes:
        Number of ingest nodes, each processing a contiguous shard.
    config:
        Per-node pipeline configuration (``V_max`` resolves against each
        shard's edge count, as a real node would).
    parallel_nodes:
        Execute node pipelines on a thread pool (the deployment model) or
        sequentially (deterministic debugging).
    chunk_size:
        Each node ingests its shard through the chunked pipeline in
        ``(chunk_size, 2)`` batches (default: the partitioner's chunk
        size) — the node-local equivalent of a crawler handing the
        partitioner one fetch buffer at a time.
    """
    check_positive_int(num_nodes, "num_nodes")
    if num_nodes > max(1, stream.num_edges):
        raise ValueError(
            f"num_nodes={num_nodes} exceeds the number of edges {stream.num_edges}"
        )
    config = config or ClugpConfig(num_partitions=num_partitions)
    ranges = _shard_ranges(stream.num_edges, num_nodes)

    def run_node(node: int) -> tuple[int, np.ndarray, NodeReport]:
        start, stop = ranges[node]
        shard = EdgeStream(
            stream.src[start:stop], stream.dst[start:stop], stream.num_vertices
        )
        partitioner = ClugpPartitioner(
            num_partitions, seed=seed + node, config=config
        )
        with Timer() as timer:
            assignment = partitioner.partition_chunked(shard, chunk_size=chunk_size)
        report = NodeReport(
            node=node,
            num_edges=shard.num_edges,
            num_clusters=partitioner.last_clustering.num_clusters,
            splits=partitioner.last_clustering.splits,
            game_rounds=partitioner.last_game_result.rounds,
            seconds=timer.elapsed,
        )
        return node, assignment.edge_partition, report

    results: list[tuple[int, np.ndarray, NodeReport]] = []
    if parallel_nodes and num_nodes > 1:
        with ThreadPoolExecutor(max_workers=num_nodes) as pool:
            results = list(pool.map(run_node, range(num_nodes)))
    else:
        results = [run_node(node) for node in range(num_nodes)]
    results.sort(key=lambda item: item[0])

    edge_partition = np.empty(stream.num_edges, dtype=np.int64)
    reports: list[NodeReport] = []
    for node, partial, report in results:
        start, stop = ranges[node]
        edge_partition[start:stop] = partial
        reports.append(report)
    times = StageTimes()
    # "total" is the summed node work (what a single machine would spend);
    # the deployment's wall-clock is the slowest node — nodes run
    # concurrently, so the critical path is a max, not a sum, and is
    # recorded as a non-additive wall so it never inflates `total`.
    times.add("total", sum(r.seconds for r in reports))
    times.add_wall("max_node", max((r.seconds for r in reports), default=0.0))
    assignment = PartitionAssignment(stream, edge_partition, num_partitions, times)
    return DistributedResult(assignment=assignment, nodes=reports)


class DistributedClugpPartitioner(EdgePartitioner):
    """Distributed CLUGP behind the standard partitioner interface.

    Parameters
    ----------
    num_nodes:
        Ingest nodes (default 4).
    chunk_size:
        Per-node chunked ingestion batch size (None = partitioner default).
    """

    name = "clugp-dist"
    passes = 3
    preferred_order = "natural"

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        num_nodes: int = 4,
        config: ClugpConfig | None = None,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(num_partitions, seed)
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.config = config
        self.chunk_size = chunk_size
        self.last_result: DistributedResult | None = None

    def partition(self, stream: EdgeStream) -> PartitionAssignment:
        self._last_stream = stream
        result = distributed_clugp(
            stream,
            self.num_partitions,
            num_nodes=min(self.num_nodes, max(1, stream.num_edges)),
            config=self.config,
            seed=self.seed,
            chunk_size=self.chunk_size,
        )
        self.last_result = result
        return result.assignment

    def _assign(self, stream: EdgeStream) -> np.ndarray:  # pragma: no cover
        return self.partition(stream).edge_partition

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # per-node vertex tables over its shard; upper-bounded by the
        # single-node footprint times the node count in the worst case of
        # fully-overlapping shards
        return 2 * stream.num_vertices * 8
