"""CLUGP core: the paper's three-pass restreaming partitioning pipeline."""

from .clustering import ClusteringResult, streaming_clustering
from .bounds import (
    PowerLawModel,
    min_degree_for_replicas_clugp,
    min_degree_for_replicas_holl,
    replication_factor_upper_bound,
    tail_fraction,
)
from .cluster_graph import ClusterGraph, build_cluster_graph, cluster_graph_from_labels
from .game import ClusterPartitioningGame, GameResult, compute_lambda_max
from .parallel import parallel_game
from .transform import transform_partitions
from .distributed import (
    DistributedClugpPartitioner,
    DistributedResult,
    MergeReport,
    NodeReport,
    distributed_clugp,
)
from .partitioner import (
    ClugpPartitioner,
    ClugpNoSplitPartitioner,
    ClugpGreedyPartitioner,
    ClusterSummary,
)

__all__ = [
    "ClusteringResult",
    "PowerLawModel",
    "min_degree_for_replicas_clugp",
    "min_degree_for_replicas_holl",
    "replication_factor_upper_bound",
    "tail_fraction",
    "streaming_clustering",
    "ClusterGraph",
    "build_cluster_graph",
    "cluster_graph_from_labels",
    "ClusterPartitioningGame",
    "GameResult",
    "compute_lambda_max",
    "parallel_game",
    "transform_partitions",
    "DistributedClugpPartitioner",
    "DistributedResult",
    "MergeReport",
    "NodeReport",
    "distributed_clugp",
    "ClugpPartitioner",
    "ClugpNoSplitPartitioner",
    "ClugpGreedyPartitioner",
    "ClusterSummary",
]
