"""The cluster multigraph: input of pass 2 (cluster partitioning).

After pass 1 every master vertex has a cluster; re-streaming the edges and
mapping endpoints through ``cluster_of`` yields a weighted digraph over
clusters:

* ``internal[c]`` = ``|c|`` = number of intra-cluster edges (paper notation
  ``|e(c_i, c_i)|``) — the *size* a cluster contributes to a partition;
* ``out_edges[c]`` / ``in_edges[c]`` = weighted inter-cluster adjacency —
  the cut volumes the game's edge-cutting term optimizes.

Building it is one O(|E|) sweep (this is the I/O part of pass 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.stream import EdgeStream
from .clustering import ClusteringResult

__all__ = ["ClusterGraph", "build_cluster_graph"]


@dataclass
class ClusterGraph:
    """Weighted digraph over clusters.

    Attributes
    ----------
    num_clusters:
        ``m``.
    internal:
        ``internal[c]`` — intra-cluster edge count ``|c|``.
    out_edges / in_edges:
        Per-cluster dicts ``{neighbor_cluster: weight}`` of inter-cluster
        edges leaving / entering the cluster.
    """

    num_clusters: int
    internal: np.ndarray
    out_edges: list[dict[int, int]]
    in_edges: list[dict[int, int]]

    def total_internal(self) -> int:
        """Sum of intra-cluster edges."""
        return int(self.internal.sum())

    def cut_degree(self, c: int) -> int:
        """``|e(c, V\\c)| + |e(V\\c, c)|`` — total cut weight incident to c."""
        return sum(self.out_edges[c].values()) + sum(self.in_edges[c].values())

    def total_cut(self) -> int:
        """``sum_c |e(c, V\\c)|`` — total inter-cluster edges (each once)."""
        return sum(sum(d.values()) for d in self.out_edges)

    def undirected_neighbors(self, c: int) -> dict[int, int]:
        """Symmetrized neighbor weights ``w(c, n) = out + in``."""
        merged = dict(self.out_edges[c])
        for nbr, w in self.in_edges[c].items():
            merged[nbr] = merged.get(nbr, 0) + w
        return merged

    def edge_count_check(self, num_stream_edges: int, num_self_loops: int = 0) -> bool:
        """Invariant: internal + inter + self-loops accounts for every edge."""
        return (
            self.total_internal() + self.total_cut() == num_stream_edges
        ) or num_self_loops > 0


def build_cluster_graph(stream: EdgeStream, clustering: ClusteringResult) -> ClusterGraph:
    """Map every stream edge through ``cluster_of`` and accumulate weights.

    Self-cluster edges (including vertex self-loops) count as internal.
    """
    m = clustering.num_clusters
    cu_arr = clustering.cluster_of[stream.src]
    cv_arr = clustering.cluster_of[stream.dst]
    if m and ((cu_arr < 0).any() or (cv_arr < 0).any()):
        raise ValueError("stream contains vertices absent from the clustering")
    internal = np.zeros(m, dtype=np.int64)
    out_edges: list[dict[int, int]] = [dict() for _ in range(m)]
    in_edges: list[dict[int, int]] = [dict() for _ in range(m)]
    same = cu_arr == cv_arr
    if m:
        internal += np.bincount(cu_arr[same], minlength=m)
    # accumulate inter-cluster weights via a unique-pair reduction
    inter_u = cu_arr[~same]
    inter_v = cv_arr[~same]
    if inter_u.size:
        keys = inter_u * np.int64(m) + inter_v
        uniq, counts = np.unique(keys, return_counts=True)
        for key, w in zip(uniq.tolist(), counts.tolist()):
            a, b = divmod(key, m)
            out_edges[a][b] = w
            in_edges[b][a] = w
    return ClusterGraph(
        num_clusters=m,
        internal=internal,
        out_edges=out_edges,
        in_edges=in_edges,
    )
