"""The cluster multigraph: input of pass 2 (cluster partitioning).

After pass 1 every master vertex has a cluster; re-streaming the edges and
mapping endpoints through ``cluster_of`` yields a weighted digraph over
clusters:

* ``internal[c]`` = ``|c|`` = number of intra-cluster edges (paper notation
  ``|e(c_i, c_i)|``) — the *size* a cluster contributes to a partition;
* ``indptr/indices/weights`` = the weighted inter-cluster adjacency in
  immutable CSR form (the DGL-style immutable graph index) — the cut
  volumes the game's edge-cutting term optimizes.

The graph is stored as three CSR triples over compact cluster ids:

* out-CSR (``indptr``, ``indices``, ``weights``) — edges leaving a cluster,
  neighbor ids sorted ascending within each row;
* in-CSR (``in_indptr``, ``in_indices``, ``in_weights``) — edges entering;
* a lazily-built symmetrized CSR (:meth:`sym`) with merged weights
  ``w(c, n) = out + in``, which is what the game's best-response scoring
  slices per cluster.

Building it is one O(|E|) vectorized sweep (this is the I/O part of
pass 2): endpoints are gathered through ``cluster_of``, inter-cluster
pairs are radix-grouped with :func:`repro._util.stable_argsort_bounded`,
and run-length encoding yields the CSR arrays directly — no per-edge
Python, no dict-of-dicts.

:meth:`undirected_neighbors` / :meth:`out_dict` / :meth:`in_dict` remain
as dict-shaped compatibility shims for diagnostic code and tests; the hot
paths (game scoring, partition-cut sums) consume the arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import stable_argsort_bounded
from ..graph.stream import EdgeStream
from .clustering import ClusteringResult

__all__ = ["ClusterGraph", "build_cluster_graph", "cluster_graph_from_labels"]


def _segment_sums(weights: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-row integer weight sums of a CSR — exact (no float round-trip)."""
    csum = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(weights)])
    return csum[indptr[1:]] - csum[indptr[:-1]]


def _radix_group(
    keys: np.ndarray, upper: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Radix-sort bounded integer keys and run-length-encode the result.

    Returns ``(order, unique_keys, starts)``: ``keys[order]`` is sorted and
    ``starts`` marks the first position of each distinct key in it.  The
    shared group-by step behind the CSR builders.
    """
    order = stable_argsort_bounded(keys, upper)
    skeys = keys[order]
    boundary = np.empty(skeys.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = skeys[1:] != skeys[:-1]
    starts = np.flatnonzero(boundary)
    return order, skeys[starts], starts


def _csr_from_pairs(
    rows: np.ndarray, cols: np.ndarray, weights: np.ndarray, m: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR triple from (row, col, weight) pairs already unique per (row, col).

    Pairs are radix-grouped by row then column, so ``indices`` come out
    sorted ascending within each row.
    """
    order = stable_argsort_bounded(rows * np.int64(m) + cols, m * m if m else 1)
    indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=m), out=indptr[1:])
    return indptr, cols[order], weights[order]


@dataclass
class ClusterGraph:
    """Weighted digraph over clusters, CSR-backed.

    Attributes
    ----------
    num_clusters:
        ``m``.
    internal:
        ``internal[c]`` — intra-cluster edge count ``|c|``.
    indptr / indices / weights:
        Out-direction CSR: the inter-cluster edges leaving cluster ``c``
        are ``indices[indptr[c]:indptr[c+1]]`` with integer weights
        ``weights[indptr[c]:indptr[c+1]]``; neighbor ids sorted ascending.
    in_indptr / in_indices / in_weights:
        Same layout for edges entering each cluster.
    """

    num_clusters: int
    internal: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    in_indptr: np.ndarray
    in_indices: np.ndarray
    in_weights: np.ndarray
    _sym: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _cut_degrees: np.ndarray | None = field(default=None, repr=False, compare=False)
    _out_rows: np.ndarray | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dicts(
        cls,
        num_clusters: int,
        internal: np.ndarray,
        out_edges: list[dict[int, int]],
        in_edges: list[dict[int, int]],
    ) -> "ClusterGraph":
        """Build from per-cluster neighbor dicts (tests, handmade fixtures)."""
        rows, cols, ws = [], [], []
        for c, nbrs in enumerate(out_edges):
            for nbr, w in sorted(nbrs.items()):
                rows.append(c)
                cols.append(nbr)
                ws.append(w)
        rows_a = np.asarray(rows, dtype=np.int64)
        cols_a = np.asarray(cols, dtype=np.int64)
        ws_a = np.asarray(ws, dtype=np.int64)
        indptr, indices, weights = _csr_from_pairs(rows_a, cols_a, ws_a, num_clusters)
        in_indptr, in_indices, in_weights = _csr_from_pairs(
            cols_a, rows_a, ws_a, num_clusters
        )
        graph = cls(
            num_clusters=num_clusters,
            internal=np.asarray(internal, dtype=np.int64),
            indptr=indptr,
            indices=indices,
            weights=weights,
            in_indptr=in_indptr,
            in_indices=in_indices,
            in_weights=in_weights,
        )
        # in_edges is accepted for interface symmetry; it must be the exact
        # transpose of out_edges (every builder in the repo guarantees this)
        if in_edges is not None:
            expected: list[dict[int, int]] = [dict() for _ in range(num_clusters)]
            for c, nbrs in enumerate(out_edges):
                for nbr, w in nbrs.items():
                    expected[nbr][c] = w
            if [dict(d) for d in in_edges] != expected:
                raise ValueError("in_edges does not mirror out_edges")
        return graph

    @classmethod
    def merge(
        cls,
        graphs: list["ClusterGraph"],
        relabels: list[np.ndarray],
        num_clusters: int | None = None,
    ) -> "ClusterGraph":
        """Union per-shard cluster graphs under a cluster-id relabeling.

        ``relabels[i]`` maps graph ``i``'s local cluster ids onto the
        merged id space: ``relabels[i][c]`` is the global id of local
        cluster ``c``.  The map must be total (one entry per local
        cluster, all entries in ``[0, num_clusters)``); it need *not* be
        injective — several local clusters may land on the same global
        id, in which case their internal volumes and edge weights are
        summed, and inter-cluster edges whose endpoints collapse onto one
        global cluster fold into that cluster's ``internal`` count.

        This is the coordinator half of the distributed merge protocol
        (Section III-C): each node ships its shard-local graph, the
        coordinator relabels the COO triples, radix-groups the combined
        pairs with :func:`repro._util.stable_argsort_bounded`, and
        run-length-sums duplicate pairs into one canonical CSR.  Merging
        a single graph through the identity relabel reproduces its CSR
        arrays bit-for-bit, which is what makes ``num_nodes=1`` merged
        mode identical to the single-machine pipeline.

        Total weight is conserved: ``total_internal() + total_cut()`` of
        the result equals the sum over the inputs.
        """
        if len(graphs) != len(relabels):
            raise ValueError(
                f"got {len(graphs)} graphs but {len(relabels)} relabel maps"
            )
        maps = [np.asarray(r, dtype=np.int64) for r in relabels]
        for g, r in zip(graphs, maps):
            if r.shape != (g.num_clusters,):
                raise ValueError(
                    f"relabel must map all {g.num_clusters} clusters, "
                    f"got shape {r.shape}"
                )
        if num_clusters is None:
            num_clusters = int(max((int(r.max()) + 1 for r in maps if r.size), default=0))
        m = int(num_clusters)
        for r in maps:
            if r.size and (int(r.min()) < 0 or int(r.max()) >= m):
                raise ValueError(f"relabel ids out of range [0, {m})")
        internal = np.zeros(m, dtype=np.int64)
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        ws_parts: list[np.ndarray] = []
        for g, r in zip(graphs, maps):
            np.add.at(internal, r, g.internal)
            if g.indices.size:
                rows_parts.append(r[g.out_rows()])
                cols_parts.append(r[g.indices])
                ws_parts.append(g.weights)
        if rows_parts:
            rows = np.concatenate(rows_parts)
            cols = np.concatenate(cols_parts)
            ws = np.concatenate(ws_parts)
            # non-injective relabels can collapse an inter-cluster edge
            # onto a single global cluster: that weight becomes internal
            same = rows == cols
            if same.any():
                np.add.at(internal, rows[same], ws[same])
                rows, cols, ws = rows[~same], cols[~same], ws[~same]
        else:
            rows = cols = ws = np.empty(0, dtype=np.int64)
        if rows.size:
            order, ukeys, starts = _radix_group(rows * np.int64(m) + cols, m * m)
            merged_w = np.add.reduceat(ws[order], starts)
            urows = ukeys // m
            ucols = ukeys % m
        else:
            urows = ucols = merged_w = np.empty(0, dtype=np.int64)
        indptr, indices, weights = _csr_from_pairs(urows, ucols, merged_w, m)
        in_indptr, in_indices, in_weights = _csr_from_pairs(ucols, urows, merged_w, m)
        return cls(
            num_clusters=m,
            internal=internal,
            indptr=indptr,
            indices=indices,
            weights=weights,
            in_indptr=in_indptr,
            in_indices=in_indices,
            in_weights=in_weights,
        )

    # ------------------------------------------------------------------ #
    # scalar accounting
    # ------------------------------------------------------------------ #

    def total_internal(self) -> int:
        """Sum of intra-cluster edges."""
        return int(self.internal.sum())

    def total_cut(self) -> int:
        """``sum_c |e(c, V\\c)|`` — total inter-cluster edges (each once)."""
        return int(self.weights.sum())

    def cut_degrees(self) -> np.ndarray:
        """``|e(c, V\\c)| + |e(V\\c, c)|`` per cluster, as one int64 array."""
        if self._cut_degrees is None:
            self._cut_degrees = _segment_sums(self.weights, self.indptr) + _segment_sums(
                self.in_weights, self.in_indptr
            )
        return self._cut_degrees

    def cut_degree(self, c: int) -> int:
        """Total cut weight incident to cluster ``c``."""
        return int(self.cut_degrees()[c])

    def out_rows(self) -> np.ndarray:
        """Row (source-cluster) id of every out-CSR entry; cached COO view."""
        if self._out_rows is None:
            self._out_rows = np.repeat(
                np.arange(self.num_clusters, dtype=np.int64), np.diff(self.indptr)
            )
        return self._out_rows

    # ------------------------------------------------------------------ #
    # symmetrized adjacency (the game's view)
    # ------------------------------------------------------------------ #

    def sym(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Symmetrized CSR ``(indptr, indices, weights)`` with merged
        weights ``w(c, n) = out + in``; built lazily, cached."""
        if self._sym is None:
            m = self.num_clusters
            rows = np.concatenate(
                [
                    np.repeat(np.arange(m, dtype=np.int64), np.diff(self.indptr)),
                    np.repeat(np.arange(m, dtype=np.int64), np.diff(self.in_indptr)),
                ]
            )
            cols = np.concatenate([self.indices, self.in_indices])
            ws = np.concatenate([self.weights, self.in_weights])
            if rows.size == 0:
                self._sym = (
                    np.zeros(m + 1, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                )
            else:
                # merge duplicate (row, col) pairs with a run-length sum
                order, ukeys, starts = _radix_group(rows * np.int64(m) + cols, m * m)
                merged = np.add.reduceat(ws[order], starts)
                urows = ukeys // m
                ucols = ukeys % m
                indptr = np.zeros(m + 1, dtype=np.int64)
                np.cumsum(np.bincount(urows, minlength=m), out=indptr[1:])
                self._sym = (indptr, ucols, merged.astype(np.int64))
        return self._sym

    # ------------------------------------------------------------------ #
    # dict-shaped compatibility shims
    # ------------------------------------------------------------------ #

    def out_dict(self, c: int) -> dict[int, int]:
        """``{neighbor: weight}`` of edges leaving cluster ``c``."""
        s, e = int(self.indptr[c]), int(self.indptr[c + 1])
        return dict(zip(self.indices[s:e].tolist(), self.weights[s:e].tolist()))

    def in_dict(self, c: int) -> dict[int, int]:
        """``{neighbor: weight}`` of edges entering cluster ``c``."""
        s, e = int(self.in_indptr[c]), int(self.in_indptr[c + 1])
        return dict(zip(self.in_indices[s:e].tolist(), self.in_weights[s:e].tolist()))

    def undirected_neighbors(self, c: int) -> dict[int, int]:
        """Symmetrized neighbor weights ``w(c, n) = out + in``.

        Compatibility shim over :meth:`sym` — diagnostic code and the
        non-vectorized game reference still consume dicts; hot paths slice
        the CSR arrays directly.
        """
        indptr, indices, weights = self.sym()
        s, e = int(indptr[c]), int(indptr[c + 1])
        return dict(zip(indices[s:e].tolist(), weights[s:e].tolist()))

    def edge_count_check(self, num_stream_edges: int, num_self_loops: int = 0) -> bool:
        """Invariant: internal + inter + self-loops accounts for every edge."""
        return (
            self.total_internal() + self.total_cut() == num_stream_edges
        ) or num_self_loops > 0


def cluster_graph_from_labels(
    cu: np.ndarray, cv: np.ndarray, num_clusters: int
) -> ClusterGraph:
    """Accumulate a :class:`ClusterGraph` from per-edge cluster-label pairs.

    ``cu[i]``/``cv[i]`` are the (already gathered) endpoint clusters of the
    i-th edge.  Same-cluster pairs count as internal; the rest are
    radix-grouped and run-length encoded into the CSR triples.  This is
    the grouping core shared by :func:`build_cluster_graph` (labels
    gathered through a clustering) and the distributed coordinator (labels
    of cross-shard edges resolved from the merged vertex->cluster map).
    """
    m = int(num_clusters)
    cu = np.asarray(cu, dtype=np.int64)
    cv = np.asarray(cv, dtype=np.int64)
    internal = np.zeros(m, dtype=np.int64)
    rows = cols = counts = np.empty(0, dtype=np.int64)
    cells = m * m
    if m and cu.size and cells <= max(1 << 20, 2 * cu.size):
        # dense group-by: one bincount over the whole (u, v) key space
        # beats sorting the keys when the space is small relative to the
        # edge count.  Diagonal cells are the same-cluster (internal)
        # counts; flatnonzero of the rest yields the unique inter keys
        # ascending — exactly the radix path's sorted ukeys — and the
        # counts are integers, so both paths build identical CSR triples.
        key_counts = np.bincount(cu * np.int64(m) + cv, minlength=cells)
        diag = np.arange(m, dtype=np.int64) * np.int64(m + 1)
        internal += key_counts[diag]
        key_counts[diag] = 0
        ukeys = np.flatnonzero(key_counts)
        if ukeys.size:
            counts = key_counts[ukeys]
            rows = ukeys // m
            cols = ukeys % m
    elif m and cu.size:
        same = cu == cv
        internal += np.bincount(cu[same], minlength=m)
        inter_u = cu[~same]
        inter_v = cv[~same]
        if inter_u.size:
            _, ukeys, starts = _radix_group(
                inter_u * np.int64(m) + inter_v, cells
            )
            counts = np.diff(
                np.concatenate([starts, [inter_u.size]])
            ).astype(np.int64)
            rows = ukeys // m
            cols = ukeys % m
    indptr, indices, weights = _csr_from_pairs(rows, cols, counts, m)
    in_indptr, in_indices, in_weights = _csr_from_pairs(cols, rows, counts, m)
    return ClusterGraph(
        num_clusters=m,
        internal=internal,
        indptr=indptr,
        indices=indices,
        weights=weights,
        in_indptr=in_indptr,
        in_indices=in_indices,
        in_weights=in_weights,
    )


def build_cluster_graph(stream: EdgeStream, clustering: ClusteringResult) -> ClusterGraph:
    """Map every stream edge through ``cluster_of`` and accumulate weights.

    Self-cluster edges (including vertex self-loops) count as internal.
    One vectorized O(|E|) sweep: gather, radix group-by, run-length encode.
    """
    m = clustering.num_clusters
    cu_arr = clustering.cluster_of[stream.src]
    cv_arr = clustering.cluster_of[stream.dst]
    if m and ((cu_arr < 0).any() or (cv_arr < 0).any()):
        raise ValueError("stream contains vertices absent from the clustering")
    return cluster_graph_from_labels(cu_arr, cv_arr, m)
