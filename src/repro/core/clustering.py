"""Pass 1 — streaming clustering (Algorithm 2 of the paper).

Extends Hollocou et al.'s streaming vertex clustering (*allocation* +
*migration*) with the paper's new *splitting* operation
(allocation-**splitting**-migration):

* **allocation** — an unseen endpoint opens a fresh singleton cluster;
* **splitting** — when a cluster's *volume* (sum of partial degrees of its
  member master vertices) reaches ``V_max``, the vertex that pushed it over
  is split out into a fresh cluster, leaving a *mirror* behind.  The vertex
  is marked *divided*; pass 3 (Algorithm 1) uses the mirror locations.
  Splitting provably lowers the worst-case replication factor on power-law
  graphs (Theorems 1-2): a vertex needs degree ~``(V_max-1)(r-1)/d_max``
  to reach r replicas under CLUGP vs degree ``r-1`` under Holl.

  *Reproduction note*: the paper's pseudocode splits an endpoint on every
  edge incident to a full cluster.  In steady state nearly every mature
  cluster sits at ``V_max`` (total volume is ``2|E|`` against capacity
  ``|E|/k``), so the literal rule shreds clusters on synthetic stand-in
  streams.  The paper's own analysis assumes ``V_max > d_max`` and each
  split producing exactly one replica (Section IV-A fact (a)), so we add
  the two guards that make those assumptions hold by construction: a
  vertex splits **at most once** (one mirror each, keeping fact (a) tight)
  and only while ``deg(x) < V_max`` (the Theorem-2 regime).  Both guards
  are no-ops on the paper's billion-edge crawls where splits are rare;
  see DESIGN.md for the full analysis.
* **migration** — after each edge, the endpoint sitting in the
  lower-volume cluster migrates to the other endpoint's cluster (if both
  clusters are below ``V_max``), gluing communities together bottom-up.

With ``enable_splitting=False`` the procedure degenerates to Holl's
allocation-migration (the CLUGP-S ablation of Figure 9).

Complexities (Section IV-A): time O(|E|), space O(|V|).

Chunked ingestion
-----------------
:class:`ClusteringState` consumes ``(m, 2)`` int64 edge chunks (the PR-1
chunk protocol) and produces **bit-identical** results to the per-edge
reference loop :func:`streaming_clustering`.  The state is held in flat
arrays (``cluster_of``, ``degree``, ``divided``, a growable ``volumes``
buffer, parallel mirror tables); per chunk a conservative vectorized
classifier separates edges into

* a *boring* set — both endpoints already clustered and provably unable
  to allocate, split, or migrate anywhere in the chunk — committed as two
  ``bincount`` adds (degree and volume increments), and
* a *suspect* set — handled by a tight list-backed scalar loop that
  replays the exact reference semantics.

Boring and suspect edges touch **disjoint** vertex/cluster state (the
classifier's dirty-set cascade guarantees it), so their effects commute
and the interleaving does not matter — this is the chunked-equivalence
argument spelled out in DESIGN.md.  On streams where migrations never die
out the classifier marks most edges suspect; the state then adaptively
skips classification and stays in the tight scalar mode, which alone is
several times faster than the numpy-scalar-indexing reference loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import kernels
from .._util import check_positive_int, stable_argsort_bounded
from ..graph.stream import EdgeStream

__all__ = [
    "ClusteringResult",
    "ClusteringState",
    "streaming_clustering",
    "streaming_clustering_chunked",
]


@dataclass
class ClusteringResult:
    """Output of pass 1.

    Attributes
    ----------
    cluster_of:
        ``clu[v]`` — final cluster id of every vertex's master copy
        (-1 for vertices never seen in the stream).  Cluster ids are
        *compact*: ``0..num_clusters-1``, renumbered in order of first use.
    degree:
        ``deg[v]`` — degree observed over the full stream.
    volume:
        Final cluster volumes (indexed by compact cluster id).
    divided:
        Boolean mask — vertices that triggered at least one split.
    mirror_clusters:
        For each divided vertex, the list of cluster ids (compact) that
        retain a mirror of it; used by Algorithm 1 line 18.  Materialized
        lazily from ``mirror_source`` on first access — nothing on the
        pipeline hot path reads it, so ``finalize`` only has to store the
        compacted journal arrays.
    num_clusters:
        ``m`` — number of non-empty clusters.
    max_volume:
        The ``V_max`` used.
    splits, migrations, allocations:
        Operation counters (for tests and the ablation analysis).
    raw_ids:
        ``raw_ids[c]`` — the pre-compaction (raw) id of compact cluster
        ``c``.  Raw ids are *stable across snapshots* of one
        :class:`ClusteringState` (a surviving cluster keeps its raw id for
        the lifetime of the state), which is what lets the incremental
        :class:`~repro.service.PartitionService` carry the game
        equilibrium from one batch to the next.  ``None`` only on results
        built by legacy constructors that bypass :func:`_compact`.
    """

    cluster_of: np.ndarray
    degree: np.ndarray
    volume: np.ndarray
    divided: np.ndarray
    mirror_source: (
        dict[int, list[int]] | tuple[np.ndarray, np.ndarray, int]
    ) = field(repr=False)
    num_clusters: int
    max_volume: int
    splits: int = 0
    migrations: int = 0
    allocations: int = 0
    raw_ids: np.ndarray | None = field(default=None, repr=False)
    _members: dict[int, list[int]] | None = field(default=None, repr=False)
    _mirror_dict: dict[int, list[int]] | None = field(default=None, repr=False)

    @property
    def mirror_clusters(self) -> dict[int, list[int]]:
        """Divided vertex -> sorted compact mirror cluster ids (lazy).

        ``mirror_source`` is either the finished dict (per-edge loop) or
        the compacted ``(vertices, compact_ids, num_clusters)`` journal
        arrays; the dict-of-lists — ~9k tiny Python lists on the bench
        fixture — is only paid for by consumers that actually read it.
        """
        if self._mirror_dict is None:
            src = self.mirror_source
            if isinstance(src, dict):
                self._mirror_dict = src
            else:
                mv, mc, num_used = src
                mirrors: dict[int, list[int]] = {}
                if mv.size:
                    # sorted unique (vertex, compact id) pairs via one
                    # scalar key; consecutive runs of the vertex
                    # component are the dict groups
                    keys = np.unique(mv * num_used + mc)
                    vs = keys // num_used
                    cs = (keys % num_used).tolist()
                    vs_list = vs.tolist()
                    starts = np.flatnonzero(
                        np.r_[True, np.diff(vs) != 0]
                    ).tolist()
                    for a, b in zip(starts, starts[1:] + [len(cs)]):
                        mirrors[vs_list[a]] = cs[a:b]
                self._mirror_dict = mirrors
        return self._mirror_dict

    def active_mask(self) -> np.ndarray:
        """Boolean mask of vertices seen by the stream (``cluster_of >= 0``).

        The shard-local "seen set" of the distributed protocol: a node's
        summary, its vertex->partition view, and the boundary intersection
        are all built against this mask.
        """
        return self.cluster_of >= 0

    def members(self) -> dict[int, list[int]]:
        """Cluster id -> sorted list of master-vertex ids (computed lazily).

        One argsort-based group-by: active vertices are radix-grouped by
        cluster id (stable, so members stay in ascending vertex order) and
        the dict-of-lists is sliced out of the single sorted array.
        """
        if self._members is None:
            active = np.flatnonzero(self.active_mask())
            if active.size == 0:
                self._members = {}
            else:
                labels = self.cluster_of[active]
                order = stable_argsort_bounded(labels, self.num_clusters)
                grouped = active[order]
                counts = np.bincount(labels, minlength=self.num_clusters)
                bounds = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
                )
                self._members = {
                    c: grouped[bounds[c] : bounds[c + 1]].tolist()
                    for c in range(self.num_clusters)
                    if counts[c]
                }
        return self._members

    def cluster_sizes(self) -> np.ndarray:
        """Number of master vertices per cluster."""
        active = self.cluster_of[self.active_mask()]
        return np.bincount(active, minlength=self.num_clusters).astype(np.int64)


def streaming_clustering(
    stream: EdgeStream,
    max_volume: int,
    enable_splitting: bool = True,
) -> ClusteringResult:
    """Run Algorithm 2 over ``stream`` with cluster capacity ``max_volume``.

    This is the faithful per-edge reference loop (the path a non-vectorized
    streaming system executes); :class:`ClusteringState` is the chunked
    production path and must stay bit-identical to it.

    Parameters
    ----------
    stream:
        The edge stream (the paper assumes BFS crawl order; any order is
        accepted, quality just degrades gracefully).
    max_volume:
        ``V_max`` — volume capacity of a cluster (default pipeline choice
        is ``|E| / k``).
    enable_splitting:
        ``False`` reproduces Holl (allocation-migration only).
    """
    check_positive_int(max_volume, "max_volume")
    n = stream.num_vertices
    cluster_of = np.full(n, -1, dtype=np.int64)
    degree = np.zeros(n, dtype=np.int64)
    divided = np.zeros(n, dtype=bool)
    mirror_clusters: dict[int, list[int]] = {}
    volumes: list[int] = []  # indexed by raw cluster id
    splits = migrations = allocations = 0

    def new_cluster() -> int:
        volumes.append(0)
        return len(volumes) - 1

    src_list = stream.src.tolist()
    dst_list = stream.dst.tolist()
    clu = cluster_of  # local aliases for speed
    deg = degree
    for u, v in zip(src_list, dst_list):
        # --- allocation -------------------------------------------------
        if clu[u] == -1:
            clu[u] = new_cluster()
            allocations += 1
        if clu[v] == -1:
            clu[v] = new_cluster()
            allocations += 1
        cu = int(clu[u])
        cv = int(clu[v])
        deg[u] += 1
        deg[v] += 1
        volumes[cu] += 1
        volumes[cv] += 1
        # --- splitting ----------------------------------------------------
        if enable_splitting and u != v:
            if (
                volumes[cu] >= max_volume
                and 1 < deg[u] < max_volume
                and not divided[u]
            ):
                c_new = new_cluster()
                divided[u] = True
                mirror_clusters.setdefault(u, []).append(cu)
                volumes[cu] -= int(deg[u])
                volumes[c_new] += int(deg[u])
                clu[u] = c_new
                splits += 1
            cv = int(clu[v])  # u's split may have lowered volumes[cv] when cv == cu
            if (
                volumes[cv] >= max_volume
                and 1 < deg[v] < max_volume
                and not divided[v]
            ):
                c_new = new_cluster()
                divided[v] = True
                mirror_clusters.setdefault(v, []).append(cv)
                volumes[cv] -= int(deg[v])
                volumes[c_new] += int(deg[v])
                clu[v] = c_new
                splits += 1
        # --- migration ----------------------------------------------------
        cu = int(clu[u])
        cv = int(clu[v])
        if cu != cv and volumes[cu] < max_volume and volumes[cv] < max_volume:
            if volumes[cu] <= volumes[cv]:
                volumes[cu] -= int(deg[u])
                volumes[cv] += int(deg[u])
                clu[u] = cv
            else:
                volumes[cv] -= int(deg[v])
                volumes[cu] += int(deg[v])
                clu[v] = cu
            migrations += 1

    return _compact(
        cluster_of,
        degree,
        volumes,
        divided,
        mirror_clusters,
        max_volume,
        splits,
        migrations,
        allocations,
    )


class ClusteringState:
    """Incremental pass-1 state consuming ``(m, 2)`` int64 edge chunks.

    Drives Algorithm 2 over a chunked stream with results bit-identical to
    :func:`streaming_clustering`.  See the module docstring for the
    boring/suspect decomposition; DESIGN.md proves its equivalence.

    ``chunk_impl`` selects the ingestion machinery: ``"fast"`` (default)
    is the adaptive classifier + list-backed scalar loop; ``"reference"``
    sends every edge through the scalar loop (no classifier — the plain
    sequential oracle); ``"jit"`` dispatches whole chunks into a compiled
    kernel (:mod:`repro.kernels`) over the flat array state, degrading to
    ``"fast"`` when no backend is available.  All three are bit-identical
    at every chunk size.

    Usage::

        state = ClusteringState(stream.num_vertices, vmax)
        for chunk in stream.chunks(chunk_size):
            state.ingest(chunk)
        result = state.finalize()
    """

    #: re-probe the classifier every this many chunks while in scalar mode
    _PROBE_EVERY = 16
    #: suspect fraction above which classification is skipped
    _SCALAR_THRESHOLD = 0.5
    #: cascade iterations before conservatively marking everything suspect
    _MAX_CASCADE = 64

    def __init__(
        self,
        num_vertices: int,
        max_volume: int,
        enable_splitting: bool = True,
        chunk_impl: str = "fast",
        kernel_backend: str = "auto",
    ) -> None:
        check_positive_int(max_volume, "max_volume")
        if chunk_impl not in ("fast", "reference", "jit"):
            raise ValueError(
                f"chunk_impl must be 'fast', 'reference' or 'jit', got {chunk_impl!r}"
            )
        self.chunk_impl = chunk_impl
        self.kernel_backend = kernel_backend
        self._run_impl = chunk_impl
        self._backend = None
        if chunk_impl == "jit":
            self._backend = kernels.get_backend(kernel_backend)
            if self._backend is None:
                self._run_impl = "fast"  # graceful degradation, same results
        self.num_vertices = int(num_vertices)
        self.max_volume = int(max_volume)
        self.enable_splitting = bool(enable_splitting)
        n = self.num_vertices
        # array-mode state (authoritative when _lists is None)
        self._clu = np.full(n, -1, dtype=np.int64)
        self._deg = np.zeros(n, dtype=np.int64)
        self._div = np.zeros(n, dtype=bool)
        self._vol = np.zeros(16, dtype=np.int64)
        self.num_raw = 0
        # list-mode state (authoritative when set): [clu, deg, div, vol]
        self._lists: tuple[list, list, list, list] | None = None
        self._mirror_v: list[int] = []
        self._mirror_c: list[int] = []
        self.splits = 0
        self.migrations = 0
        self.allocations = 0
        self.edges_ingested = 0
        self.edges_suspect = 0
        self._chunk_index = 0
        self._scalar_bias = False
        self._finalized = False

    # ------------------------------------------------------------------ #
    # state-mode management
    # ------------------------------------------------------------------ #

    def _to_arrays(self) -> None:
        if self._lists is None:
            return
        clu_l, deg_l, div_l, vol_l = self._lists
        self._clu = np.asarray(clu_l, dtype=np.int64)
        self._deg = np.asarray(deg_l, dtype=np.int64)
        self._div = np.asarray(div_l, dtype=bool)
        self.num_raw = len(vol_l)
        if self.num_raw > self._vol.size:
            self._vol = np.zeros(max(self.num_raw, 2 * self._vol.size), dtype=np.int64)
        self._vol[: self.num_raw] = vol_l
        self._lists = None

    def _to_lists(self) -> tuple[list, list, list, list]:
        if self._lists is None:
            self._lists = (
                self._clu.tolist(),
                self._deg.tolist(),
                self._div.tolist(),
                self._vol[: self.num_raw].tolist(),
            )
        return self._lists

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def ingest(self, edges: np.ndarray) -> None:
        """Consume one ``(m, 2)`` edge chunk."""
        edges = np.asarray(edges, dtype=np.int64)
        self.ingest_pair(edges[:, 0], edges[:, 1])

    def ingest_pair(self, u: np.ndarray, v: np.ndarray) -> None:
        """Consume one chunk given as endpoint column arrays.

        Same semantics as :meth:`ingest`; whole-stream drivers use this
        with :meth:`EdgeStream.batches` to skip the ``(m, 2)`` stack copy.
        """
        if self._finalized:
            raise RuntimeError("ClusteringState already finalized")
        m = u.shape[0]
        if m == 0:
            return
        self.edges_ingested += m
        if self._run_impl == "jit":
            self._ingest_jit(u, v)
            return
        if self._run_impl == "reference":
            # plain sequential oracle: every edge through the scalar loop
            self._scalar_loop(u.tolist(), v.tolist())
            self.edges_suspect += m
            return
        probe = self._chunk_index % self._PROBE_EVERY == 0
        self._chunk_index += 1
        if self._scalar_bias and not probe:
            # stay in tight scalar mode: no classification, no conversions
            self._scalar_loop(u.tolist(), v.tolist())
            self.edges_suspect += m
            return
        self._to_arrays()
        suspect = self._classify(u, v)
        ns = int(suspect.sum())
        self.edges_suspect += ns
        self._scalar_bias = ns > self._SCALAR_THRESHOLD * m
        if ns < m:
            self._commit_boring(u, v, ~suspect)
        if ns:
            if ns == m:
                su = u.tolist()
                sv = v.tolist()
            else:
                su = u[suspect].tolist()
                sv = v[suspect].tolist()
            self._scalar_loop(su, sv)

    def _ingest_jit(self, u: np.ndarray, v: np.ndarray) -> None:
        """Dispatch one chunk into the compiled allocation/splitting/
        migration kernel over the flat array state.

        The kernel mutates ``_clu``/``_deg``/``_div``/``_vol`` in place and
        reports raw-cluster growth, new mirrors and the operation counters
        through a small int64 array; the per-chunk mirror buffers are sized
        ``2 * m`` (each edge can split at most both endpoints once).
        """
        m = u.shape[0]
        self._to_arrays()
        # worst case: 2 allocations + 2 splits per edge, one raw id each
        need = self.num_raw + 4 * m
        if need > self._vol.size:
            vol = np.zeros(max(need, 2 * self._vol.size), dtype=np.int64)
            vol[: self.num_raw] = self._vol[: self.num_raw]
            self._vol = vol
        mirror_v = np.empty(2 * m, dtype=np.int64)
        mirror_c = np.empty(2 * m, dtype=np.int64)
        counters = np.array(
            [self.num_raw, 0, self.splits, self.migrations, self.allocations],
            dtype=np.int64,
        )
        self._backend.clustering_chunk(
            np.ascontiguousarray(u),
            np.ascontiguousarray(v),
            self.max_volume,
            self.enable_splitting,
            self._clu,
            self._deg,
            self._div.view(np.uint8),
            self._vol,
            mirror_v,
            mirror_c,
            counters,
        )
        self.num_raw = int(counters[0])
        n_mirrors = int(counters[1])
        if n_mirrors:
            self._mirror_v.extend(mirror_v[:n_mirrors].tolist())
            self._mirror_c.extend(mirror_c[:n_mirrors].tolist())
        self.splits = int(counters[2])
        self.migrations = int(counters[3])
        self.allocations = int(counters[4])

    def _classify(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Conservative suspect mask: edges that *may* allocate, split, or
        migrate given any execution of the chunk, closed over the dirty-set
        cascade (suspect edges dirty their endpoints and clusters; edges
        touching dirty state become suspect in turn)."""
        n = self.num_vertices
        nr = self.num_raw
        vmax = self.max_volume
        clu = self._clu
        cu = clu[u]
        cv = clu[v]
        endpoints = np.concatenate([u, v])
        alloc_s = (cu < 0) | (cv < 0)
        both = ~alloc_s
        suspect = alloc_s.copy()
        if nr:
            vol0 = self._vol[:nr]
            ecl = np.concatenate([cu, cv])
            seen_ecl = ecl[ecl >= 0]
            vol_up = vol0 + np.bincount(seen_ecl, minlength=nr)
            cu0 = np.maximum(cu, 0)
            cv0 = np.maximum(cv, 0)
            if self.enable_splitting:
                cnt = np.bincount(endpoints, minlength=n)
                deg0u = self._deg[u]
                deg0v = self._deg[v]
                not_loop = u != v
                suspect |= (
                    both
                    & not_loop
                    & ~self._div[u]
                    & (deg0u + cnt[u] > 1)
                    & (deg0u + 1 < vmax)
                    & (vol_up[cu0] >= vmax)
                )
                suspect |= (
                    both
                    & not_loop
                    & ~self._div[v]
                    & (deg0v + cnt[v] > 1)
                    & (deg0v + 1 < vmax)
                    & (vol_up[cv0] >= vmax)
                )
            suspect |= both & (cu != cv) & (vol0[cu0] < vmax) & (vol0[cv0] < vmax)
        if suspect.mean() > self._SCALAR_THRESHOLD:
            # the cascade only grows the set and the chunk is going to the
            # scalar path regardless — all-suspect is always conservative
            suspect[:] = True
            return suspect
        # dirty-set cascade to fixpoint
        dirty_v = np.zeros(n, dtype=bool)
        dirty_c = np.zeros(max(nr, 1), dtype=bool)
        cu0 = np.maximum(cu, 0)
        cv0 = np.maximum(cv, 0)
        for _ in range(self._MAX_CASCADE):
            dirty_v[u[suspect]] = True
            dirty_v[v[suspect]] = True
            scu = cu[suspect]
            scv = cv[suspect]
            dirty_c[scu[scu >= 0]] = True
            dirty_c[scv[scv >= 0]] = True
            fresh = ~suspect & (
                dirty_v[u]
                | dirty_v[v]
                | ((cu >= 0) & dirty_c[cu0])
                | ((cv >= 0) & dirty_c[cv0])
            )
            if not fresh.any():
                return suspect
            suspect |= fresh
            if suspect.mean() > self._SCALAR_THRESHOLD:
                break
        suspect[:] = True  # conservative fallback: everything scalar
        return suspect

    def _commit_boring(
        self, u: np.ndarray, v: np.ndarray, boring: np.ndarray
    ) -> None:
        """Apply the boring edges' degree/volume increments in bulk.

        Boring edges only increment state of *clean* vertices and clusters
        (disjoint from everything the scalar loop touches), so a bulk
        commit is order-independent and exact."""
        bend = np.concatenate([u[boring], v[boring]])
        self._deg += np.bincount(bend, minlength=self.num_vertices)
        if self.num_raw:
            bc = np.concatenate([self._clu[u[boring]], self._clu[v[boring]]])
            self._vol[: self.num_raw] += np.bincount(bc, minlength=self.num_raw)

    def _scalar_loop(self, su: list[int], sv: list[int]) -> None:
        """Replay the exact reference semantics over the suspect edges.

        List-backed: Python list indexing is several times faster than
        numpy scalar indexing, which is what makes the sequential
        allocation/splitting/migration tail cheap."""
        clu_l, deg_l, div_l, vol_l = self._to_lists()
        vmax = self.max_volume
        splitting = self.enable_splitting
        mirror_v = self._mirror_v
        mirror_c = self._mirror_c
        splits = self.splits
        migrations = self.migrations
        allocations = self.allocations
        next_raw = len(vol_l)
        vol_append = vol_l.append
        # vcu/vcv shadow vol_l[cui]/vol_l[cvi] through the whole edge body so
        # the hot path does one list read per cluster instead of four; every
        # write keeps the shadow and the list in lockstep
        for ui, vi in zip(su, sv):
            cui = clu_l[ui]
            if cui == -1:
                cui = next_raw
                next_raw += 1
                vol_append(0)
                clu_l[ui] = cui
                allocations += 1
            cvi = clu_l[vi]
            if cvi == -1:
                cvi = next_raw
                next_raw += 1
                vol_append(0)
                clu_l[vi] = cvi
                allocations += 1
            du = deg_l[ui] + 1
            deg_l[ui] = du
            dv = deg_l[vi] + 1
            deg_l[vi] = dv
            if cui == cvi:
                vcu = vcv = vol_l[cui] + 2
                vol_l[cui] = vcu
            else:
                vcu = vol_l[cui] + 1
                vol_l[cui] = vcu
                vcv = vol_l[cvi] + 1
                vol_l[cvi] = vcv
            if splitting and ui != vi:
                if vcu >= vmax and 1 < du < vmax and not div_l[ui]:
                    div_l[ui] = True
                    mirror_v.append(ui)
                    mirror_c.append(cui)
                    vcu -= du
                    vol_l[cui] = vcu
                    if cvi == cui:
                        vcv = vcu  # u split out of the shared cluster
                    vol_append(du)
                    # u moves to the fresh cluster (v's cluster id is
                    # untouched; only the old cluster's volume dropped)
                    clu_l[ui] = cui = next_raw
                    next_raw += 1
                    vcu = du
                    splits += 1
                if vcv >= vmax and 1 < dv < vmax and not div_l[vi]:
                    div_l[vi] = True
                    mirror_v.append(vi)
                    mirror_c.append(cvi)
                    vcv -= dv
                    vol_l[cvi] = vcv
                    if cui == cvi:
                        vcu = vcv  # v split out of the shared cluster
                    vol_append(dv)
                    clu_l[vi] = cvi = next_raw
                    next_raw += 1
                    vcv = dv
                    splits += 1
            if cui != cvi and vcu < vmax and vcv < vmax:
                if vcu <= vcv:
                    vol_l[cui] = vcu - du
                    vol_l[cvi] = vcv + du
                    clu_l[ui] = cvi
                else:
                    vol_l[cvi] = vcv - dv
                    vol_l[cui] = vcu + dv
                    clu_l[vi] = cui
                migrations += 1
        self.splits = splits
        self.migrations = migrations
        self.allocations = allocations

    # ------------------------------------------------------------------ #
    # checkpoint serialization
    # ------------------------------------------------------------------ #

    def state_dict(self) -> tuple[dict, dict]:
        """Serialize the live state as ``(arrays, meta)`` for a checkpoint.

        Everything pass 1 needs to continue bit-identically is captured:
        the vertex tables, raw cluster volumes, the mirror journal, and
        the operation counters.  Raw ids survive the round trip, so a
        restored state keeps the snapshot-stability invariant the
        incremental service leans on.  The ingest-machinery settings
        (``chunk_impl``/``kernel_backend``) are *not* state — all
        implementations are bit-identical, so :meth:`from_state` may
        restore onto a different backend than the one that saved.
        """
        self._to_arrays()
        arrays = {
            "clu": self._clu,
            "deg": self._deg,
            "div": self._div,
            "vol": self._vol[: self.num_raw],
            "mirror_v": np.asarray(self._mirror_v, dtype=np.int64),
            "mirror_c": np.asarray(self._mirror_c, dtype=np.int64),
        }
        meta = {
            "num_vertices": self.num_vertices,
            "max_volume": self.max_volume,
            "enable_splitting": self.enable_splitting,
            "splits": self.splits,
            "migrations": self.migrations,
            "allocations": self.allocations,
            "edges_ingested": self.edges_ingested,
            "edges_suspect": self.edges_suspect,
            "chunk_index": self._chunk_index,
            "scalar_bias": self._scalar_bias,
        }
        return arrays, meta

    @classmethod
    def from_state(
        cls,
        arrays: dict,
        meta: dict,
        chunk_impl: str = "fast",
        kernel_backend: str = "auto",
    ) -> "ClusteringState":
        """Rebuild a live state from :meth:`state_dict` output.

        The restored state continues ingestion exactly where the saved
        one stopped — same clusters, same raw ids, same counters — which
        is the pass-1 half of the bit-identical-resume invariant
        (DESIGN.md §9).
        """
        state = cls(
            int(meta["num_vertices"]),
            int(meta["max_volume"]),
            enable_splitting=bool(meta["enable_splitting"]),
            chunk_impl=chunk_impl,
            kernel_backend=kernel_backend,
        )
        state._clu = np.ascontiguousarray(arrays["clu"], dtype=np.int64).copy()
        state._deg = np.ascontiguousarray(arrays["deg"], dtype=np.int64).copy()
        state._div = np.ascontiguousarray(arrays["div"], dtype=bool).copy()
        vol = np.ascontiguousarray(arrays["vol"], dtype=np.int64)
        state.num_raw = int(vol.size)
        state._vol = np.zeros(max(16, vol.size), dtype=np.int64)
        state._vol[: vol.size] = vol
        state._mirror_v = np.asarray(arrays["mirror_v"], dtype=np.int64).tolist()
        state._mirror_c = np.asarray(arrays["mirror_c"], dtype=np.int64).tolist()
        state.splits = int(meta["splits"])
        state.migrations = int(meta["migrations"])
        state.allocations = int(meta["allocations"])
        state.edges_ingested = int(meta["edges_ingested"])
        state.edges_suspect = int(meta["edges_suspect"])
        state._chunk_index = int(meta["chunk_index"])
        state._scalar_bias = bool(meta["scalar_bias"])
        return state

    # ------------------------------------------------------------------ #

    def raw_clusters(self, vertices: np.ndarray) -> np.ndarray:
        """Current *raw* (pre-compaction) cluster id of each given vertex.

        Raw ids are stable for the lifetime of the state: allocation and
        splitting only append fresh ids and migration moves vertices
        between existing ids, so a cluster that survives keeps its raw id
        across every subsequent :meth:`snapshot`.  ``-1`` marks vertices
        not yet seen.  The service layer reads these before and after a
        batch to compute the dirty-cluster frontier.
        """
        self._to_arrays()
        return self._clu[np.asarray(vertices, dtype=np.int64)]

    def snapshot(self) -> ClusteringResult:
        """Compact the *current* state into a :class:`ClusteringResult`
        without ending ingestion.

        Unlike :meth:`finalize` the state stays live — further
        :meth:`ingest` calls continue exactly where the stream left off,
        and the returned result is bit-identical to what
        :func:`streaming_clustering` produces on the prefix ingested so
        far (the warm-state invariant the service tests pin down).  The
        arrays inside the result are copies, so later ingestion never
        mutates an outstanding snapshot.
        """
        if self._finalized:
            raise RuntimeError("ClusteringState already finalized")
        self._to_arrays()
        return _compact(
            self._clu.copy(),
            self._deg.copy(),
            self._vol[: self.num_raw].copy(),
            self._div.copy(),
            (self._mirror_v, self._mirror_c),
            self.max_volume,
            self.splits,
            self.migrations,
            self.allocations,
        )

    def finalize(self) -> ClusteringResult:
        """Compact cluster ids and return the :class:`ClusteringResult`."""
        self._finalized = True
        self._to_arrays()
        return _compact(
            self._clu,
            self._deg,
            self._vol[: self.num_raw],
            self._div,
            (self._mirror_v, self._mirror_c),
            self.max_volume,
            self.splits,
            self.migrations,
            self.allocations,
        )


def streaming_clustering_chunked(
    stream: EdgeStream,
    max_volume: int,
    enable_splitting: bool = True,
    chunk_size: int = 1 << 16,
    chunk_impl: str = "fast",
    kernel_backend: str = "auto",
) -> ClusteringResult:
    """Run Algorithm 2 by chunked ingestion; bit-identical to
    :func:`streaming_clustering` for every chunk size and ``chunk_impl``."""
    state = ClusteringState(
        stream.num_vertices,
        max_volume,
        enable_splitting=enable_splitting,
        chunk_impl=chunk_impl,
        kernel_backend=kernel_backend,
    )
    for chunk in stream.chunks(chunk_size):
        state.ingest(chunk)
    return state.finalize()


def _compact(
    cluster_of: np.ndarray,
    degree: np.ndarray,
    volumes,
    divided: np.ndarray,
    mirror_clusters,
    max_volume: int,
    splits: int,
    migrations: int,
    allocations: int,
) -> ClusteringResult:
    """Renumber surviving cluster ids to a dense ``0..m-1`` range.

    Splits and migrations leave empty raw clusters behind; mirrors may also
    point at clusters that later emptied — those mirror entries are kept
    only if the cluster still has at least one master vertex (an empty
    cluster is never mapped to a partition, so a mirror there is moot).

    ``mirror_clusters`` is either the ``{vertex: [raw ids]}`` dict the
    per-edge loop accumulates, or a ``(vertices, raw_ids)`` pair of
    parallel sequences (the chunked state's journal) — the latter is
    compacted vectorized and handed to the result as arrays, deferring
    the dict-of-lists to :attr:`ClusteringResult.mirror_clusters`'s first
    reader.  Both forms produce the same dict: sorted unique compact ids
    per vertex, vertices with no surviving mirror dropped.

    The surviving raw ids are recorded on the result (``raw_ids``) so
    consumers that snapshot repeatedly (the incremental service) can
    correlate compact ids across snapshots.
    """
    raw_count = len(volumes)
    used = np.zeros(raw_count, dtype=bool)
    active = cluster_of >= 0
    used[cluster_of[active]] = True
    num_used = int(used.sum())
    remap = np.full(raw_count, -1, dtype=np.int64)
    remap[used] = np.arange(num_used, dtype=np.int64)
    compact_of = cluster_of.copy()
    compact_of[active] = remap[cluster_of[active]]
    compact_volumes = np.asarray(volumes, dtype=np.int64)[used]
    mirror_source: dict[int, list[int]] | tuple[np.ndarray, np.ndarray, int]
    if isinstance(mirror_clusters, dict):
        compact_mirrors: dict[int, list[int]] = {}
        for v, raw_ids in mirror_clusters.items():
            kept = sorted({int(remap[c]) for c in raw_ids if used[c]})
            if kept:
                compact_mirrors[v] = kept
        mirror_source = compact_mirrors
    else:
        mv, mc = mirror_clusters
        mv = np.asarray(mv, dtype=np.int64)
        mc = np.asarray(mc, dtype=np.int64)
        if mv.size:
            kept = used[mc]
            mv, mc = mv[kept], remap[mc[kept]]
        mirror_source = (mv, mc, num_used)
    return ClusteringResult(
        cluster_of=compact_of,
        degree=degree,
        volume=compact_volumes,
        divided=divided,
        mirror_source=mirror_source,
        num_clusters=int(used.sum()),
        max_volume=max_volume,
        splits=splits,
        migrations=migrations,
        allocations=allocations,
        raw_ids=np.flatnonzero(used),
    )
