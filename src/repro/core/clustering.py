"""Pass 1 — streaming clustering (Algorithm 2 of the paper).

Extends Hollocou et al.'s streaming vertex clustering (*allocation* +
*migration*) with the paper's new *splitting* operation
(allocation-**splitting**-migration):

* **allocation** — an unseen endpoint opens a fresh singleton cluster;
* **splitting** — when a cluster's *volume* (sum of partial degrees of its
  member master vertices) reaches ``V_max``, the vertex that pushed it over
  is split out into a fresh cluster, leaving a *mirror* behind.  The vertex
  is marked *divided*; pass 3 (Algorithm 1) uses the mirror locations.
  Splitting provably lowers the worst-case replication factor on power-law
  graphs (Theorems 1-2): a vertex needs degree ~``(V_max-1)(r-1)/d_max``
  to reach r replicas under CLUGP vs degree ``r-1`` under Holl.

  *Reproduction note*: the paper's pseudocode splits an endpoint on every
  edge incident to a full cluster.  In steady state nearly every mature
  cluster sits at ``V_max`` (total volume is ``2|E|`` against capacity
  ``|E|/k``), so the literal rule shreds clusters on synthetic stand-in
  streams.  The paper's own analysis assumes ``V_max > d_max`` and each
  split producing exactly one replica (Section IV-A fact (a)), so we add
  the two guards that make those assumptions hold by construction: a
  vertex splits **at most once** (one mirror each, keeping fact (a) tight)
  and only while ``deg(x) < V_max`` (the Theorem-2 regime).  Both guards
  are no-ops on the paper's billion-edge crawls where splits are rare;
  see DESIGN.md for the full analysis.
* **migration** — after each edge, the endpoint sitting in the
  lower-volume cluster migrates to the other endpoint's cluster (if both
  clusters are below ``V_max``), gluing communities together bottom-up.

With ``enable_splitting=False`` the procedure degenerates to Holl's
allocation-migration (the CLUGP-S ablation of Figure 9).

Complexities (Section IV-A): time O(|E|), space O(|V|).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import check_positive_int
from ..graph.stream import EdgeStream

__all__ = ["ClusteringResult", "streaming_clustering"]


@dataclass
class ClusteringResult:
    """Output of pass 1.

    Attributes
    ----------
    cluster_of:
        ``clu[v]`` — final cluster id of every vertex's master copy
        (-1 for vertices never seen in the stream).  Cluster ids are
        *compact*: ``0..num_clusters-1``, renumbered in order of first use.
    degree:
        ``deg[v]`` — degree observed over the full stream.
    volume:
        Final cluster volumes (indexed by compact cluster id).
    divided:
        Boolean mask — vertices that triggered at least one split.
    mirror_clusters:
        For each divided vertex, the list of cluster ids (compact) that
        retain a mirror of it; used by Algorithm 1 line 18.
    num_clusters:
        ``m`` — number of non-empty clusters.
    max_volume:
        The ``V_max`` used.
    splits, migrations, allocations:
        Operation counters (for tests and the ablation analysis).
    """

    cluster_of: np.ndarray
    degree: np.ndarray
    volume: np.ndarray
    divided: np.ndarray
    mirror_clusters: dict[int, list[int]]
    num_clusters: int
    max_volume: int
    splits: int = 0
    migrations: int = 0
    allocations: int = 0
    _members: dict[int, list[int]] | None = field(default=None, repr=False)

    def members(self) -> dict[int, list[int]]:
        """Cluster id -> sorted list of master-vertex ids (computed lazily)."""
        if self._members is None:
            members: dict[int, list[int]] = {}
            for v, c in enumerate(self.cluster_of.tolist()):
                if c >= 0:
                    members.setdefault(c, []).append(v)
            self._members = members
        return self._members

    def cluster_sizes(self) -> np.ndarray:
        """Number of master vertices per cluster."""
        active = self.cluster_of[self.cluster_of >= 0]
        return np.bincount(active, minlength=self.num_clusters).astype(np.int64)


def streaming_clustering(
    stream: EdgeStream,
    max_volume: int,
    enable_splitting: bool = True,
) -> ClusteringResult:
    """Run Algorithm 2 over ``stream`` with cluster capacity ``max_volume``.

    Parameters
    ----------
    stream:
        The edge stream (the paper assumes BFS crawl order; any order is
        accepted, quality just degrades gracefully).
    max_volume:
        ``V_max`` — volume capacity of a cluster (default pipeline choice
        is ``|E| / k``).
    enable_splitting:
        ``False`` reproduces Holl (allocation-migration only).
    """
    check_positive_int(max_volume, "max_volume")
    n = stream.num_vertices
    cluster_of = np.full(n, -1, dtype=np.int64)
    degree = np.zeros(n, dtype=np.int64)
    divided = np.zeros(n, dtype=bool)
    mirror_clusters: dict[int, list[int]] = {}
    volumes: list[int] = []  # indexed by raw cluster id
    splits = migrations = allocations = 0

    def new_cluster() -> int:
        volumes.append(0)
        return len(volumes) - 1

    src_list = stream.src.tolist()
    dst_list = stream.dst.tolist()
    clu = cluster_of  # local aliases for speed
    deg = degree
    for u, v in zip(src_list, dst_list):
        # --- allocation -------------------------------------------------
        if clu[u] == -1:
            clu[u] = new_cluster()
            allocations += 1
        if clu[v] == -1:
            clu[v] = new_cluster()
            allocations += 1
        cu = int(clu[u])
        cv = int(clu[v])
        deg[u] += 1
        deg[v] += 1
        volumes[cu] += 1
        volumes[cv] += 1
        # --- splitting ----------------------------------------------------
        if enable_splitting and u != v:
            if (
                volumes[cu] >= max_volume
                and 1 < deg[u] < max_volume
                and not divided[u]
            ):
                c_new = new_cluster()
                divided[u] = True
                mirror_clusters.setdefault(u, []).append(cu)
                volumes[cu] -= int(deg[u])
                volumes[c_new] += int(deg[u])
                clu[u] = c_new
                splits += 1
            cv = int(clu[v])  # u's split may have lowered volumes[cv] when cv == cu
            if (
                volumes[cv] >= max_volume
                and 1 < deg[v] < max_volume
                and not divided[v]
            ):
                c_new = new_cluster()
                divided[v] = True
                mirror_clusters.setdefault(v, []).append(cv)
                volumes[cv] -= int(deg[v])
                volumes[c_new] += int(deg[v])
                clu[v] = c_new
                splits += 1
        # --- migration ----------------------------------------------------
        cu = int(clu[u])
        cv = int(clu[v])
        if cu != cv and volumes[cu] < max_volume and volumes[cv] < max_volume:
            if volumes[cu] <= volumes[cv]:
                volumes[cu] -= int(deg[u])
                volumes[cv] += int(deg[u])
                clu[u] = cv
            else:
                volumes[cv] -= int(deg[v])
                volumes[cu] += int(deg[v])
                clu[v] = cu
            migrations += 1

    return _compact(
        cluster_of,
        degree,
        volumes,
        divided,
        mirror_clusters,
        max_volume,
        splits,
        migrations,
        allocations,
    )


def _compact(
    cluster_of: np.ndarray,
    degree: np.ndarray,
    volumes: list[int],
    divided: np.ndarray,
    mirror_clusters: dict[int, list[int]],
    max_volume: int,
    splits: int,
    migrations: int,
    allocations: int,
) -> ClusteringResult:
    """Renumber surviving cluster ids to a dense ``0..m-1`` range.

    Splits and migrations leave empty raw clusters behind; mirrors may also
    point at clusters that later emptied — those mirror entries are kept
    only if the cluster still has at least one master vertex (an empty
    cluster is never mapped to a partition, so a mirror there is moot).
    """
    raw_count = len(volumes)
    used = np.zeros(raw_count, dtype=bool)
    active = cluster_of >= 0
    used[cluster_of[active]] = True
    remap = np.full(raw_count, -1, dtype=np.int64)
    remap[used] = np.arange(int(used.sum()), dtype=np.int64)
    compact_of = cluster_of.copy()
    compact_of[active] = remap[cluster_of[active]]
    compact_volumes = np.asarray(volumes, dtype=np.int64)[used]
    compact_mirrors: dict[int, list[int]] = {}
    for v, raw_ids in mirror_clusters.items():
        kept = sorted({int(remap[c]) for c in raw_ids if used[c]})
        if kept:
            compact_mirrors[v] = kept
    return ClusteringResult(
        cluster_of=compact_of,
        degree=degree,
        volume=compact_volumes,
        divided=divided,
        mirror_clusters=compact_mirrors,
        num_clusters=int(used.sum()),
        max_volume=max_volume,
        splits=splits,
        migrations=migrations,
        allocations=allocations,
    )
