"""Greedy — PowerGraph's coordinated greedy edge placement (Gonzalez 2012).

For each streamed edge (u, v), with A(x) = set of partitions already
holding x and per-partition edge loads:

1. if ``A(u) ∩ A(v)`` nonempty -> least-loaded partition in the intersection;
2. elif both nonempty          -> least-loaded in ``A(u) ∪ A(v)``;
3. elif exactly one nonempty   -> least-loaded in that set;
4. else                        -> least-loaded partition overall.

This is the "high quality / high time cost" heuristic of Table I: each edge
consults the global vertex-placement table and all k loads, so the runtime
grows with k (Figure 7) and the state is O(|V| * k / 8 + k) bytes
(Figure 6).
"""

from __future__ import annotations

import numpy as np

from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["GreedyPartitioner"]


class GreedyPartitioner(EdgePartitioner):
    """PowerGraph coordinated-greedy vertex-cut partitioning."""

    name = "greedy"

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        loads = np.zeros(k, dtype=np.int64)
        placed: list[set[int]] = [set() for _ in range(stream.num_vertices)]
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            au, av = placed[u], placed[v]
            common = au & av
            if common:
                p = min(common, key=loads.__getitem__)
            elif au and av:
                p = min(au | av, key=loads.__getitem__)
            elif au or av:
                p = min(au or av, key=loads.__getitem__)
            else:
                p = int(np.argmin(loads))
            out[i] = p
            loads[p] += 1
            au.add(p)
            av.add(p)
        self._replica_entries = sum(len(s) for s in placed)
        return out

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Vertex->partition-set table (one 8-byte entry per replica, as in
        the reference hash-set implementations) + the k-entry load array.

        When the partitioner has run, the measured replica count is used;
        otherwise a lower-bound estimate of one entry per vertex.
        """
        entries = getattr(self, "_replica_entries", stream.num_vertices)
        return entries * 8 + 8 * self.num_partitions
