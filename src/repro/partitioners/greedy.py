"""Greedy — PowerGraph's coordinated greedy edge placement (Gonzalez 2012).

For each streamed edge (u, v), with A(x) = set of partitions already
holding x and per-partition edge loads:

1. if ``A(u) ∩ A(v)`` nonempty -> least-loaded partition in the intersection;
2. elif both nonempty          -> least-loaded in ``A(u) ∪ A(v)``;
3. elif exactly one nonempty   -> least-loaded in that set;
4. else                        -> least-loaded partition overall.

Load ties always break to the lowest partition id, so the per-edge and
chunked paths are bit-identical by construction.

This is the "high quality / high time cost" heuristic of Table I: each edge
consults the global vertex-placement table and all k loads, so the runtime
grows with k (Figure 7) and the state is O(|V| * k / 8 + k) bytes
(Figure 6).

Chunked hot path (PR 3)
-----------------------
The placement decision is an argmin of near-tied integer loads — provably
order-chaotic at greedy's balanced-load attractor (DESIGN.md §4), so the
chunked path keeps the mandatory per-edge decision order but strips it to
a lean scalar core: vertex partition sets are plain Python int bitmasks,
cases 1-3 collapse to two word operations (``wu & wv`` else ``wu | wv``)
followed by a set-bit argmin, and only case 4 touches all k loads (via the
C-speed ``list.index``/``min`` builtins).  Bit-identical to
:meth:`_assign`; the previous numpy-per-edge chunk loop is retained as
``chunk_impl="reference"`` (correctness oracle and benchmark baseline).

``chunk_impl="jit"`` (PR 7) dispatches each chunk into a compiled kernel
(:mod:`repro.kernels`) running the same candidate-set argmin over flat
load/bitmask-word arrays — integer-only state, so bit-identity is by
construction (DESIGN.md §8).  When no kernel backend is available the
run silently degrades to the ``"fast"`` path.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from .._util import BitsetRows
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["GreedyPartitioner"]


class GreedyPartitioner(EdgePartitioner):
    """PowerGraph coordinated-greedy vertex-cut partitioning.

    Parameters
    ----------
    chunk_impl:
        ``"fast"`` (default) runs the lean int-bitmask core;
        ``"reference"`` runs the retained numpy-per-edge chunk loop;
        ``"jit"`` runs the compiled kernel (falling back to ``"fast"``
        when no backend is available).  All are bit-identical to the
        per-edge reference.
    kernel_backend:
        Which :mod:`repro.kernels` backend ``"jit"`` resolves
        (``"auto"``/``"numba"``/``"cc"``/``"python"``/``"none"``).
    """

    name = "greedy"
    supports_chunks = True

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        chunk_impl: str = "fast",
        kernel_backend: str = "auto",
    ) -> None:
        super().__init__(num_partitions, seed)
        if chunk_impl not in ("fast", "reference", "jit"):
            raise ValueError(
                f"chunk_impl must be 'fast', 'reference' or 'jit', got {chunk_impl!r}"
            )
        self.chunk_impl = chunk_impl
        self.kernel_backend = kernel_backend

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        loads = [0] * k
        placed: list[set[int]] = [set() for _ in range(stream.num_vertices)]
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        all_parts = range(k)
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            au, av = placed[u], placed[v]
            common = au & av
            if common:
                candidates = common
            elif au and av:
                candidates = au | av
            elif au or av:
                candidates = au or av
            else:
                candidates = all_parts
            p = min(candidates, key=lambda q: (loads[q], q))
            out[i] = p
            loads[p] += 1
            au.add(p)
            av.add(p)
        self._replica_entries = sum(len(s) for s in placed)
        return out

    # ------------------------------------------------------------------ #
    # chunk protocol
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        k = self.num_partitions
        self._run_impl = self.chunk_impl
        if self._run_impl == "jit":
            self._backend = kernels.get_backend(self.kernel_backend)
            if self._backend is None:
                self._run_impl = "fast"  # graceful degradation, same results
        if self._run_impl == "reference":
            self._loads = np.zeros(k, dtype=np.int64)
            # vertex -> partition set as packed uint64 bitset rows, 8x
            # smaller than a (n, k) boolean table
            self._placed = BitsetRows(stream.num_vertices, k)
            return
        if self._run_impl == "jit":
            self._nw = (k + 63) // 64
            self._loads = np.zeros(k, dtype=np.int64)
            # vertex -> partition set as flat multiword uint64 bitmask
            # rows, the layout the kernels consume directly
            self._kwords = np.zeros(
                stream.num_vertices * self._nw, dtype=np.uint64
            )
            return
        self._loads_list = [0] * k
        # vertex -> partition set as one Python int bitmask per vertex:
        # arbitrary k, O(1) intersection/union, no per-edge numpy calls
        self._words = [0] * stream.num_vertices

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        if self._run_impl == "reference":
            return self._partition_chunk_reference(edges)
        if self._run_impl == "jit":
            return self._partition_chunk_jit(edges)
        m = edges.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        loads = self._loads_list
        words = self._words
        u_list = edges[:, 0].tolist()
        v_list = edges[:, 1].tolist()
        out = [0] * m
        for i, (u, v) in enumerate(zip(u_list, v_list)):
            wu = words[u]
            wv = words[v]
            cw = wu & wv
            if not cw:
                cw = wu | wv  # cases 2/3 (either side may be empty)
            if cw:
                # argmin over the candidate bits; ascending bit order with
                # strict < replicates the (load, id) lexicographic rule
                best_p = -1
                best_l = 0
                ww = cw
                while ww:
                    b = ww & -ww
                    p = b.bit_length() - 1
                    ww ^= b
                    lp = loads[p]
                    if best_p < 0 or lp < best_l:
                        best_l = lp
                        best_p = p
                p = best_p
            else:
                # case 4: least-loaded overall; list.index returns the
                # first (lowest-id) minimum
                p = loads.index(min(loads))
            out[i] = p
            loads[p] += 1
            bit = 1 << p
            words[u] = wu | bit
            words[v] = wv | bit
        return np.asarray(out, dtype=np.int64)

    def _partition_chunk_jit(self, edges: np.ndarray) -> np.ndarray:
        """Compiled-kernel chunk path: the candidate argmin in machine code."""
        m = edges.shape[0]
        out = np.empty(m, dtype=np.int64)
        if m == 0:
            return out
        self._backend.greedy_chunk(
            np.ascontiguousarray(edges[:, 0]),
            np.ascontiguousarray(edges[:, 1]),
            self.num_partitions,
            self._nw,
            self._loads,
            self._kwords,
            out,
        )
        return out

    def _partition_chunk_reference(self, edges: np.ndarray) -> np.ndarray:
        """Retained numpy-per-edge chunk loop (PR 1).

        k-wide boolean mask operations per edge over the packed bitset
        table; kept as the readable correctness oracle and as the baseline
        the lean core's >=5x bench floor is measured against.
        """
        loads, placed = self._loads, self._placed
        rows, unpack = placed.rows, placed.mask
        place = placed.add
        sentinel = np.iinfo(np.int64).max
        out = np.empty(edges.shape[0], dtype=np.int64)
        u_list = edges[:, 0].tolist()
        v_list = edges[:, 1].tolist()
        for i, (u, v) in enumerate(zip(u_list, v_list)):
            words_u = rows[u]
            words_v = rows[v]
            common = words_u & words_v
            if common.any():
                candidates = unpack(common)
            else:
                has_u = words_u.any()
                has_v = words_v.any()
                if has_u and has_v:
                    candidates = unpack(words_u | words_v)
                elif has_u:
                    candidates = unpack(words_u)
                elif has_v:
                    candidates = unpack(words_v)
                else:
                    candidates = None
            if candidates is None:
                p = int(np.argmin(loads))  # argmin ties -> lowest id
            else:
                p = int(np.argmin(np.where(candidates, loads, sentinel)))
            out[i] = p
            loads[p] += 1
            place(u, p)
            place(v, p)
        return out

    def finish_chunks(self) -> np.ndarray:
        if self._run_impl == "reference":
            self._replica_entries = self._placed.count()
        elif self._run_impl == "jit":
            self._replica_entries = kernels.popcount(self._kwords)
        else:
            self._loads = np.asarray(self._loads_list, dtype=np.int64)
            self._replica_entries = sum(w.bit_count() for w in self._words)
        return np.empty(0, dtype=np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Vertex->partition-set table (one 8-byte entry per replica, as in
        the reference hash-set implementations) + the k-entry load array.

        When the partitioner has run, the measured replica count is used;
        otherwise a lower-bound estimate of one entry per vertex.
        """
        entries = getattr(self, "_replica_entries", stream.num_vertices)
        return entries * 8 + 8 * self.num_partitions
