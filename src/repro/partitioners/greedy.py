"""Greedy — PowerGraph's coordinated greedy edge placement (Gonzalez 2012).

For each streamed edge (u, v), with A(x) = set of partitions already
holding x and per-partition edge loads:

1. if ``A(u) ∩ A(v)`` nonempty -> least-loaded partition in the intersection;
2. elif both nonempty          -> least-loaded in ``A(u) ∪ A(v)``;
3. elif exactly one nonempty   -> least-loaded in that set;
4. else                        -> least-loaded partition overall.

Load ties always break to the lowest partition id, so the per-edge and
chunked paths are bit-identical by construction.

This is the "high quality / high time cost" heuristic of Table I: each edge
consults the global vertex-placement table and all k loads, so the runtime
grows with k (Figure 7) and the state is O(|V| * k / 8 + k) bytes
(Figure 6).  The chunked path keeps the mandatory per-edge decision order
but swaps the Python set algebra for k-wide boolean mask operations over a
dense vertex-incidence table.
"""

from __future__ import annotations

import numpy as np

from .._util import BitsetRows
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["GreedyPartitioner"]


class GreedyPartitioner(EdgePartitioner):
    """PowerGraph coordinated-greedy vertex-cut partitioning."""

    name = "greedy"
    supports_chunks = True

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        loads = [0] * k
        placed: list[set[int]] = [set() for _ in range(stream.num_vertices)]
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        all_parts = range(k)
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            au, av = placed[u], placed[v]
            common = au & av
            if common:
                candidates = common
            elif au and av:
                candidates = au | av
            elif au or av:
                candidates = au or av
            else:
                candidates = all_parts
            p = min(candidates, key=lambda q: (loads[q], q))
            out[i] = p
            loads[p] += 1
            au.add(p)
            av.add(p)
        self._replica_entries = sum(len(s) for s in placed)
        return out

    # ------------------------------------------------------------------ #
    # chunk protocol
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        self._loads = np.zeros(self.num_partitions, dtype=np.int64)
        # vertex -> partition set as packed uint64 bitset rows, 8x smaller
        # than a (n, k) boolean table
        self._placed = BitsetRows(stream.num_vertices, self.num_partitions)

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        loads, placed = self._loads, self._placed
        rows, unpack, place = placed.rows, placed.mask, placed.add
        sentinel = np.iinfo(np.int64).max
        out = np.empty(edges.shape[0], dtype=np.int64)
        u_list = edges[:, 0].tolist()
        v_list = edges[:, 1].tolist()
        for i, (u, v) in enumerate(zip(u_list, v_list)):
            words_u = rows[u]
            words_v = rows[v]
            common = words_u & words_v
            if common.any():
                candidates = unpack(common)
            else:
                has_u = words_u.any()
                has_v = words_v.any()
                if has_u and has_v:
                    candidates = unpack(words_u | words_v)
                elif has_u:
                    candidates = unpack(words_u)
                elif has_v:
                    candidates = unpack(words_v)
                else:
                    candidates = None
            if candidates is None:
                p = int(np.argmin(loads))  # argmin ties -> lowest id
            else:
                p = int(np.argmin(np.where(candidates, loads, sentinel)))
            out[i] = p
            loads[p] += 1
            place(u, p)
            place(v, p)
        return out

    def finish_chunks(self) -> np.ndarray:
        self._replica_entries = self._placed.count()
        return np.empty(0, dtype=np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Vertex->partition-set table (one 8-byte entry per replica, as in
        the reference hash-set implementations) + the k-entry load array.

        When the partitioner has run, the measured replica count is used;
        otherwise a lower-bound estimate of one entry per vertex.
        """
        entries = getattr(self, "_replica_entries", stream.num_vertices)
        return entries * 8 + 8 * self.num_partitions
