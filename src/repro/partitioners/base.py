"""Partitioner interface and the shared assignment result type.

Every algorithm in this library — the five streaming baselines, CLUGP and
its ablations, and the offline mini-METIS — consumes an
:class:`~repro.graph.EdgeStream` and produces a
:class:`PartitionAssignment`: one partition id per edge (Problem 1 of the
paper).  Quality metrics (replication factor, relative balance) live on the
result object and in :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .._util import (
    StageTimes,
    Timer,
    check_positive_int,
    group_by_bounded,
    vertex_partition_pairs,
)
from ..graph.stream import EdgeStream

__all__ = ["PartitionAssignment", "EdgePartitioner"]


class PartitionAssignment:
    """The result of vertex-cut partitioning: ``edge_partition[i]`` is the
    partition of the i-th edge of the stream.

    Parameters
    ----------
    stream:
        The partitioned stream (kept by reference for metric computation).
    edge_partition:
        int array, one entry in ``[0, num_partitions)`` per stream edge.
    num_partitions:
        ``k``.
    stage_times:
        Optional per-stage wall-clock seconds recorded by the partitioner.
    """

    def __init__(
        self,
        stream: EdgeStream,
        edge_partition,
        num_partitions: int,
        stage_times: StageTimes | None = None,
    ) -> None:
        edge_partition = np.ascontiguousarray(edge_partition, dtype=np.int64)
        if edge_partition.shape != (stream.num_edges,):
            raise ValueError(
                f"edge_partition must have one entry per edge "
                f"({stream.num_edges}), got shape {edge_partition.shape}"
            )
        check_positive_int(num_partitions, "num_partitions")
        if edge_partition.size:
            lo, hi = int(edge_partition.min()), int(edge_partition.max())
            if lo < 0 or hi >= num_partitions:
                raise ValueError(
                    f"edge partitions must lie in [0, {num_partitions}), "
                    f"found range [{lo}, {hi}]"
                )
        self.stream = stream
        self.edge_partition = edge_partition
        self.num_partitions = int(num_partitions)
        self.stage_times = stage_times or StageTimes()
        self._vertex_partition_counts = None
        self._grouped_edges = None

    # ------------------------------------------------------------------ #
    # core quantities (Section II-B)
    # ------------------------------------------------------------------ #

    def partition_sizes(self) -> np.ndarray:
        """``|p_i|`` — number of edges per partition."""
        return np.bincount(
            self.edge_partition, minlength=self.num_partitions
        ).astype(np.int64)

    def vertex_partition_counts(self) -> np.ndarray:
        """``|P(v)|`` per vertex — number of partitions holding v.

        A vertex is *in* a partition iff some incident edge is assigned
        there.  Vertices with no edges have count 0.
        """
        if self._vertex_partition_counts is None:
            verts, _, _ = vertex_partition_pairs(
                self.stream.src,
                self.stream.dst,
                self.edge_partition,
                self.num_partitions,
            )
            counts = np.bincount(verts, minlength=self.stream.num_vertices)
            self._vertex_partition_counts = counts.astype(np.int64)
        return self._vertex_partition_counts

    def grouped_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Partition-grouped edge layout: ``(order, indptr)`` (cached).

        ``order`` stably reorders stream edges so each partition's edges
        are one contiguous slice ``order[indptr[p]:indptr[p+1]]`` — the
        shared deployment substrate of the GAS engines (the global
        oracle's per-partition accounting and the local runtime's edge
        sub-graphs slice the same layout).
        """
        if self._grouped_edges is None:
            self._grouped_edges = group_by_bounded(
                self.edge_partition, self.num_partitions
            )
        return self._grouped_edges

    def replication_factor(self) -> float:
        """``RF = (1/|V'|) * sum_v |P(v)|`` over vertices with >=1 edge."""
        counts = self.vertex_partition_counts()
        active = counts[counts > 0]
        if active.size == 0:
            return 0.0
        return float(active.mean())

    def relative_balance(self) -> float:
        """``rho = k * max|p_i| / |E|`` (1.0 = perfectly balanced)."""
        if self.stream.num_edges == 0:
            return 1.0
        return float(
            self.num_partitions * self.partition_sizes().max() / self.stream.num_edges
        )

    def vertex_sets(self) -> list[np.ndarray]:
        """Per-partition arrays of vertex ids present in that partition."""
        k = self.num_partitions
        result: list[np.ndarray] = []
        for p in range(k):
            mask = self.edge_partition == p
            verts = np.union1d(self.stream.src[mask], self.stream.dst[mask])
            result.append(verts)
        return result

    def total_time(self) -> float:
        """Total recorded partitioning work seconds (summed stages)."""
        return self.stage_times.total

    def wall_time(self) -> float:
        """Deployment wall-clock: the critical path across concurrent
        workers when one was recorded (e.g. ``max_node`` for distributed
        CLUGP), else the summed stage total."""
        return self.stage_times.critical_path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PartitionAssignment(k={self.num_partitions}, "
            f"|E|={self.stream.num_edges}, RF={self.replication_factor():.3f})"
        )


class EdgePartitioner(ABC):
    """Abstract vertex-cut edge partitioner.

    Subclasses implement :meth:`_assign` and may override
    :meth:`state_memory_bytes` (the Figure 6 accounting) and
    :attr:`passes` (1 for streaming baselines, 3 for CLUGP).

    Chunked ingestion
    -----------------
    Chunk-capable partitioners implement the incremental chunk protocol —
    :meth:`begin_chunks`, :meth:`partition_chunk`, :meth:`finish_chunks` —
    and set ``supports_chunks = True``.  The protocol consumes ``(m, 2)``
    int64 edge arrays from :meth:`EdgeStream.chunks` so the hot path runs
    as numpy batch operations; :meth:`partition_chunked` drives it end to
    end.  Single-pass partitioners commit each chunk as it arrives;
    batch-buffering (Mint) and multi-pass (CLUGP) algorithms may defer
    edges — up to all of them — and flush the outstanding assignments from
    :meth:`finish_chunks`.  :meth:`partition_per_edge` keeps the faithful
    per-edge streaming loop as the reference (and benchmark baseline)
    path; both paths must produce bit-identical assignments.
    """

    #: human-readable algorithm name (used in reports and the registry)
    name: str = "base"
    #: number of passes over the stream the algorithm makes
    passes: int = 1
    #: stream order the algorithm performs best under (Section VI-A: the
    #: paper evaluates every competitor under its best order — random for
    #: the one-pass heuristics/hashes, BFS/crawl order for Mint and CLUGP)
    preferred_order: str = "random"
    #: whether the incremental chunk protocol is implemented
    supports_chunks: bool = False
    #: chunk size used by :meth:`partition_chunked` when none is given
    default_chunk_size: int = 1 << 16

    def __init__(self, num_partitions: int, seed: int = 0) -> None:
        self.num_partitions = check_positive_int(num_partitions, "num_partitions")
        self.seed = int(seed)
        self._last_stream: EdgeStream | None = None

    def partition(self, stream: EdgeStream) -> PartitionAssignment:
        """Partition ``stream``; returns the per-edge assignment."""
        self._last_stream = stream
        times = StageTimes()
        with Timer() as t:
            edge_partition = self._assign(stream)
        times.add("total", t.elapsed)
        return PartitionAssignment(stream, edge_partition, self.num_partitions, times)

    def partition_chunked(
        self, stream: EdgeStream, chunk_size: int | None = None
    ) -> PartitionAssignment:
        """Partition ``stream`` by ingesting ``(m, 2)`` edge chunks.

        Chunk-capable partitioners run the incremental protocol and never
        see the stream as individual edges.  Algorithms without a chunk
        path fall back to :meth:`_assign`; either way the assignment is
        bit-identical to :meth:`partition`.
        """
        self._last_stream = stream
        if chunk_size is None:
            size = self.default_chunk_size
        else:
            size = check_positive_int(chunk_size, "chunk_size")
        times = StageTimes()
        with Timer() as t:
            if self.supports_chunks:
                edge_partition = self._assign_chunks(stream, size)
            else:
                edge_partition = self._assign(stream)
        times.add("total", t.elapsed)
        return PartitionAssignment(stream, edge_partition, self.num_partitions, times)

    def partition_per_edge(self, stream: EdgeStream) -> PartitionAssignment:
        """Partition via the reference per-edge streaming loop.

        This is the faithful one-edge-at-a-time path a non-vectorized
        streaming system would execute; it is kept as the correctness
        reference for the chunked path and as the benchmark baseline.
        """
        self._last_stream = stream
        times = StageTimes()
        with Timer() as t:
            edge_partition = self._assign_per_edge(stream)
        times.add("total", t.elapsed)
        return PartitionAssignment(stream, edge_partition, self.num_partitions, times)

    @abstractmethod
    def _assign(self, stream: EdgeStream) -> np.ndarray:
        """Return the per-edge partition array for ``stream``."""

    def _assign_per_edge(self, stream: EdgeStream) -> np.ndarray:
        """Reference per-edge loop; defaults to :meth:`_assign`."""
        return self._assign(stream)

    def _assign_chunks(self, stream: EdgeStream, chunk_size: int) -> np.ndarray:
        """Drive the incremental chunk protocol over the whole stream."""
        self.begin_chunks(stream)
        parts = [self.partition_chunk(chunk) for chunk in stream.chunks(chunk_size)]
        tail = self.finish_chunks()
        if tail.size:
            parts.append(tail)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # ------------------------------------------------------------------ #
    # incremental chunk protocol (single-pass partitioners)
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        """Reset incremental state before a chunked run.

        Implementations may read stream *metadata* (``num_vertices``,
        ``num_edges``) but must not look at edges ahead of the chunks
        subsequently passed to :meth:`partition_chunk` — except explicit
        multi-pass variants (e.g. DBH with ``exact_degrees``).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the chunk protocol"
        )

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        """Ingest one ``(m, 2)`` int64 edge chunk; return assignments.

        Returns the partition ids of the edges *committed* by this call —
        normally all ``m`` of them, in order.  Batch-buffering algorithms
        (Mint) may defer a tail of the chunk to the next call; deferred
        edges are flushed by :meth:`finish_chunks`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the chunk protocol"
        )

    def finish_chunks(self) -> np.ndarray:
        """Flush any edges buffered across :meth:`partition_chunk` calls."""
        return np.empty(0, dtype=np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Analytic size of the algorithm's live state tables, in bytes.

        Used for the Figure 6 space comparison.  The default of 0 matches
        stateless hashing; stateful algorithms override.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(k={self.num_partitions})"
