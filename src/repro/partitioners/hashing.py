"""Hashing: the PowerGraph random edge placement baseline.

Each edge is placed by a deterministic hash of its endpoint pair.  Fully
stateless (0 bytes of partitioner state, as in Figure 6) and k-insensitive
in runtime (Figure 7), but quality is the worst of the competitor set: the
expected replication factor approaches ``k(1 - (1 - 1/k)^{d})`` per vertex
of degree d, i.e. every high-degree vertex is replicated nearly k times.
"""

from __future__ import annotations

import numpy as np

from .._util import hash_pair_to_partition
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["HashingPartitioner"]


class HashingPartitioner(EdgePartitioner):
    """PowerGraph ``random`` (edge-hash) vertex-cut partitioning."""

    name = "hashing"

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        return hash_pair_to_partition(
            stream.src, stream.dst, self.num_partitions, seed=self.seed
        )

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        return 0  # a hash function only
