"""Hashing: the PowerGraph random edge placement baseline.

Each edge is placed by a deterministic hash of its endpoint pair.  Fully
stateless (0 bytes of partitioner state, as in Figure 6) and k-insensitive
in runtime (Figure 7), but quality is the worst of the competitor set: the
expected replication factor approaches ``k(1 - (1 - 1/k)^{d})`` per vertex
of degree d, i.e. every high-degree vertex is replicated nearly k times.

Statelessness makes this the purest beneficiary of chunked ingestion: the
chunked path hashes whole ``(m, 2)`` edge arrays in one vectorized call,
while :meth:`partition_per_edge` keeps the one-hash-per-edge loop a
scalar streaming system would run.
"""

from __future__ import annotations

import numpy as np

from .._util import hash_pair_to_partition
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["HashingPartitioner"]


class HashingPartitioner(EdgePartitioner):
    """PowerGraph ``random`` (edge-hash) vertex-cut partitioning."""

    name = "hashing"
    supports_chunks = True

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        return hash_pair_to_partition(
            stream.src, stream.dst, self.num_partitions, seed=self.seed
        )

    def _assign_per_edge(self, stream: EdgeStream) -> np.ndarray:
        out = np.empty(stream.num_edges, dtype=np.int64)
        k, seed = self.num_partitions, self.seed
        for i, (u, v) in enumerate(zip(stream.src.tolist(), stream.dst.tolist())):
            out[i] = hash_pair_to_partition(u, v, k, seed=seed)
        return out

    def begin_chunks(self, stream: EdgeStream) -> None:
        pass  # stateless

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        return hash_pair_to_partition(
            edges[:, 0], edges[:, 1], self.num_partitions, seed=self.seed
        )

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        return 0  # a hash function only
