"""DBH — Degree-Based Hashing (Xie et al., NeurIPS 2014).

Hash the edge to the partition of its *lower-degree* endpoint, so that
high-degree vertices are the ones cut (replicated).  This is provably
better than plain hashing on power-law graphs: hubs are replicated anyway,
so anchoring edges at their low-degree endpoint keeps those endpoints
whole.

In the streaming setting the true degrees are unknown, so DBH uses the
*partial* degrees observed so far (as in the reference implementation).
The per-edge recurrence looks inherently sequential, but the partial
degree of ``u`` at edge i is just "occurrences of ``u`` among the
endpoints of edges 0..i-1" — an order-preserving group-by cumulative
count, which the chunked path computes for a whole ``(m, 2)`` chunk with
one stable argsort.  A vectorized two-pass variant (exact degrees) is
used when ``exact_degrees=True``.
"""

from __future__ import annotations

import numpy as np

from .._util import hash_to_partition, stable_argsort_bounded
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["DBHPartitioner"]


class DBHPartitioner(EdgePartitioner):
    """Degree-based hashing vertex-cut partitioning.

    Parameters
    ----------
    exact_degrees:
        If True, a first pass computes exact degrees and the placement pass
        is fully vectorized (2-pass variant).  If False (default, faithful
        to the streaming setting), partial degrees observed so far decide.
    """

    name = "dbh"
    supports_chunks = True

    def __init__(self, num_partitions: int, seed: int = 0, exact_degrees: bool = False):
        super().__init__(num_partitions, seed)
        self.exact_degrees = bool(exact_degrees)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        return self._assign_chunks(stream, max(1, stream.num_edges))

    def _assign_per_edge(self, stream: EdgeStream) -> np.ndarray:
        if self.exact_degrees:
            degrees = stream.degrees()
        else:
            degrees = None
        partial = np.zeros(stream.num_vertices, dtype=np.int64)
        src_hash = hash_to_partition(stream.src, self.num_partitions, seed=self.seed)
        dst_hash = hash_to_partition(stream.dst, self.num_partitions, seed=self.seed)
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            if degrees is None:
                # anchor at the endpoint with smaller partial degree (tie -> src)
                out[i] = src_hash[i] if partial[u] <= partial[v] else dst_hash[i]
                partial[u] += 1
                partial[v] += 1
            else:
                out[i] = src_hash[i] if degrees[u] <= degrees[v] else dst_hash[i]
        return out

    # ------------------------------------------------------------------ #
    # chunk protocol
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        if self.exact_degrees:
            # explicit 2-pass variant: exact degrees come from a first pass
            self._degrees = stream.degrees()
        else:
            self._partial = np.zeros(stream.num_vertices, dtype=np.int64)

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        u, v = edges[:, 0], edges[:, 1]
        if self.exact_degrees:
            anchor = np.where(self._degrees[u] <= self._degrees[v], u, v)
            return hash_to_partition(anchor, self.num_partitions, seed=self.seed)
        m = u.size
        if m == 0:
            return np.empty(0, dtype=np.int64)
        # partial degree of an endpoint at edge i = carried-in count plus
        # its occurrences among this chunk's earlier endpoint slots; the
        # within-chunk term is a group-by cumulative count over the
        # interleaved (src0, dst0, src1, dst1, ...) sequence
        seq = np.empty(2 * m, dtype=np.int64)
        seq[0::2] = u
        seq[1::2] = v
        order = stable_argsort_bounded(seq, self._partial.size)
        seq_sorted = seq[order]
        pos = np.arange(2 * m, dtype=np.int64)
        run_start = np.r_[True, seq_sorted[1:] != seq_sorted[:-1]]
        run_origin = np.maximum.accumulate(np.where(run_start, pos, 0))
        prior = np.empty(2 * m, dtype=np.int64)
        prior[order] = pos - run_origin
        partial_u = self._partial[u] + prior[0::2]
        partial_v = self._partial[v] + prior[1::2]
        anchor = np.where(partial_u <= partial_v, u, v)
        out = hash_to_partition(anchor, self.num_partitions, seed=self.seed)
        self._partial += np.bincount(seq, minlength=self._partial.size)
        return out

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # one partial-degree counter per vertex
        return stream.num_vertices * 8
