"""DBH — Degree-Based Hashing (Xie et al., NeurIPS 2014).

Hash the edge to the partition of its *lower-degree* endpoint, so that
high-degree vertices are the ones cut (replicated).  This is provably
better than plain hashing on power-law graphs: hubs are replicated anyway,
so anchoring edges at their low-degree endpoint keeps those endpoints
whole.

In the streaming setting the true degrees are unknown, so DBH uses the
*partial* degrees observed so far (as in the reference implementation).
We implement both the streaming per-edge loop and a vectorized two-pass
variant (exact degrees) used when ``exact_degrees=True``.
"""

from __future__ import annotations

import numpy as np

from .._util import hash_to_partition
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["DBHPartitioner"]


class DBHPartitioner(EdgePartitioner):
    """Degree-based hashing vertex-cut partitioning.

    Parameters
    ----------
    exact_degrees:
        If True, a first pass computes exact degrees and the placement pass
        is fully vectorized (2-pass variant).  If False (default, faithful
        to the streaming setting), partial degrees observed so far decide.
    """

    name = "dbh"

    def __init__(self, num_partitions: int, seed: int = 0, exact_degrees: bool = False):
        super().__init__(num_partitions, seed)
        self.exact_degrees = bool(exact_degrees)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        if self.exact_degrees:
            return self._assign_exact(stream)
        return self._assign_streaming(stream)

    def _assign_exact(self, stream: EdgeStream) -> np.ndarray:
        degrees = stream.degrees()
        src_deg = degrees[stream.src]
        dst_deg = degrees[stream.dst]
        anchor = np.where(src_deg <= dst_deg, stream.src, stream.dst)
        return hash_to_partition(anchor, self.num_partitions, seed=self.seed)

    def _assign_streaming(self, stream: EdgeStream) -> np.ndarray:
        partial = np.zeros(stream.num_vertices, dtype=np.int64)
        src_hash = hash_to_partition(stream.src, self.num_partitions, seed=self.seed)
        dst_hash = hash_to_partition(stream.dst, self.num_partitions, seed=self.seed)
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            # anchor at the endpoint with smaller partial degree (tie -> src)
            out[i] = src_hash[i] if partial[u] <= partial[v] else dst_hash[i]
            partial[u] += 1
            partial[v] += 1
        return out

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # one partial-degree counter per vertex
        return stream.num_vertices * 8
