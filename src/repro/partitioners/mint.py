"""Mint — quasi-streaming game-theoretic edge partitioning (Hua et al.,
TPDS 2019), reimplemented from the paper's description.

Mint ingests the stream in fixed-size *batches*; within a batch every edge
is a player of a strategic game choosing the partition that minimizes its
own cost (new-replica cost + load cost), iterating best responses to a
batch-local equilibrium before committing the batch.  Crucially — and this
is what Figure 6 of the CLUGP paper shows — Mint does **not** maintain a
global vertex->partition table: its state is O(batch_size * threads) plus
the k-entry load array, so it sits between hashing and the heuristics in
both quality and cost (Table I: Medium / Medium).

Our implementation is faithful to that structure:

* initial strategy: degree-based hash of the batch-locally lower-degree
  endpoint (stateless, like DBH);
* per-round best response per edge: for each partition p, cost =
  (new replicas of u and v w.r.t. the *batch-local* assignment) +
  ``alpha * (committed_load[p] + pending[p]) / ideal_load``;
* rounds repeat until no edge moves (or ``max_rounds``).

The batch-local incidence table is a dense ``(batch_vertices, k)`` array
(vertices renumbered per batch via ``np.unique``), so strategy
initialization, incidence construction, and the per-move cost evaluation
are all array operations.  The best-response sweep itself stays
Gauss-Seidel — each move must observe the previous ones, which is the
game's semantics.  Chunked ingestion buffers arriving edge chunks and
commits a game per full batch, so batch boundaries (and therefore
results) are independent of the chunk size.
"""

from __future__ import annotations

import numpy as np

from .._util import hash_to_partition
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["MintPartitioner"]


class MintPartitioner(EdgePartitioner):
    """Batch-game quasi-streaming vertex-cut partitioning (Mint).

    Parameters
    ----------
    batch_size:
        Edges per game batch (paper uses thousands; default 4096).
    alpha:
        Weight of the load term relative to the replica term.
    max_rounds:
        Best-response round cap per batch.
    """

    name = "mint"
    preferred_order = "natural"
    supports_chunks = True

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        batch_size: int = 4096,
        alpha: float = 1.0,
        max_rounds: int = 8,
    ) -> None:
        super().__init__(num_partitions, seed)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.batch_size = int(batch_size)
        self.alpha = float(alpha)
        self.max_rounds = int(max_rounds)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        return self._assign_chunks(stream, max(1, stream.num_edges))

    # ------------------------------------------------------------------ #
    # chunk protocol
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        k = self.num_partitions
        self._loads = np.zeros(k, dtype=np.int64)
        self._degrees = np.zeros(stream.num_vertices, dtype=np.int64)
        self._ideal = max(1.0, stream.num_edges / k)
        self._pending_edges: list[np.ndarray] = []
        self._pending_count = 0

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        """Buffer the chunk and commit a game per full batch.

        Edges beyond the last full batch stay buffered for the next chunk
        (or :meth:`finish_chunks`), so assignments depend only on the
        batch size, never on how the stream was chunked.
        """
        self._pending_edges.append(edges)
        self._pending_count += edges.shape[0]
        if self._pending_count < self.batch_size:
            return np.empty(0, dtype=np.int64)
        buffered = (
            self._pending_edges[0]
            if len(self._pending_edges) == 1
            else np.concatenate(self._pending_edges)
        )
        committed = []
        start = 0
        while buffered.shape[0] - start >= self.batch_size:
            committed.append(self._commit_batch(buffered[start : start + self.batch_size]))
            start += self.batch_size
        remainder = buffered[start:]
        self._pending_edges = [remainder] if remainder.shape[0] else []
        self._pending_count = remainder.shape[0]
        return committed[0] if len(committed) == 1 else np.concatenate(committed)

    def finish_chunks(self) -> np.ndarray:
        if not self._pending_count:
            return np.empty(0, dtype=np.int64)
        buffered = (
            self._pending_edges[0]
            if len(self._pending_edges) == 1
            else np.concatenate(self._pending_edges)
        )
        self._pending_edges = []
        self._pending_count = 0
        return self._commit_batch(buffered)

    def _commit_batch(self, edges: np.ndarray) -> np.ndarray:
        src, dst = edges[:, 0], edges[:, 1]
        choice = self._play_batch(src, dst, self._loads, self._degrees, self._ideal)
        self._loads += np.bincount(choice, minlength=self.num_partitions)
        np.add.at(self._degrees, src, 1)
        np.add.at(self._degrees, dst, 1)
        return choice

    def _play_batch(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        loads: np.ndarray,
        degrees: np.ndarray,
        ideal: float,
    ) -> np.ndarray:
        k = self.num_partitions
        b = src.size
        # initial strategy: hash of the (so-far) lower-degree endpoint
        anchor = np.where(degrees[src] <= degrees[dst], src, dst)
        choice = hash_to_partition(anchor, k, seed=self.seed)
        # batch-local incidence: dense (batch vertices, k) counts of this
        # batch's edges, with vertices renumbered into [0, |V_batch|)
        local = np.unique(np.concatenate([src, dst]))
        local_u = np.searchsorted(local, src)
        local_v = np.searchsorted(local, dst)
        incident = np.zeros((local.size, k), dtype=np.int64)
        np.add.at(incident, (local_u, choice), 1)
        np.add.at(incident, (local_v, choice), 1)
        pending = np.bincount(choice, minlength=k).astype(np.int64)
        u_list, v_list = local_u.tolist(), local_v.tolist()
        alpha = self.alpha
        for _ in range(self.max_rounds):
            moved = 0
            for i in range(b):
                u, v = u_list[i], v_list[i]
                cur = int(choice[i])
                inc_u = incident[u]
                inc_v = incident[v]
                # remove self from its own view while evaluating
                inc_u[cur] -= 1
                inc_v[cur] -= 1
                pending[cur] -= 1
                replica_cost = (inc_u == 0).astype(np.float64) + (inc_v == 0)
                load_cost = alpha * (loads + pending) / ideal
                best = int(np.argmin(replica_cost + load_cost))
                choice[i] = best
                inc_u[best] += 1
                inc_v[best] += 1
                pending[best] += 1
                if best != cur:
                    moved += 1
            if moved == 0:
                break
        return choice.astype(np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # O(batch_size * threads) as stated by the CLUGP paper's Figure 6
        # discussion: the batch edges with their current strategies, plus
        # the k-entry committed/pending load arrays.  (The per-partition
        # incidence table our implementation keeps is a rebuildable cache
        # over the same batch, not algorithmic state.)
        return self.batch_size * 24 + 16 * self.num_partitions
