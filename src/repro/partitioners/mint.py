"""Mint — quasi-streaming game-theoretic edge partitioning (Hua et al.,
TPDS 2019), reimplemented from the paper's description.

Mint ingests the stream in fixed-size *batches*; within a batch every edge
is a player of a strategic game choosing the partition that minimizes its
own cost (new-replica cost + load cost), iterating best responses to a
batch-local equilibrium before committing the batch.  Crucially — and this
is what Figure 6 of the CLUGP paper shows — Mint does **not** maintain a
global vertex->partition table: its state is O(batch_size * threads) plus
the k-entry load array, so it sits between hashing and the heuristics in
both quality and cost (Table I: Medium / Medium).

Our implementation is faithful to that structure:

* initial strategy: degree-based hash of the batch-locally lower-degree
  endpoint (stateless, like DBH);
* per-round best response per edge: for each partition p, cost =
  (new replicas of u and v w.r.t. the *batch-local* assignment) +
  ``alpha * (committed_load[p] + pending[p]) / ideal_load``;
* rounds repeat until no edge moves (or ``max_rounds``).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .._util import hash_to_partition
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["MintPartitioner"]


class MintPartitioner(EdgePartitioner):
    """Batch-game quasi-streaming vertex-cut partitioning (Mint).

    Parameters
    ----------
    batch_size:
        Edges per game batch (paper uses thousands; default 4096).
    alpha:
        Weight of the load term relative to the replica term.
    max_rounds:
        Best-response round cap per batch.
    """

    name = "mint"
    preferred_order = "natural"

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        batch_size: int = 4096,
        alpha: float = 1.0,
        max_rounds: int = 8,
    ) -> None:
        super().__init__(num_partitions, seed)
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.batch_size = int(batch_size)
        self.alpha = float(alpha)
        self.max_rounds = int(max_rounds)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        loads = np.zeros(k, dtype=np.int64)
        out = np.empty(stream.num_edges, dtype=np.int64)
        ideal = max(1.0, stream.num_edges / k)
        offset = 0
        degrees = np.zeros(stream.num_vertices, dtype=np.int64)
        for src_chunk, dst_chunk in stream.batches(self.batch_size):
            choice = self._play_batch(src_chunk, dst_chunk, loads, degrees, ideal)
            out[offset : offset + choice.size] = choice
            loads += np.bincount(choice, minlength=k)
            np.add.at(degrees, src_chunk, 1)
            np.add.at(degrees, dst_chunk, 1)
            offset += choice.size
        return out

    def _play_batch(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        loads: np.ndarray,
        degrees: np.ndarray,
        ideal: float,
    ) -> np.ndarray:
        k = self.num_partitions
        b = src.size
        # initial strategy: hash of the (so-far) lower-degree endpoint
        anchor = np.where(degrees[src] <= degrees[dst], src, dst)
        choice = hash_to_partition(anchor, k, seed=self.seed)
        # batch-local incidence: vertex -> per-partition counts of edges here
        incident: dict[int, np.ndarray] = defaultdict(lambda: np.zeros(k, np.int64))
        pending = np.zeros(k, dtype=np.int64)
        src_l, dst_l = src.tolist(), dst.tolist()
        for i in range(b):
            p = int(choice[i])
            incident[src_l[i]][p] += 1
            incident[dst_l[i]][p] += 1
            pending[p] += 1
        alpha = self.alpha
        for _ in range(self.max_rounds):
            moved = 0
            for i in range(b):
                u, v = src_l[i], dst_l[i]
                cur = int(choice[i])
                inc_u, inc_v = incident[u], incident[v]
                # remove self from its own view while evaluating
                inc_u[cur] -= 1
                inc_v[cur] -= 1
                pending[cur] -= 1
                replica_cost = (inc_u == 0).astype(np.float64) + (inc_v == 0)
                load_cost = alpha * (loads + pending) / ideal
                best = int(np.argmin(replica_cost + load_cost))
                choice[i] = best
                inc_u[best] += 1
                inc_v[best] += 1
                pending[best] += 1
                if best != cur:
                    moved += 1
            if moved == 0:
                break
        return choice.astype(np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # O(batch_size * threads) as stated by the CLUGP paper's Figure 6
        # discussion: the batch edges with their current strategies, plus
        # the k-entry committed/pending load arrays.  (The per-partition
        # incidence table our implementation keeps is a rebuildable cache
        # over the same batch, not algorithmic state.)
        return self.batch_size * 24 + 16 * self.num_partitions
