"""Name -> partitioner factory registry used by the CLI and benchmarks.

CLUGP and its ablation variants are registered lazily to avoid a circular
import (the core package imports :mod:`repro.partitioners.base`).
"""

from __future__ import annotations

from .base import EdgePartitioner
from .dbh import DBHPartitioner
from .greedy import GreedyPartitioner
from .hashing import HashingPartitioner
from .edgecut import FennelPartitioner, LdgPartitioner
from .grid import GridPartitioner
from .hdrf import HDRFPartitioner
from .mint import MintPartitioner

__all__ = ["PARTITIONERS", "make_partitioner"]

PARTITIONERS: dict[str, type | str] = {
    "hashing": HashingPartitioner,
    "dbh": DBHPartitioner,
    "greedy": GreedyPartitioner,
    "hdrf": HDRFPartitioner,
    "mint": MintPartitioner,
    "grid": GridPartitioner,
    "ldg": LdgPartitioner,
    "fennel": FennelPartitioner,
    # lazy entries resolved in make_partitioner:
    "clugp": "repro.core.partitioner:ClugpPartitioner",
    "clugp-s": "repro.core.partitioner:ClugpNoSplitPartitioner",
    "clugp-g": "repro.core.partitioner:ClugpGreedyPartitioner",
    "clugp-dist": "repro.core.distributed:DistributedClugpPartitioner",
    "minimetis": "repro.offline.minimetis:MiniMetisPartitioner",
}


def make_partitioner(name: str, num_partitions: int, seed: int = 0, **kwargs) -> EdgePartitioner:
    """Instantiate a registered partitioner by name.

    Extra keyword arguments are forwarded to the constructor, so e.g.
    ``make_partitioner("hdrf", 32, lambda_bal=2.0)`` works.
    """
    key = name.lower()
    if key not in PARTITIONERS:
        raise KeyError(f"unknown partitioner {name!r}; known: {sorted(PARTITIONERS)}")
    entry = PARTITIONERS[key]
    if isinstance(entry, str):
        module_name, _, attr = entry.partition(":")
        import importlib

        entry = getattr(importlib.import_module(module_name), attr)
        PARTITIONERS[key] = entry  # cache the resolved class
    return entry(num_partitions, seed=seed, **kwargs)
