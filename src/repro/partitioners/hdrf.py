"""HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).

The state-of-the-art one-pass heuristic the paper compares against.  For
each edge (u, v), HDRF scores every partition p as::

    C(p) = C_REP(p) + lambda_bal * C_BAL(p)
    C_REP(p) = g(u, p) + g(v, p)
    g(x, p)  = 1 + (1 - theta(x))   if p in A(x) else 0
    theta(x) = d(x) / (d(u) + d(v))      (partial degrees)
    C_BAL(p) = (max_load - load[p]) / (eps + max_load - min_load)

and assigns the edge to the argmax.  Favoring partitions that already hold
the *lower*-degree endpoint (the ``1 - theta`` term) replicates high-degree
vertices first — the right trade on power-law graphs.

This is the Table I "high quality / high time cost" representative: each
edge scores all k partitions against a global table, so runtime grows with
k (Figure 7) and state is the largest of the one-pass set (Figure 6).

Chunked hot path (PR 3)
-----------------------
HDRF's recurrence is split into its decision-independent and
decision-dependent parts:

* the partial-degree reads — the only per-edge state that does *not*
  depend on earlier placement decisions — are lifted out of the loop
  entirely: one radix group-by (:func:`repro._util.occurrence_ranks`)
  turns a whole chunk's ``d(u)/d(v)``/``theta``/``g`` values into four
  vectorized array expressions;
* the placement decision itself is provably order-chaotic (near-tied
  balance scores at the balanced-load attractor; see DESIGN.md §4) and
  runs in a lean scalar core: vertex partition sets are plain Python int
  bitmasks and each edge scores only ``A(u) | A(v)`` plus the least-loaded
  partition — exact by the candidate-shortcut argument of DESIGN.md §4.2 —
  instead of all k partitions.

Both paths are bit-identical to :meth:`_assign`; the previous
numpy-per-edge chunk loop is retained as ``chunk_impl="reference"`` (the
correctness oracle and the benchmark baseline the fast core replaces).

``chunk_impl="jit"`` (PR 7) dispatches each chunk into a compiled kernel
(:mod:`repro.kernels`): the full-k-scan reference loop runs in machine
code over flat load/degree/bitmask-word arrays, bit-identical to
:meth:`_assign` by construction (same IEEE double evaluation order; see
DESIGN.md §8).  When no kernel backend is available the run silently
degrades to the ``"fast"`` path.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from .._util import BitsetRows, occurrence_ranks
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["HDRFPartitioner"]


class HDRFPartitioner(EdgePartitioner):
    """HDRF streaming vertex-cut partitioning.

    Parameters
    ----------
    lambda_bal:
        Balance weight (paper default 1.0; >1 pushes harder for balance).
    epsilon:
        Tie-break constant in the balance term.
    chunk_impl:
        ``"fast"`` (default) runs the vectorized-precompute + lean scalar
        core; ``"reference"`` runs the retained numpy-per-edge chunk
        loop; ``"jit"`` runs the compiled kernel (falling back to
        ``"fast"`` when no backend is available).  All are bit-identical
        to the per-edge reference.
    kernel_backend:
        Which :mod:`repro.kernels` backend ``"jit"`` resolves
        (``"auto"``/``"numba"``/``"cc"``/``"python"``/``"none"``).
    """

    name = "hdrf"
    supports_chunks = True

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        lambda_bal: float = 1.0,
        epsilon: float = 1.0,
        chunk_impl: str = "fast",
        kernel_backend: str = "auto",
    ) -> None:
        super().__init__(num_partitions, seed)
        if lambda_bal < 0:
            raise ValueError(f"lambda_bal must be >= 0, got {lambda_bal}")
        if epsilon <= 0:
            # eps = 0 would divide by zero whenever loads are all equal
            # (e.g. the very first edge), so the balance term requires a
            # strictly positive tie-break constant
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        if chunk_impl not in ("fast", "reference", "jit"):
            raise ValueError(
                f"chunk_impl must be 'fast', 'reference' or 'jit', got {chunk_impl!r}"
            )
        self.lambda_bal = float(lambda_bal)
        self.epsilon = float(epsilon)
        self.chunk_impl = chunk_impl
        self.kernel_backend = kernel_backend

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        loads = np.zeros(k, dtype=np.float64)
        degree = np.zeros(stream.num_vertices, dtype=np.int64)
        placed: list[set[int]] = [set() for _ in range(stream.num_vertices)]
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        lam, eps = self.lambda_bal, self.epsilon
        loads_list = loads.tolist()
        # every edge scores all k partitions against the global state —
        # this per-edge O(k) scan is exactly the k-dependent time cost the
        # paper's Figure 7 measures for the heuristic methods
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            degree[u] += 1
            degree[v] += 1
            du, dv = int(degree[u]), int(degree[v])
            theta_u = du / (du + dv)
            gu = 1.0 + (1.0 - theta_u)
            gv = 1.0 + theta_u
            au, av = placed[u], placed[v]
            max_load = max(loads_list)
            denom = eps + (max_load - min(loads_list))
            scale = lam / denom
            best_p = 0
            best_score = -1e300
            for p in range(k):
                score = scale * (max_load - loads_list[p])
                if p in au:
                    score += gu
                if p in av:
                    score += gv
                if score > best_score:
                    best_score = score
                    best_p = p
            out[i] = best_p
            loads_list[best_p] += 1.0
            au.add(best_p)
            av.add(best_p)
        self._replica_entries = sum(len(s) for s in placed)
        return out

    # ------------------------------------------------------------------ #
    # chunk protocol
    # ------------------------------------------------------------------ #

    def begin_chunks(self, stream: EdgeStream) -> None:
        k = self.num_partitions
        self._num_vertices = stream.num_vertices
        self._run_impl = self.chunk_impl
        if self._run_impl == "jit":
            self._backend = kernels.get_backend(self.kernel_backend)
            if self._backend is None:
                self._run_impl = "fast"  # graceful degradation, same results
        if self._run_impl == "reference":
            self._loads = np.zeros(k, dtype=np.float64)
            self._degree = np.zeros(stream.num_vertices, dtype=np.int64)
            # vertex -> partition set as packed uint64 bitset rows, 8x
            # smaller than a (n, k) boolean table
            self._placed = BitsetRows(stream.num_vertices, k)
            return
        if self._run_impl == "jit":
            self._nw = (k + 63) // 64
            self._loads = np.zeros(k, dtype=np.float64)
            self._degree = np.zeros(stream.num_vertices, dtype=np.int64)
            # vertex -> partition set as flat multiword uint64 bitmask
            # rows, the layout the kernels consume directly
            self._kwords = np.zeros(
                stream.num_vertices * self._nw, dtype=np.uint64
            )
            return
        self._loads_list = [0.0] * k
        self._degree = np.zeros(stream.num_vertices, dtype=np.int64)
        # vertex -> partition set as one Python int bitmask per vertex:
        # arbitrary k, O(1) union/member tests, no per-edge numpy calls
        self._words = [0] * stream.num_vertices
        self._max_load = 0.0

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        if self._run_impl == "reference":
            return self._partition_chunk_reference(edges)
        if self._run_impl == "jit":
            return self._partition_chunk_jit(edges)
        m = edges.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        k = self.num_partitions
        loads = self._loads_list
        words = self._words
        lam, eps = self.lambda_bal, self.epsilon

        # -- vectorized exact precompute of the degree-driven g terms --
        # (decision-independent: ranks depend only on the edge ids, so the
        # whole chunk is computed before any placement decision is made)
        rank_u, rank_v = occurrence_ranks(edges, self._num_vertices)
        degree = self._degree
        du = degree[edges[:, 0]] + rank_u
        dv = degree[edges[:, 1]] + rank_v
        theta_u = du / (du + dv)
        gu_list = (1.0 + (1.0 - theta_u)).tolist()
        gv_list = (1.0 + theta_u).tolist()

        u_list = edges[:, 0].tolist()
        v_list = edges[:, 1].tolist()
        out = [0] * m
        max_load = self._max_load
        min_load = min(loads)
        nmin = loads.count(min_load)
        for i, (u, v, gu, gv) in enumerate(zip(u_list, v_list, gu_list, gv_list)):
            wu = words[u]
            wv = words[v]
            scale = lam / (eps + (max_load - min_load))
            w = wu | wv
            if w:
                # score only the member partitions (set bits of A(u)|A(v));
                # ascending bit order + strict > replicates the reference
                # first-maximum tie-break among members
                best_p = -1
                best_s = 0.0
                ww = w
                while ww:
                    b = ww & -ww
                    p = b.bit_length() - 1
                    ww ^= b
                    sc = scale * (max_load - loads[p])
                    if (wu >> p) & 1:
                        sc += gu
                    if (wv >> p) & 1:
                        sc += gv
                    if sc > best_s:
                        best_s = sc
                        best_p = p
                if best_s <= scale * (max_load - min_load):
                    # rare: a non-member's pure balance score could tie or
                    # beat the best member — fall back to the exact k-scan
                    best_p = 0
                    best_s = -1e300
                    for p in range(k):
                        sc = scale * (max_load - loads[p])
                        if (wu >> p) & 1:
                            sc += gu
                        if (wv >> p) & 1:
                            sc += gv
                        if sc > best_s:
                            best_s = sc
                            best_p = p
                p = best_p
            elif scale > 0.0:
                # no members: the argmax is the first least-loaded partition
                p = loads.index(min_load)
            else:
                # lambda_bal == 0 degenerate: every score is +0.0 and the
                # reference first-maximum scan picks partition 0
                p = 0
            out[i] = p
            old = loads[p]
            new = old + 1.0
            loads[p] = new
            if new > max_load:
                max_load = new
            if old == min_load:
                nmin -= 1
                if nmin == 0:
                    min_load = min(loads)
                    nmin = loads.count(min_load)
            bit = 1 << p
            words[u] = wu | bit
            words[v] = wv | bit
        self._max_load = max_load
        # chunk-end bulk degree update (the loop never reads `degree`
        # because the precomputed ranks already account for in-chunk edges)
        degree += np.bincount(edges.ravel(), minlength=self._num_vertices)
        return np.asarray(out, dtype=np.int64)

    def _partition_chunk_jit(self, edges: np.ndarray) -> np.ndarray:
        """Compiled-kernel chunk path: the reference k-scan in machine code."""
        m = edges.shape[0]
        out = np.empty(m, dtype=np.int64)
        if m == 0:
            return out
        self._backend.hdrf_chunk(
            np.ascontiguousarray(edges[:, 0]),
            np.ascontiguousarray(edges[:, 1]),
            self.num_partitions,
            self._nw,
            self.lambda_bal,
            self.epsilon,
            self._loads,
            self._degree,
            self._kwords,
            out,
        )
        return out

    def _partition_chunk_reference(self, edges: np.ndarray) -> np.ndarray:
        """Retained numpy-per-edge chunk loop (PR 1).

        One vectorized k-wide score computation per edge against the
        shared state tables; kept as the readable correctness oracle and
        as the baseline the lean core's >=5x bench floor is measured
        against.
        """
        loads, degree, placed = self._loads, self._degree, self._placed
        rows, unpack, place = placed.rows, placed.mask, placed.add
        lam, eps = self.lambda_bal, self.epsilon
        out = np.empty(edges.shape[0], dtype=np.int64)
        u_list = edges[:, 0].tolist()
        v_list = edges[:, 1].tolist()
        for i, (u, v) in enumerate(zip(u_list, v_list)):
            degree[u] += 1
            degree[v] += 1
            du, dv = int(degree[u]), int(degree[v])
            theta_u = du / (du + dv)
            gu = 1.0 + (1.0 - theta_u)
            gv = 1.0 + theta_u
            max_load = loads.max()
            scale = lam / (eps + (max_load - loads.min()))
            score = scale * (max_load - loads)
            score[unpack(rows[u])] += gu
            score[unpack(rows[v])] += gv
            best = int(np.argmax(score))
            out[i] = best
            loads[best] += 1.0
            place(u, best)
            place(v, best)
        return out

    def finish_chunks(self) -> np.ndarray:
        if self._run_impl == "reference":
            self._replica_entries = self._placed.count()
        elif self._run_impl == "jit":
            self._replica_entries = kernels.popcount(self._kwords)
        else:
            self._loads = np.asarray(self._loads_list, dtype=np.float64)
            self._replica_entries = sum(w.bit_count() for w in self._words)
        return np.empty(0, dtype=np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Partial-degree table + vertex->partition-set table (one 8-byte
        entry per replica, as in the reference hash-set implementation) +
        the k-entry load array.  Measured entries are used after a run."""
        entries = getattr(self, "_replica_entries", stream.num_vertices)
        return stream.num_vertices * 8 + entries * 8 + 8 * self.num_partitions
