"""HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).

The state-of-the-art one-pass heuristic the paper compares against.  For
each edge (u, v), HDRF scores every partition p as::

    C(p) = C_REP(p) + lambda_bal * C_BAL(p)
    C_REP(p) = g(u, p) + g(v, p)
    g(x, p)  = 1 + (1 - theta(x))   if p in A(x) else 0
    theta(x) = d(x) / (d(u) + d(v))      (partial degrees)
    C_BAL(p) = (max_load - load[p]) / (eps + max_load - min_load)

and assigns the edge to the argmax.  Favoring partitions that already hold
the *lower*-degree endpoint (the ``1 - theta`` term) replicates high-degree
vertices first — the right trade on power-law graphs.

This is the Table I "high quality / high time cost" representative: each
edge scores all k partitions against a global table, so runtime grows with
k (Figure 7) and state is the largest of the one-pass set (Figure 6).
"""

from __future__ import annotations

import numpy as np

from .._util import BitsetRows
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["HDRFPartitioner"]


class HDRFPartitioner(EdgePartitioner):
    """HDRF streaming vertex-cut partitioning.

    Parameters
    ----------
    lambda_bal:
        Balance weight (paper default 1.0; >1 pushes harder for balance).
    epsilon:
        Tie-break constant in the balance term.
    """

    name = "hdrf"
    supports_chunks = True

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        lambda_bal: float = 1.0,
        epsilon: float = 1.0,
    ) -> None:
        super().__init__(num_partitions, seed)
        if lambda_bal < 0:
            raise ValueError(f"lambda_bal must be >= 0, got {lambda_bal}")
        self.lambda_bal = float(lambda_bal)
        self.epsilon = float(epsilon)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        loads = np.zeros(k, dtype=np.float64)
        degree = np.zeros(stream.num_vertices, dtype=np.int64)
        placed: list[set[int]] = [set() for _ in range(stream.num_vertices)]
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        lam, eps = self.lambda_bal, self.epsilon
        loads_list = loads.tolist()
        # every edge scores all k partitions against the global state —
        # this per-edge O(k) scan is exactly the k-dependent time cost the
        # paper's Figure 7 measures for the heuristic methods
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            degree[u] += 1
            degree[v] += 1
            du, dv = int(degree[u]), int(degree[v])
            theta_u = du / (du + dv)
            gu = 1.0 + (1.0 - theta_u)
            gv = 1.0 + theta_u
            au, av = placed[u], placed[v]
            max_load = max(loads_list)
            denom = eps + (max_load - min(loads_list))
            scale = lam / denom
            best_p = 0
            best_score = -1e300
            for p in range(k):
                score = scale * (max_load - loads_list[p])
                if p in au:
                    score += gu
                if p in av:
                    score += gv
                if score > best_score:
                    best_score = score
                    best_p = p
            out[i] = best_p
            loads_list[best_p] += 1.0
            au.add(best_p)
            av.add(best_p)
        self._replica_entries = sum(len(s) for s in placed)
        return out

    # ------------------------------------------------------------------ #
    # chunk protocol
    # ------------------------------------------------------------------ #
    #
    # HDRF's global-state recurrence forces a per-edge decision order, but
    # the k-wide score scan inside it does not: the chunked path keeps the
    # edge loop and replaces the Python scan over partitions with one
    # vectorized score computation per edge.  Operation order is kept
    # identical to ``_assign`` (same float adds in the same sequence, and
    # argmax/strict-> both take the first maximum), so the two paths are
    # bit-identical.

    def begin_chunks(self, stream: EdgeStream) -> None:
        self._loads = np.zeros(self.num_partitions, dtype=np.float64)
        self._degree = np.zeros(stream.num_vertices, dtype=np.int64)
        # vertex -> partition set as packed uint64 bitset rows, 8x smaller
        # than a (n, k) boolean table
        self._placed = BitsetRows(stream.num_vertices, self.num_partitions)

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        loads, degree, placed = self._loads, self._degree, self._placed
        rows, unpack, place = placed.rows, placed.mask, placed.add
        lam, eps = self.lambda_bal, self.epsilon
        out = np.empty(edges.shape[0], dtype=np.int64)
        u_list = edges[:, 0].tolist()
        v_list = edges[:, 1].tolist()
        for i, (u, v) in enumerate(zip(u_list, v_list)):
            degree[u] += 1
            degree[v] += 1
            du, dv = int(degree[u]), int(degree[v])
            theta_u = du / (du + dv)
            gu = 1.0 + (1.0 - theta_u)
            gv = 1.0 + theta_u
            max_load = loads.max()
            scale = lam / (eps + (max_load - loads.min()))
            score = scale * (max_load - loads)
            score[unpack(rows[u])] += gu
            score[unpack(rows[v])] += gv
            best = int(np.argmax(score))
            out[i] = best
            loads[best] += 1.0
            place(u, best)
            place(v, best)
        return out

    def finish_chunks(self) -> np.ndarray:
        self._replica_entries = self._placed.count()
        return np.empty(0, dtype=np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        """Partial-degree table + vertex->partition-set table (one 8-byte
        entry per replica, as in the reference hash-set implementation) +
        the k-entry load array.  Measured entries are used after a run."""
        entries = getattr(self, "_replica_entries", stream.num_vertices)
        return stream.num_vertices * 8 + entries * 8 + 8 * self.num_partitions
