"""Vertex-cut streaming partitioners: the Table I competitor set."""

from .base import EdgePartitioner, PartitionAssignment
from .hashing import HashingPartitioner
from .dbh import DBHPartitioner
from .greedy import GreedyPartitioner
from .edgecut import EdgeCutAdapterPartitioner, FennelPartitioner, LdgPartitioner
from .grid import GridPartitioner
from .hdrf import HDRFPartitioner
from .mint import MintPartitioner
from .registry import PARTITIONERS, make_partitioner

__all__ = [
    "EdgePartitioner",
    "PartitionAssignment",
    "HashingPartitioner",
    "DBHPartitioner",
    "GreedyPartitioner",
    "HDRFPartitioner",
    "MintPartitioner",
    "GridPartitioner",
    "LdgPartitioner",
    "FennelPartitioner",
    "EdgeCutAdapterPartitioner",
    "PARTITIONERS",
    "make_partitioner",
]
