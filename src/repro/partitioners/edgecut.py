"""Edge-cut streaming partitioners from the paper's related work
(Section VII): LDG and FENNEL, plus the edge-cut -> vertex-cut adapter.

LDG (Stanton & Kliot, KDD'12) places each arriving *vertex* into the
partition holding most of its already-placed neighbors, weighted by the
remaining capacity: ``score(p) = |N(v) ∩ p| * (1 - |p| / C)``.

FENNEL (Tsourakakis et al., WSDM'14) uses the interpolated objective
``score(p) = |N(v) ∩ p| - alpha * gamma/2 * |p|^(gamma-1)`` with
``gamma = 1.5`` and ``alpha = sqrt(k) * m / n^1.5`` by default.

Both are *vertex* placement algorithms; to compare them on the vertex-cut
metrics, :class:`EdgeCutAdapterPartitioner` converts a vertex assignment
to an edge assignment the same way mini-METIS does: each edge goes to the
partition of its lower-degree endpoint (the high-degree endpoint is cut,
as the paper's own transformation rule does).  The paper cites exactly
this class of algorithms as the edge-cut lineage CLUGP's clustering pass
descends from.
"""

from __future__ import annotations

import numpy as np

from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = [
    "LdgPartitioner",
    "FennelPartitioner",
    "EdgeCutAdapterPartitioner",
]


class EdgeCutAdapterPartitioner(EdgePartitioner):
    """Base for edge-cut algorithms exposed behind the vertex-cut API.

    Subclasses implement :meth:`_place_vertices` returning one partition
    per vertex; the adapter then assigns each edge to its lower-degree
    endpoint's partition.
    """

    name = "edgecut-adapter"
    preferred_order = "natural"

    def _place_vertices(self, stream: EdgeStream) -> np.ndarray:
        raise NotImplementedError

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        part = self._place_vertices(stream)
        degrees = stream.degrees()
        cut_src = degrees[stream.src] >= degrees[stream.dst]
        return np.where(cut_src, part[stream.dst], part[stream.src]).astype(np.int64)

    # shared helper: stream vertices in first-appearance order with their
    # already-seen neighborhood, the standard one-pass vertex-stream model
    @staticmethod
    def _vertex_arrivals(stream: EdgeStream):
        """Yield ``(vertex, placed_neighbor_list)`` in first-seen order.

        The neighborhood contains only neighbors that arrived earlier,
        which is exactly the information a one-pass vertex-streaming
        partitioner has when the vertex must be placed.
        """
        n = stream.num_vertices
        seen = np.zeros(n, dtype=bool)
        neighbors: list[list[int]] = [[] for _ in range(n)]
        order: list[int] = []
        for u, v in zip(stream.src.tolist(), stream.dst.tolist()):
            for x in (u, v):
                if not seen[x]:
                    seen[x] = True
                    order.append(x)
            if u != v:
                neighbors[u].append(v)
                neighbors[v].append(u)
        arrived = np.zeros(n, dtype=bool)
        for v in order:
            arrived[v] = True
            yield v, [w for w in neighbors[v] if arrived[w] and w != v]

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # vertex -> partition table + k loads
        return stream.num_vertices * 8 + 8 * self.num_partitions


class LdgPartitioner(EdgeCutAdapterPartitioner):
    """Linear Deterministic Greedy (LDG) vertex placement.

    Parameters
    ----------
    capacity_slack:
        Capacity ``C = slack * n / k``; 1.0 is the standard setting.
    """

    name = "ldg"

    def __init__(self, num_partitions: int, seed: int = 0, capacity_slack: float = 1.0):
        super().__init__(num_partitions, seed)
        if capacity_slack <= 0:
            raise ValueError("capacity_slack must be positive")
        self.capacity_slack = float(capacity_slack)

    def _place_vertices(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        n = stream.num_vertices
        capacity = max(1.0, self.capacity_slack * n / k)
        part = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        scores = np.empty(k, dtype=np.float64)
        for v, placed_nbrs in self._vertex_arrivals(stream):
            scores[:] = 0.0
            for w in placed_nbrs:
                scores[part[w]] += 1.0
            penalty = 1.0 - sizes / capacity
            np.clip(penalty, 0.0, None, out=penalty)
            weighted = scores * penalty
            if weighted.max() <= 0.0:
                target = int(np.argmin(sizes))  # no useful neighbor signal
            else:
                target = int(np.argmax(weighted))
            part[v] = target
            sizes[target] += 1
        return part


class FennelPartitioner(EdgeCutAdapterPartitioner):
    """FENNEL one-pass vertex placement.

    Parameters
    ----------
    gamma:
        Cost-function exponent (paper default 1.5).
    alpha:
        Balance multiplier; ``None`` uses the paper's
        ``sqrt(k) * m / n**1.5``.
    """

    name = "fennel"

    def __init__(
        self,
        num_partitions: int,
        seed: int = 0,
        gamma: float = 1.5,
        alpha: float | None = None,
    ):
        super().__init__(num_partitions, seed)
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        self.gamma = float(gamma)
        self.alpha = alpha

    def _place_vertices(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        n = max(1, stream.num_vertices)
        m = max(1, stream.num_edges)
        alpha = (
            self.alpha
            if self.alpha is not None
            else np.sqrt(k) * m / n**1.5
        )
        part = np.full(stream.num_vertices, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        scores = np.empty(k, dtype=np.float64)
        g = self.gamma
        for v, placed_nbrs in self._vertex_arrivals(stream):
            scores[:] = 0.0
            for w in placed_nbrs:
                scores[part[w]] += 1.0
            cost = alpha * (g / 2.0) * np.power(sizes.astype(np.float64), g - 1.0)
            target = int(np.argmax(scores - cost))
            part[v] = target
            sizes[target] += 1
        return part
