"""Grid — PowerGraph's constrained 2D-hash vertex-cut partitioning.

Arrange the k partitions in a (near-)square grid; each vertex hashes to a
grid cell and its *constraint set* is that cell's row plus column.  An
edge is placed in the least-loaded partition of the intersection of its
endpoints' constraint sets (any row x column pair intersects, so the
intersection is never empty).  This caps every vertex's replication at
``2*sqrt(k) - 1`` — a hashing-family algorithm with a structural quality
guarantee, commonly used as a PowerGraph default and a natural extra
baseline between Hashing and DBH.
"""

from __future__ import annotations

import math

import numpy as np

from .._util import hash_to_partition
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["GridPartitioner"]


class GridPartitioner(EdgePartitioner):
    """Constrained 2D grid hashing.

    ``num_partitions`` need not be a perfect square: the grid has
    ``rows = floor(sqrt(k))`` rows and cells beyond ``k-1`` are unused
    (their row/column constraint sets simply skip them).
    """

    name = "grid"

    def _constraint_sets(self) -> list[np.ndarray]:
        k = self.num_partitions
        rows = max(1, int(math.isqrt(k)))
        cols = math.ceil(k / rows)
        sets: list[np.ndarray] = []
        for p in range(k):
            r, c = divmod(p, cols)
            row_members = [r * cols + j for j in range(cols) if r * cols + j < k]
            col_members = [i * cols + c for i in range(rows + 1) if i * cols + c < k]
            members = sorted(set(row_members) | set(col_members))
            sets.append(np.asarray(members, dtype=np.int64))
        return sets

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        k = self.num_partitions
        constraint = self._constraint_sets()
        cell = hash_to_partition(
            np.arange(stream.num_vertices, dtype=np.int64), k, seed=self.seed
        )
        loads = np.zeros(k, dtype=np.int64)
        out = np.empty(stream.num_edges, dtype=np.int64)
        src_list = stream.src.tolist()
        dst_list = stream.dst.tolist()
        # precompute pairwise intersections lazily (k^2 pairs, cached)
        inter_cache: dict[tuple[int, int], np.ndarray] = {}
        for i, (u, v) in enumerate(zip(src_list, dst_list)):
            cu, cv = int(cell[u]), int(cell[v])
            key = (cu, cv) if cu <= cv else (cv, cu)
            candidates = inter_cache.get(key)
            if candidates is None:
                candidates = np.intersect1d(
                    constraint[key[0]], constraint[key[1]], assume_unique=True
                )
                if candidates.size == 0:  # degenerate tiny-k layouts
                    candidates = np.asarray([cu], dtype=np.int64)
                inter_cache[key] = candidates
            target = int(candidates[np.argmin(loads[candidates])])
            out[i] = target
            loads[target] += 1
        return out

    def max_replication(self) -> int:
        """Structural replication cap: ``|row| + |col| - 1``."""
        sets = self._constraint_sets()
        return max(s.size for s in sets)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # vertex -> cell hash is recomputable; loads + constraint sets
        k = self.num_partitions
        return 8 * k + 16 * k  # loads + ~2*sqrt(k) members per partition
