"""Grid — PowerGraph's constrained 2D-hash vertex-cut partitioning.

Arrange the k partitions in a (near-)square grid; each vertex hashes to a
grid cell and its *constraint set* is that cell's row plus column.  An
edge may only be placed in the intersection of its endpoints' constraint
sets (any row x column pair intersects, so the intersection is never
empty); within the intersection the slot is picked by a second edge hash —
PowerGraph's ``grid``/constrained-random ingress.  This caps every
vertex's replication at ``2*sqrt(k) - 1`` — a hashing-family algorithm
with a structural quality guarantee, commonly used as a PowerGraph default
and a natural extra baseline between Hashing and DBH.

Like plain hashing the algorithm is stateless, so the chunked path groups
a ``(m, 2)`` edge chunk by its (cell_u, cell_v) key and resolves each
group with one vectorized candidate lookup + hash.
"""

from __future__ import annotations

import math

import numpy as np

from .._util import hash_pair_to_partition, hash_to_partition, stable_argsort_bounded
from ..graph.stream import EdgeStream
from .base import EdgePartitioner

__all__ = ["GridPartitioner"]

#: seed offset decorrelating the slot-choice hash from the cell hash
_CHOICE_SEED = 0x5BD1E995


class GridPartitioner(EdgePartitioner):
    """Constrained 2D grid hashing.

    ``num_partitions`` need not be a perfect square: the grid has
    ``rows = floor(sqrt(k))`` rows and cells beyond ``k-1`` are unused
    (their row/column constraint sets simply skip them).
    """

    name = "grid"
    supports_chunks = True

    def __init__(self, num_partitions: int, seed: int = 0) -> None:
        super().__init__(num_partitions, seed)
        self._intersections: dict[tuple[int, int], np.ndarray] = {}
        self._sets: list[np.ndarray] | None = None

    def _constraint_sets(self) -> list[np.ndarray]:
        if self._sets is not None:
            return self._sets
        k = self.num_partitions
        rows = max(1, int(math.isqrt(k)))
        cols = math.ceil(k / rows)
        sets: list[np.ndarray] = []
        for p in range(k):
            r, c = divmod(p, cols)
            row_members = [r * cols + j for j in range(cols) if r * cols + j < k]
            col_members = [i * cols + c for i in range(rows + 1) if i * cols + c < k]
            members = sorted(set(row_members) | set(col_members))
            sets.append(np.asarray(members, dtype=np.int64))
        self._sets = sets
        return sets

    def _candidates(self, cu: int, cv: int) -> np.ndarray:
        """Constraint-set intersection for a cell pair (cached)."""
        key = (cu, cv) if cu <= cv else (cv, cu)
        candidates = self._intersections.get(key)
        if candidates is None:
            constraint = self._constraint_sets()
            candidates = np.intersect1d(
                constraint[key[0]], constraint[key[1]], assume_unique=True
            )
            if candidates.size == 0:  # degenerate tiny-k layouts
                candidates = np.asarray([cu], dtype=np.int64)
            self._intersections[key] = candidates
        return candidates

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        return self._assign_chunks(stream, max(1, stream.num_edges))

    def begin_chunks(self, stream: EdgeStream) -> None:
        pass  # stateless (the intersection cache is derived, not state)

    def partition_chunk(self, edges: np.ndarray) -> np.ndarray:
        k = self.num_partitions
        u, v = edges[:, 0], edges[:, 1]
        cell_u = hash_to_partition(u, k, seed=self.seed)
        cell_v = hash_to_partition(v, k, seed=self.seed)
        key = cell_u * np.int64(k) + cell_v
        out = np.empty(u.size, dtype=np.int64)
        order = stable_argsort_bounded(key, k * k)
        key_sorted = key[order]
        starts = np.flatnonzero(np.r_[True, key_sorted[1:] != key_sorted[:-1]])
        bounds = np.r_[starts, key_sorted.size]
        for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            group = order[a:b]
            cu, cv = divmod(int(key_sorted[a]), k)
            candidates = self._candidates(cu, cv)
            slots = hash_pair_to_partition(
                u[group], v[group], candidates.size, seed=self.seed + _CHOICE_SEED
            )
            out[group] = candidates[slots]
        return out

    def _assign_per_edge(self, stream: EdgeStream) -> np.ndarray:
        k, seed = self.num_partitions, self.seed
        out = np.empty(stream.num_edges, dtype=np.int64)
        for i, (u, v) in enumerate(zip(stream.src.tolist(), stream.dst.tolist())):
            cu = int(hash_to_partition(u, k, seed=seed))
            cv = int(hash_to_partition(v, k, seed=seed))
            candidates = self._candidates(cu, cv)
            slot = int(
                hash_pair_to_partition(
                    u, v, candidates.size, seed=seed + _CHOICE_SEED
                )
            )
            out[i] = candidates[slot]
        return out

    def max_replication(self) -> int:
        """Structural replication cap: ``|row| + |col| - 1``."""
        sets = self._constraint_sets()
        return max(s.size for s in sets)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # stateless placement; only the ~2*sqrt(k)-member constraint sets
        k = self.num_partitions
        return 16 * k
