"""Shared low-level helpers: hashing, RNG handling, timing, validation.

These utilities are deliberately dependency-light (numpy only) and are used
across the graph substrate, the partitioners, and the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "splitmix64",
    "hash_to_partition",
    "hash_pair_to_partition",
    "stable_argsort_bounded",
    "group_by_bounded",
    "occurrence_ranks",
    "vertex_partition_pairs",
    "BitsetRows",
    "as_rng",
    "Timer",
    "StageTimes",
    "check_positive_int",
    "check_probability",
    "human_bytes",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """Deterministic 64-bit mixing function (SplitMix64 finalizer).

    Used as the hash behind the hashing-based partitioners so that results
    are reproducible across runs and platforms, unlike Python's salted
    ``hash``.  Accepts scalars or numpy arrays; always computes in uint64
    with wrap-around semantics.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        z = z ^ (z >> np.uint64(31))
    if np.ndim(x) == 0:
        return np.uint64(z)
    return z


def hash_to_partition(vertex_ids, num_partitions: int, seed: int = 0):
    """Map vertex ids to ``[0, num_partitions)`` with a seeded hash."""
    mixed = splitmix64(np.asarray(vertex_ids, dtype=np.uint64) ^ np.uint64(seed))
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def hash_pair_to_partition(src, dst, num_partitions: int, seed: int = 0):
    """Map edges (src, dst) to ``[0, num_partitions)`` with a seeded hash.

    This is the PowerGraph ``random`` edge placement: hash the edge itself.
    """
    s = np.asarray(src, dtype=np.uint64)
    d = np.asarray(dst, dtype=np.uint64)
    with np.errstate(over="ignore"):
        key = (s * np.uint64(0x9E3779B97F4A7C15)) ^ (d + np.uint64(0x632BE59BD9B4E019))
    mixed = splitmix64(key ^ np.uint64(seed))
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def stable_argsort_bounded(values: np.ndarray, upper: int) -> np.ndarray:
    """Stable argsort of non-negative integers known to be ``< upper``.

    numpy's ``kind="stable"`` dispatches to an O(m) radix sort only for
    <= 16-bit dtypes; int64 keys fall back to timsort.  Bounded keys
    (vertex ids, partition ids) can instead be decomposed into 16-bit
    digits and LSD-radix sorted in one or two stable passes — ~5x faster
    than the int64 path on typical chunk sizes.  Falls back to the plain
    stable argsort when ``upper`` exceeds 2**32.
    """
    values = np.asarray(values)
    if upper <= 1 << 16:
        return np.argsort(values.astype(np.uint16), kind="stable")
    if upper <= 1 << 32:
        order = np.argsort((values & 0xFFFF).astype(np.uint16), kind="stable")
        hi = (values >> np.int64(16)).astype(np.uint16)
        return order[np.argsort(hi[order], kind="stable")]
    return np.argsort(values, kind="stable")


def group_by_bounded(keys: np.ndarray, upper: int) -> tuple[np.ndarray, np.ndarray]:
    """Stable grouping of non-negative integer keys known to be < ``upper``.

    Returns ``(order, indptr)``: ``order[indptr[g]:indptr[g+1]]`` are the
    positions of key ``g`` in their original relative order.  One bounded
    radix argsort (:func:`stable_argsort_bounded`) plus a bincount
    prefix sum — the shared substrate behind partition-grouped edge
    layouts, message-buffer delivery, and replica routing tables.
    """
    keys = np.asarray(keys)
    order = stable_argsort_bounded(keys, upper)
    indptr = np.zeros(upper + 1, dtype=np.int64)
    np.cumsum(np.bincount(keys, minlength=upper), out=indptr[1:])
    return order, indptr


def occurrence_ranks(edges: np.ndarray, num_vertices: int) -> tuple[np.ndarray, np.ndarray]:
    """Within-chunk occurrence ranks of both endpoints of every edge.

    For an ``(m, 2)`` edge chunk, returns int64 arrays ``(rank_u, rank_v)``
    where ``rank_u[i]`` counts how often ``edges[i, 0]`` appears as *either*
    endpoint of edges ``0..i`` inclusive (so the first occurrence has rank
    1).  Self-loop edges count both of their own slots at once: both ranks
    report the count *after* the whole edge, matching a sequential consumer
    that bumps ``state[u]`` and ``state[v]`` before reading either.

    This is the exact, decision-independent part of a stateful streaming
    recurrence (e.g. HDRF's partial-degree reads), lifted out of the
    per-edge loop: computed with one bounded radix argsort
    (:func:`stable_argsort_bounded`) and a grouped cumulative count, it
    lets ``degree-at-edge-i = degree_at_chunk_entry + rank`` be evaluated
    for a whole chunk at once.
    """
    edges = np.asarray(edges, dtype=np.int64)
    m = edges.shape[0]
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    flat = edges.ravel()  # u0, v0, u1, v1, ... keeps slot order = stream order
    order = stable_argsort_bounded(flat, num_vertices)
    sorted_ids = flat[order]
    slots = np.arange(2 * m, dtype=np.int64)
    new_group = np.empty(2 * m, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_ids[1:] != sorted_ids[:-1]
    group_start = np.maximum.accumulate(np.where(new_group, slots, 0))
    rank = slots - group_start + 1
    # self-loop: the two slots of one edge are adjacent in the sorted order
    # (same id, consecutive slot positions); both must see the later rank
    sorted_pos = order >> 1
    pair = np.flatnonzero(
        np.concatenate(([False], (~new_group[1:]) & (sorted_pos[1:] == sorted_pos[:-1])))
    )
    rank[pair - 1] = rank[pair]
    per_slot = np.empty(2 * m, dtype=np.int64)
    per_slot[order] = rank
    return per_slot[0::2], per_slot[1::2]


def vertex_partition_pairs(src, dst, edge_partition, num_partitions: int):
    """Sparse (vertex, partition) incidence of a vertex-cut assignment.

    Returns ``(vertices, partitions, counts)`` — one row per distinct
    (vertex, partition) pair over both endpoints of every edge, sorted by
    vertex then partition, with the number of incident edges backing each
    pair.  This is the shared substrate behind replica counting, placement
    construction, and the cut-edge metric; keeping the flat-key encoding
    in one place keeps those paths consistent.
    """
    k = np.int64(num_partitions)
    keys = np.concatenate([src * k + edge_partition, dst * k + edge_partition])
    pairs, counts = np.unique(keys, return_counts=True)
    return pairs // k, (pairs % k).astype(np.int64), counts


class BitsetRows:
    """Packed per-row bit membership: ``(rows, ceil(bits / 64))`` uint64.

    The chunked HDRF/greedy paths track each vertex's partition set this
    way — 8x smaller than a boolean table — while still exposing k-length
    boolean masks for vectorized scoring.  ``rows`` is exposed directly so
    hot loops can do word-level set algebra (``rows[u] & rows[v]``).
    """

    def __init__(self, num_rows: int, num_bits: int) -> None:
        self.rows = np.zeros((num_rows, (num_bits + 63) // 64), dtype=np.uint64)
        self._word = np.arange(num_bits, dtype=np.int64) // 64
        self._shift = (np.arange(num_bits, dtype=np.int64) % 64).astype(np.uint64)
        self._bit_word = [b >> 6 for b in range(num_bits)]
        self._bit_mask = [np.uint64(1) << np.uint64(b & 63) for b in range(num_bits)]

    def mask(self, words: np.ndarray) -> np.ndarray:
        """Expand one packed row (or any word combination) to bool[bits]."""
        return ((words[self._word] >> self._shift) & np.uint64(1)).astype(bool)

    def masks(self, rows_idx) -> np.ndarray:
        """Bulk gather: ``(len(rows_idx), bits)`` boolean membership table.

        One fancy-index gather plus one broadcast shift, so callers that
        need the masks of a whole batch of rows (vectorized scoring, state
        cross-checks) never loop per row.
        """
        rows_idx = np.asarray(rows_idx, dtype=np.int64)
        gathered = self.rows[rows_idx]  # (n, words)
        return (
            (gathered[:, self._word] >> self._shift[None, :]) & np.uint64(1)
        ).astype(bool)

    def add(self, row: int, bit: int) -> None:
        self.rows[row, self._bit_word[bit]] |= self._bit_mask[bit]

    def add_many(self, rows_idx, bits) -> None:
        """Bulk scatter: set ``bits[i]`` in row ``rows_idx[i]`` for all i.

        Safe under duplicate rows (uses ``np.bitwise_or.at``), including
        the same (row, bit) pair appearing twice, and spans multiword
        layouts (bits >= 64) by scattering each word column separately.
        """
        rows_idx = np.asarray(rows_idx, dtype=np.int64)
        bits = np.asarray(bits, dtype=np.int64)
        if rows_idx.shape != bits.shape:
            raise ValueError(
                f"rows_idx and bits must have the same shape, "
                f"got {rows_idx.shape} vs {bits.shape}"
            )
        if rows_idx.size == 0:
            return
        num_bits = self._shift.size
        lo, hi = int(bits.min()), int(bits.max())
        if lo < 0 or hi >= num_bits:
            # match add()'s loud failure; the single-word fast path would
            # otherwise wrap an out-of-range bit into word 0 silently
            raise IndexError(f"bit {lo if lo < 0 else hi} out of range [0, {num_bits})")
        words = bits >> 6
        masks = np.uint64(1) << (bits & 63).astype(np.uint64)
        if self.rows.shape[1] == 1:
            np.bitwise_or.at(self.rows[:, 0], rows_idx, masks)
            return
        for w in np.unique(words):
            sel = words == w
            np.bitwise_or.at(self.rows[:, int(w)], rows_idx[sel], masks[sel])

    def count(self) -> int:
        """Total set bits across all rows."""
        return int(np.unpackbits(self.rows.view(np.uint8)).sum())


def as_rng(seed) -> np.random.Generator:
    """Coerce ``seed`` (None | int | Generator) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimes:
    """Accumulates named stage durations (seconds) for pipeline reporting.

    ``stages`` entries are *additive* work — they sum into :attr:`total`.
    ``walls`` entries are *non-additive* wall-clock readings (e.g. the
    critical path of concurrent workers); they are kept separate so a
    deployment's "slowest node" measurement never inflates the summed
    work total that single-machine comparisons rely on.
    ``counters`` holds integer event counts (retries, requeues, timeouts
    — the reliability layer's cost accounting) alongside the timings.
    ``overlaps`` records *hidden* work of a pipelined schedule: seconds of
    stage work that ran concurrently with another stage's wall (e.g. the
    coordinator folding summaries while slower shards still compute) plus
    per-worker busy/idle splits.  Overlap entries are diagnostics — they
    never feed :attr:`total` or :attr:`critical_path`, which stay the
    summed work and the longest measured wall respectively.
    """

    stages: dict = field(default_factory=dict)
    walls: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    overlaps: dict = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def add_wall(self, name: str, seconds: float) -> None:
        """Record a wall-clock reading; repeated adds keep the maximum."""
        self.walls[name] = max(self.walls.get(name, 0.0), seconds)

    def add_overlap(self, name: str, seconds: float) -> None:
        """Accumulate seconds of work hidden under another stage's wall."""
        self.overlaps[name] = self.overlaps.get(name, 0.0) + seconds

    def bump(self, name: str, count: int = 1) -> None:
        """Accumulate an integer event counter (no-op when ``count`` is 0)."""
        if count:
            self.counters[name] = self.counters.get(name, 0) + int(count)

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    @property
    def critical_path(self) -> float:
        """Deployment wall-clock: the longest recorded wall, else the
        summed stage total (a serial pipeline's critical path)."""
        if self.walls:
            return max(self.walls.values())
        return self.total

    def __getitem__(self, name: str) -> float:
        return self.stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self.stages


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return fvalue


def human_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")
