"""Shared low-level helpers: hashing, RNG handling, timing, validation.

These utilities are deliberately dependency-light (numpy only) and are used
across the graph substrate, the partitioners, and the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "splitmix64",
    "hash_to_partition",
    "hash_pair_to_partition",
    "stable_argsort_bounded",
    "vertex_partition_pairs",
    "BitsetRows",
    "as_rng",
    "Timer",
    "StageTimes",
    "check_positive_int",
    "check_probability",
    "human_bytes",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """Deterministic 64-bit mixing function (SplitMix64 finalizer).

    Used as the hash behind the hashing-based partitioners so that results
    are reproducible across runs and platforms, unlike Python's salted
    ``hash``.  Accepts scalars or numpy arrays; always computes in uint64
    with wrap-around semantics.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        z = z ^ (z >> np.uint64(31))
    if np.ndim(x) == 0:
        return np.uint64(z)
    return z


def hash_to_partition(vertex_ids, num_partitions: int, seed: int = 0):
    """Map vertex ids to ``[0, num_partitions)`` with a seeded hash."""
    mixed = splitmix64(np.asarray(vertex_ids, dtype=np.uint64) ^ np.uint64(seed))
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def hash_pair_to_partition(src, dst, num_partitions: int, seed: int = 0):
    """Map edges (src, dst) to ``[0, num_partitions)`` with a seeded hash.

    This is the PowerGraph ``random`` edge placement: hash the edge itself.
    """
    s = np.asarray(src, dtype=np.uint64)
    d = np.asarray(dst, dtype=np.uint64)
    with np.errstate(over="ignore"):
        key = (s * np.uint64(0x9E3779B97F4A7C15)) ^ (d + np.uint64(0x632BE59BD9B4E019))
    mixed = splitmix64(key ^ np.uint64(seed))
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def stable_argsort_bounded(values: np.ndarray, upper: int) -> np.ndarray:
    """Stable argsort of non-negative integers known to be ``< upper``.

    numpy's ``kind="stable"`` dispatches to an O(m) radix sort only for
    <= 16-bit dtypes; int64 keys fall back to timsort.  Bounded keys
    (vertex ids, partition ids) can instead be decomposed into 16-bit
    digits and LSD-radix sorted in one or two stable passes — ~5x faster
    than the int64 path on typical chunk sizes.  Falls back to the plain
    stable argsort when ``upper`` exceeds 2**32.
    """
    values = np.asarray(values)
    if upper <= 1 << 16:
        return np.argsort(values.astype(np.uint16), kind="stable")
    if upper <= 1 << 32:
        order = np.argsort((values & 0xFFFF).astype(np.uint16), kind="stable")
        hi = (values >> np.int64(16)).astype(np.uint16)
        return order[np.argsort(hi[order], kind="stable")]
    return np.argsort(values, kind="stable")


def vertex_partition_pairs(src, dst, edge_partition, num_partitions: int):
    """Sparse (vertex, partition) incidence of a vertex-cut assignment.

    Returns ``(vertices, partitions, counts)`` — one row per distinct
    (vertex, partition) pair over both endpoints of every edge, sorted by
    vertex then partition, with the number of incident edges backing each
    pair.  This is the shared substrate behind replica counting, placement
    construction, and the cut-edge metric; keeping the flat-key encoding
    in one place keeps those paths consistent.
    """
    k = np.int64(num_partitions)
    keys = np.concatenate([src * k + edge_partition, dst * k + edge_partition])
    pairs, counts = np.unique(keys, return_counts=True)
    return pairs // k, (pairs % k).astype(np.int64), counts


class BitsetRows:
    """Packed per-row bit membership: ``(rows, ceil(bits / 64))`` uint64.

    The chunked HDRF/greedy paths track each vertex's partition set this
    way — 8x smaller than a boolean table — while still exposing k-length
    boolean masks for vectorized scoring.  ``rows`` is exposed directly so
    hot loops can do word-level set algebra (``rows[u] & rows[v]``).
    """

    def __init__(self, num_rows: int, num_bits: int) -> None:
        self.rows = np.zeros((num_rows, (num_bits + 63) // 64), dtype=np.uint64)
        self._word = np.arange(num_bits, dtype=np.int64) // 64
        self._shift = (np.arange(num_bits, dtype=np.int64) % 64).astype(np.uint64)
        self._bit_word = [b >> 6 for b in range(num_bits)]
        self._bit_mask = [np.uint64(1) << np.uint64(b & 63) for b in range(num_bits)]

    def mask(self, words: np.ndarray) -> np.ndarray:
        """Expand one packed row (or any word combination) to bool[bits]."""
        return ((words[self._word] >> self._shift) & np.uint64(1)).astype(bool)

    def add(self, row: int, bit: int) -> None:
        self.rows[row, self._bit_word[bit]] |= self._bit_mask[bit]

    def count(self) -> int:
        """Total set bits across all rows."""
        return int(np.unpackbits(self.rows.view(np.uint8)).sum())


def as_rng(seed) -> np.random.Generator:
    """Coerce ``seed`` (None | int | Generator) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimes:
    """Accumulates named stage durations (seconds) for pipeline reporting."""

    stages: dict = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def __getitem__(self, name: str) -> float:
        return self.stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self.stages


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return fvalue


def human_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")
