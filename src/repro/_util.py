"""Shared low-level helpers: hashing, RNG handling, timing, validation.

These utilities are deliberately dependency-light (numpy only) and are used
across the graph substrate, the partitioners, and the benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "splitmix64",
    "hash_to_partition",
    "hash_pair_to_partition",
    "as_rng",
    "Timer",
    "StageTimes",
    "check_positive_int",
    "check_probability",
    "human_bytes",
]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """Deterministic 64-bit mixing function (SplitMix64 finalizer).

    Used as the hash behind the hashing-based partitioners so that results
    are reproducible across runs and platforms, unlike Python's salted
    ``hash``.  Accepts scalars or numpy arrays; always computes in uint64
    with wrap-around semantics.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
        z = z ^ (z >> np.uint64(31))
    if np.ndim(x) == 0:
        return np.uint64(z)
    return z


def hash_to_partition(vertex_ids, num_partitions: int, seed: int = 0):
    """Map vertex ids to ``[0, num_partitions)`` with a seeded hash."""
    mixed = splitmix64(np.asarray(vertex_ids, dtype=np.uint64) ^ np.uint64(seed))
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def hash_pair_to_partition(src, dst, num_partitions: int, seed: int = 0):
    """Map edges (src, dst) to ``[0, num_partitions)`` with a seeded hash.

    This is the PowerGraph ``random`` edge placement: hash the edge itself.
    """
    s = np.asarray(src, dtype=np.uint64)
    d = np.asarray(dst, dtype=np.uint64)
    with np.errstate(over="ignore"):
        key = (s * np.uint64(0x9E3779B97F4A7C15)) ^ (d + np.uint64(0x632BE59BD9B4E019))
    mixed = splitmix64(key ^ np.uint64(seed))
    return (mixed % np.uint64(num_partitions)).astype(np.int64)


def as_rng(seed) -> np.random.Generator:
    """Coerce ``seed`` (None | int | Generator) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimes:
    """Accumulates named stage durations (seconds) for pipeline reporting."""

    stages: dict = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def __getitem__(self, name: str) -> float:
        return self.stages[name]

    def __contains__(self, name: str) -> bool:
        return name in self.stages


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    fvalue = float(value)
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return fvalue


def human_bytes(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.2f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    raise AssertionError("unreachable")
