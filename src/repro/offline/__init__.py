"""Offline (non-streaming) partitioners: the METIS-style comparator."""

from .minimetis import MiniMetisPartitioner, multilevel_vertex_partition

__all__ = ["MiniMetisPartitioner", "multilevel_vertex_partition"]
