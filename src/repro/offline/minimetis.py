"""mini-METIS: an offline multilevel edge-cut partitioner.

The paper motivates streaming partitioning by the cost of offline
multilevel algorithms ("METIS requires more than 8.5 hours to partition a
1.5B-edge graph into 2 partitions", Section I).  To make that comparison
runnable, this module implements the classic multilevel scheme:

1. **coarsening** — repeated heavy-edge matching (match each vertex to its
   heaviest unmatched neighbor, contract pairs) until the graph is small;
2. **initial partitioning** — greedy balanced region growing over the
   coarsest graph (k seeds, lightest-partition-first frontier expansion);
3. **uncoarsening + refinement** — project the assignment back level by
   level, applying boundary Fiduccia-Mattheyses single-vertex moves that
   reduce edge cut subject to a vertex-weight balance constraint.

The result is an edge-cut (vertex -> partition) assignment, converted to
the library's vertex-cut interface by placing each edge in the partition
of its lower-degree endpoint (cut the high-degree vertex — the same rule
the streaming algorithms use).

This is deliberately a faithful *miniature*: one matching pass per level,
one FM sweep per level.  It reproduces METIS's characteristic profile —
good quality, whole-graph memory, super-streaming runtime — not its exact
cut numbers.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from ..graph.stream import EdgeStream
from ..partitioners.base import EdgePartitioner

__all__ = ["MiniMetisPartitioner", "multilevel_vertex_partition"]


def _build_weighted_adjacency(
    src: np.ndarray, dst: np.ndarray, n: int
) -> list[dict[int, int]]:
    """Undirected weighted adjacency (parallel edges merge into weights)."""
    adj: list[dict[int, int]] = [dict() for _ in range(n)]
    for u, v in zip(src.tolist(), dst.tolist()):
        if u == v:
            continue
        adj[u][v] = adj[u].get(v, 0) + 1
        adj[v][u] = adj[v].get(u, 0) + 1
    return adj


def _heavy_edge_matching(
    adj: list[dict[int, int]], weights: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Match each vertex to its heaviest unmatched neighbor.

    Returns ``match[v]`` = partner id (or v itself when unmatched).
    Visiting order is randomized, as in METIS, to avoid pathological chains.
    """
    n = len(adj)
    match = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n).tolist():
        if match[v] != -1:
            continue
        best, best_w = -1, -1
        for nbr, w in adj[v].items():
            if match[nbr] == -1 and nbr != v and w > best_w:
                best, best_w = nbr, w
        if best == -1:
            match[v] = v
        else:
            match[v] = best
            match[best] = v
    return match


def _contract(
    adj: list[dict[int, int]], weights: np.ndarray, match: np.ndarray
) -> tuple[list[dict[int, int]], np.ndarray, np.ndarray]:
    """Contract matched pairs; returns (coarse_adj, coarse_weights, map)."""
    n = len(adj)
    coarse_of = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_of[v] != -1:
            continue
        partner = int(match[v])
        coarse_of[v] = next_id
        if partner != v:
            coarse_of[partner] = next_id
        next_id += 1
    coarse_weights = np.zeros(next_id, dtype=np.int64)
    for v in range(n):
        coarse_weights[coarse_of[v]] += weights[v]
    coarse_adj: list[dict[int, int]] = [dict() for _ in range(next_id)]
    for v in range(n):
        cv = int(coarse_of[v])
        row = coarse_adj[cv]
        for nbr, w in adj[v].items():
            cn = int(coarse_of[nbr])
            if cn == cv:
                continue
            row[cn] = row.get(cn, 0) + w
    return coarse_adj, coarse_weights, coarse_of


def _initial_partition(
    adj: list[dict[int, int]],
    weights: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy region growing: expand k frontiers, lightest partition first."""
    n = len(adj)
    part = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(k, dtype=np.int64)
    order = np.argsort(-weights, kind="stable")
    frontiers: list[list[int]] = [[] for _ in range(k)]
    seeds = order[:k].tolist()
    for p, seed in enumerate(seeds):
        part[seed] = p
        loads[p] += weights[seed]
        frontiers[p].extend(adj[seed].keys())
    unassigned = int(n - len(seeds))
    pool = [v for v in order.tolist() if part[v] == -1]
    pool_idx = 0
    while unassigned > 0:
        p = int(np.argmin(loads))
        v = -1
        frontier = frontiers[p]
        while frontier:
            cand = frontier.pop()
            if part[cand] == -1:
                v = cand
                break
        if v == -1:
            while pool_idx < len(pool) and part[pool[pool_idx]] != -1:
                pool_idx += 1
            if pool_idx == len(pool):
                break
            v = pool[pool_idx]
        part[v] = p
        loads[p] += weights[v]
        frontiers[p].extend(adj[v].keys())
        unassigned -= 1
    return part


def _fm_refine(
    adj: list[dict[int, int]],
    weights: np.ndarray,
    part: np.ndarray,
    k: int,
    max_weight: float,
    sweeps: int = 1,
) -> np.ndarray:
    """Boundary FM: greedily move vertices to their best-gain partition."""
    loads = np.zeros(k, dtype=np.int64)
    for v, p in enumerate(part.tolist()):
        loads[p] += weights[v]
    for _ in range(sweeps):
        moved = 0
        for v in range(len(adj)):
            if not adj[v]:
                continue
            cur = int(part[v])
            gain_to = np.zeros(k, dtype=np.int64)
            for nbr, w in adj[v].items():
                gain_to[part[nbr]] += w
            internal = gain_to[cur]
            gain_to[cur] = -1  # exclude staying
            best = int(np.argmax(gain_to))
            if (
                gain_to[best] > internal
                and loads[best] + weights[v] <= max_weight
            ):
                loads[cur] -= weights[v]
                loads[best] += weights[v]
                part[v] = best
                moved += 1
        if moved == 0:
            break
    return part


def multilevel_vertex_partition(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    num_partitions: int,
    imbalance: float = 1.1,
    coarsest_size: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Multilevel edge-cut partitioning; returns vertex -> partition ids."""
    check_positive_int(num_partitions, "num_partitions")
    rng = as_rng(seed)
    k = num_partitions
    if coarsest_size is None:
        coarsest_size = max(64, 8 * k)
    adj = _build_weighted_adjacency(src, dst, num_vertices)
    weights = np.ones(num_vertices, dtype=np.int64)
    maps: list[np.ndarray] = []
    levels: list[tuple[list[dict[int, int]], np.ndarray]] = [(adj, weights)]
    while len(adj) > coarsest_size:
        match = _heavy_edge_matching(adj, weights, rng)
        coarse_adj, coarse_weights, coarse_of = _contract(adj, weights, match)
        if len(coarse_adj) >= len(adj):  # no progress (fully unmatched)
            break
        maps.append(coarse_of)
        adj, weights = coarse_adj, coarse_weights
        levels.append((adj, weights))
    total_weight = float(num_vertices)
    max_weight = imbalance * total_weight / k
    part = _initial_partition(adj, weights, k, rng)
    part = _fm_refine(adj, weights, part, k, max_weight)
    # project back up the hierarchy
    for coarse_of, (fine_adj, fine_weights) in zip(
        reversed(maps), reversed(levels[:-1])
    ):
        part = part[coarse_of]
        part = _fm_refine(fine_adj, fine_weights, part, k, max_weight)
    return part


class MiniMetisPartitioner(EdgePartitioner):
    """Offline multilevel partitioner behind the streaming interface.

    Loads the whole graph, runs :func:`multilevel_vertex_partition`, then
    converts the edge-cut result to vertex-cut by assigning each edge to
    the partition of its lower-degree endpoint.
    """

    name = "minimetis"
    passes = 1  # but loads the whole stream into memory first

    def __init__(self, num_partitions: int, seed: int = 0, imbalance: float = 1.1):
        super().__init__(num_partitions, seed)
        if imbalance < 1.0:
            raise ValueError("imbalance must be >= 1.0")
        self.imbalance = float(imbalance)

    def _assign(self, stream: EdgeStream) -> np.ndarray:
        part = multilevel_vertex_partition(
            stream.src,
            stream.dst,
            stream.num_vertices,
            self.num_partitions,
            imbalance=self.imbalance,
            seed=self.seed,
        )
        degrees = stream.degrees()
        cut_src = degrees[stream.src] >= degrees[stream.dst]
        return np.where(cut_src, part[stream.dst], part[stream.src]).astype(np.int64)

    def state_memory_bytes(self, stream: EdgeStream) -> int:
        # whole-graph adjacency in memory: the offline profile of Figure 6
        return stream.num_vertices * 8 + stream.num_edges * 24
