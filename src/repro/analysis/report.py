"""Comparison tables across partitioners — the harness behind every
"X vs competitors" figure in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import human_bytes
from ..graph.stream import EdgeStream
from ..partitioners.base import EdgePartitioner
from .metrics import QualityReport, quality_report

__all__ = [
    "ComparisonTable",
    "compare_partitioners",
    "distributed_modes_table",
    "format_table",
]


def format_table(headers: list[str], rows: list[tuple]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in str_rows)
    return "\n".join(lines)


@dataclass
class ComparisonTable:
    """Collected :class:`QualityReport` rows with a pretty printer."""

    title: str = ""
    reports: list[QualityReport] = field(default_factory=list)

    def add(self, report: QualityReport) -> None:
        self.reports.append(report)

    def best_by_replication(self) -> QualityReport:
        if not self.reports:
            raise ValueError("empty comparison table")
        return min(self.reports, key=lambda r: r.replication_factor)

    def get(self, algorithm: str) -> QualityReport:
        for report in self.reports:
            if report.algorithm == algorithm:
                return report
        raise KeyError(f"no report for {algorithm!r}")

    def __str__(self) -> str:
        headers = ["algorithm", "k", "RF", "balance", "mirrors", "time", "memory"]
        rows = [r.row() + (human_bytes(r.state_memory_bytes),) for r in self.reports]
        body = format_table(headers, rows)
        return f"{self.title}\n{body}" if self.title else body


def compare_partitioners(
    partitioners: list[EdgePartitioner],
    stream: EdgeStream,
    title: str = "",
    use_preferred_orders: bool = True,
    order_seed: int = 0,
) -> ComparisonTable:
    """Run every partitioner on ``stream`` and collect quality reports.

    With ``use_preferred_orders`` (default) each algorithm receives the
    stream in its best order, matching the paper's protocol (Section VI-A:
    random order for the one-pass heuristics/hashes, BFS/crawl order for
    Mint and CLUGP).  The natural order of ``stream`` is treated as the
    crawl order.
    """
    table = ComparisonTable(title=title)
    reordered: dict[str, EdgeStream] = {"natural": stream}
    for partitioner in partitioners:
        order = partitioner.preferred_order if use_preferred_orders else "natural"
        if order not in reordered:
            reordered[order] = stream.reordered(order, seed=order_seed)
        assignment = partitioner.partition(reordered[order])
        table.add(
            quality_report(
                assignment,
                algorithm=partitioner.name,
                state_memory_bytes=partitioner.state_memory_bytes(stream),
            )
        )
    return table


def distributed_modes_table(rows: list[dict], title: str = "") -> str:
    """Render ``DistributedResult.to_dict()`` rows as an aligned table.

    One row per (merge_mode, num_nodes) run: quality, the deployment
    wall, the summed node work, and — for merged-mode rows — the sync
    wire volume the protocol paid for it.
    """
    headers = ["mode", "nodes", "RF", "balance", "wall", "work", "sync wire"]
    body_rows = []
    for row in rows:
        merge = row.get("merge") or {}
        wire = merge.get("total_wire_bytes", 0)
        body_rows.append(
            (
                row["merge_mode"],
                row["num_nodes"],
                f"{row['replication_factor']:.4f}",
                f"{row['relative_balance']:.4f}",
                f"{row['wall_seconds']:.3f}s",
                f"{row['total_seconds']:.3f}s",
                human_bytes(wire) if wire else "-",
            )
        )
    body = format_table(headers, body_rows)
    return f"{title}\n{body}" if title else body
