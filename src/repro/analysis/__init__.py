"""Partition-quality metrics and comparison reporting."""

from .metrics import (
    replication_factor,
    relative_balance,
    partition_sizes,
    vertex_partition_counts,
    cut_edges,
    mirror_count,
    quality_report,
    QualityReport,
)
from .report import ComparisonTable, compare_partitioners
from .partition_stats import (
    PartitionSummary,
    communication_matrix,
    mirror_distribution,
    partition_summaries,
    vertex_balance,
)

__all__ = [
    "replication_factor",
    "relative_balance",
    "partition_sizes",
    "vertex_partition_counts",
    "cut_edges",
    "mirror_count",
    "quality_report",
    "QualityReport",
    "ComparisonTable",
    "compare_partitioners",
    "PartitionSummary",
    "communication_matrix",
    "mirror_distribution",
    "partition_summaries",
    "vertex_balance",
]
