"""Partition-quality metrics (Section II-B of the paper).

All functions accept a :class:`~repro.partitioners.PartitionAssignment`;
the fundamental quantities are vectorized over numpy so metric computation
stays cheap even when the partitioner itself is a Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..partitioners.base import PartitionAssignment

__all__ = [
    "partition_sizes",
    "vertex_partition_counts",
    "replication_factor",
    "relative_balance",
    "mirror_count",
    "cut_edges",
    "QualityReport",
    "quality_report",
]


def partition_sizes(assignment: PartitionAssignment) -> np.ndarray:
    """``|p_i|`` — edges per partition."""
    return assignment.partition_sizes()


def vertex_partition_counts(assignment: PartitionAssignment) -> np.ndarray:
    """``|P(v)|`` per vertex."""
    return assignment.vertex_partition_counts()


def replication_factor(assignment: PartitionAssignment) -> float:
    """``(1/|V'|) sum_v |P(v)|`` over active vertices (Equation 1)."""
    return assignment.replication_factor()


def relative_balance(assignment: PartitionAssignment) -> float:
    """``k * max|p_i| / |E|``; 1.0 is perfect balance."""
    return assignment.relative_balance()


def mirror_count(assignment: PartitionAssignment) -> int:
    """Total mirrors: ``sum_v (|P(v)| - 1)`` — one replica is the master."""
    counts = assignment.vertex_partition_counts()
    active = counts[counts > 0]
    return int(active.sum() - active.size)


def cut_edges(assignment: PartitionAssignment) -> int:
    """Edges whose endpoints do not share a partition *before* placement —
    i.e. edges that force at least one endpoint replica.

    An edge (u, v) assigned to p always puts both endpoints in p, so the
    "virtual edge" count of the paper equals the mirror count; this metric
    instead counts stream edges whose endpoint partition sets would differ
    without the edge's own contribution — a cheap upper-bound diagnostic.
    """
    k = assignment.num_partitions
    stream = assignment.stream
    # vertex -> bitmask of partitions (k <= 64 fast path, else set fallback)
    if k <= 64:
        masks = np.zeros(stream.num_vertices, dtype=np.uint64)
        np.bitwise_or.at(
            masks, stream.src, np.uint64(1) << assignment.edge_partition.astype(np.uint64)
        )
        np.bitwise_or.at(
            masks, stream.dst, np.uint64(1) << assignment.edge_partition.astype(np.uint64)
        )
        overlap = masks[stream.src] & masks[stream.dst]
        return int(np.count_nonzero(overlap == 0))
    vsets: list[set[int]] = [set() for _ in range(stream.num_vertices)]
    for (u, v), p in zip(
        zip(stream.src.tolist(), stream.dst.tolist()),
        assignment.edge_partition.tolist(),
    ):
        vsets[u].add(p)
        vsets[v].add(p)
    return sum(
        1
        for u, v in zip(stream.src.tolist(), stream.dst.tolist())
        if not (vsets[u] & vsets[v])
    )


@dataclass(frozen=True)
class QualityReport:
    """One-line quality summary of a partitioning run."""

    algorithm: str
    num_partitions: int
    num_vertices: int
    num_edges: int
    replication_factor: float
    relative_balance: float
    mirrors: int
    max_partition_edges: int
    min_partition_edges: int
    runtime_seconds: float
    state_memory_bytes: int = 0

    def row(self) -> tuple:
        """Tuple form used by the comparison table printer."""
        return (
            self.algorithm,
            self.num_partitions,
            f"{self.replication_factor:.3f}",
            f"{self.relative_balance:.3f}",
            self.mirrors,
            f"{self.runtime_seconds:.3f}s",
        )


def quality_report(
    assignment: PartitionAssignment,
    algorithm: str = "?",
    state_memory_bytes: int = 0,
) -> QualityReport:
    """Build a :class:`QualityReport` from an assignment."""
    sizes = assignment.partition_sizes()
    return QualityReport(
        algorithm=algorithm,
        num_partitions=assignment.num_partitions,
        num_vertices=int(assignment.stream.active_vertices().size),
        num_edges=assignment.stream.num_edges,
        replication_factor=assignment.replication_factor(),
        relative_balance=assignment.relative_balance(),
        mirrors=mirror_count(assignment),
        max_partition_edges=int(sizes.max()) if sizes.size else 0,
        min_partition_edges=int(sizes.min()) if sizes.size else 0,
        runtime_seconds=assignment.total_time(),
        state_memory_bytes=state_memory_bytes,
    )
