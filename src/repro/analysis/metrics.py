"""Partition-quality metrics (Section II-B of the paper).

All functions accept a :class:`~repro.partitioners.PartitionAssignment`;
the fundamental quantities are vectorized over numpy so metric computation
stays cheap even when the partitioner itself is a Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import BitsetRows, vertex_partition_pairs
from ..partitioners.base import PartitionAssignment

__all__ = [
    "partition_sizes",
    "vertex_partition_counts",
    "replication_factor",
    "relative_balance",
    "mirror_count",
    "cut_edges",
    "QualityReport",
    "quality_report",
]


def partition_sizes(assignment: PartitionAssignment) -> np.ndarray:
    """``|p_i|`` — edges per partition."""
    return assignment.partition_sizes()


def vertex_partition_counts(assignment: PartitionAssignment) -> np.ndarray:
    """``|P(v)|`` per vertex."""
    return assignment.vertex_partition_counts()


def replication_factor(assignment: PartitionAssignment) -> float:
    """``(1/|V'|) sum_v |P(v)|`` over active vertices (Equation 1)."""
    return assignment.replication_factor()


def relative_balance(assignment: PartitionAssignment) -> float:
    """``k * max|p_i| / |E|``; 1.0 is perfect balance."""
    return assignment.relative_balance()


def mirror_count(assignment: PartitionAssignment) -> int:
    """Total mirrors: ``sum_v (|P(v)| - 1)`` — one replica is the master."""
    counts = assignment.vertex_partition_counts()
    active = counts[counts > 0]
    return int(active.sum() - active.size)


def cut_edges(assignment: PartitionAssignment) -> int:
    """Edges whose endpoints share no partition once the edge's own
    placement is discounted — i.e. edges that forced a new endpoint
    replica instead of landing where both endpoints already lived.

    An edge (u, v) assigned to p trivially puts both endpoints in p, so
    the naive "endpoint partition sets intersect" test is always true;
    the meaningful question is whether they intersect *without* this
    edge's contribution.  Vertices are summarized as multi-word partition
    bitmasks (``ceil(k / 64)`` uint64 words each), so the metric stays
    fully vectorized for any k.
    """
    k = assignment.num_partitions
    stream = assignment.stream
    if stream.num_edges == 0:
        return 0
    part = assignment.edge_partition
    word = part // np.int64(64)
    bit = np.uint64(1) << (part % np.int64(64)).astype(np.uint64)
    # per-(vertex, partition) incidence counts: a partition survives the
    # "without this edge" discount iff >= 2 incident edges back it
    pair_vertex, pair_part, counts = vertex_partition_pairs(
        stream.src, stream.dst, part, k
    )
    placed = BitsetRows(stream.num_vertices, k)
    placed.add_many(pair_vertex, pair_part)
    masks = placed.rows
    backed = counts >= 2
    placed2 = BitsetRows(stream.num_vertices, k)
    placed2.add_many(pair_vertex[backed], pair_part[backed])
    masks2 = placed2.rows
    degrees = stream.degrees()
    # chunk the (edges, words) intersection to bound temporary memory
    cut = 0
    chunk = 1 << 18
    for start in range(0, stream.num_edges, chunk):
        stop = start + chunk
        u = stream.src[start:stop]
        v = stream.dst[start:stop]
        w = word[start:stop]
        b = bit[start:stop]
        rows = np.arange(u.size)
        inter = masks[u] & masks[v]
        # the edge's own partition counts only if both endpoints hold it
        # through at least one other edge
        own = masks2[u, w] & masks2[v, w] & b
        inter[rows, w] = (inter[rows, w] & ~b) | own
        cut_mask = ~inter.any(axis=1)
        # self-loops double-count their own (u, p) pair, so decide them by
        # degree: cut iff the loop is the vertex's only incident edge
        loops = u == v
        if loops.any():
            cut_mask[loops] = degrees[u[loops]] == 2
        cut += int(np.count_nonzero(cut_mask))
    return cut


@dataclass(frozen=True)
class QualityReport:
    """One-line quality summary of a partitioning run."""

    algorithm: str
    num_partitions: int
    num_vertices: int
    num_edges: int
    replication_factor: float
    relative_balance: float
    mirrors: int
    max_partition_edges: int
    min_partition_edges: int
    runtime_seconds: float
    state_memory_bytes: int = 0

    def row(self) -> tuple:
        """Tuple form used by the comparison table printer."""
        return (
            self.algorithm,
            self.num_partitions,
            f"{self.replication_factor:.3f}",
            f"{self.relative_balance:.3f}",
            self.mirrors,
            f"{self.runtime_seconds:.3f}s",
        )


def quality_report(
    assignment: PartitionAssignment,
    algorithm: str = "?",
    state_memory_bytes: int = 0,
) -> QualityReport:
    """Build a :class:`QualityReport` from an assignment."""
    sizes = assignment.partition_sizes()
    return QualityReport(
        algorithm=algorithm,
        num_partitions=assignment.num_partitions,
        num_vertices=int(assignment.stream.active_vertices().size),
        num_edges=assignment.stream.num_edges,
        replication_factor=assignment.replication_factor(),
        relative_balance=assignment.relative_balance(),
        mirrors=mirror_count(assignment),
        max_partition_edges=int(sizes.max()) if sizes.size else 0,
        min_partition_edges=int(sizes.min()) if sizes.size else 0,
        runtime_seconds=assignment.total_time(),
        state_memory_bytes=state_memory_bytes,
    )
