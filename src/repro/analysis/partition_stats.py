"""Deeper per-partition diagnostics beyond the two headline metrics.

Used by the examples and the design-choice ablation bench to explain *why*
a partitioning is good: where the mirrors sit, how synchronization traffic
distributes across node pairs, and how vertex (not just edge) load is
balanced — the quantities a PowerGraph operator would actually look at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..partitioners.base import PartitionAssignment
from ..system.placement import build_placement

__all__ = [
    "communication_matrix",
    "vertex_balance",
    "mirror_distribution",
    "PartitionSummary",
    "partition_summaries",
]


def communication_matrix(assignment: PartitionAssignment) -> np.ndarray:
    """``M[i, j]`` = sync messages partition i sends to partition j per
    superstep (i != j): every mirror in i sends its accumulator to its
    master's partition j, and receives the updated value back (counted in
    ``M[j, i]``).
    """
    placement = build_placement(assignment)
    k = assignment.num_partitions
    stream = assignment.stream
    matrix = np.zeros((k, k), dtype=np.int64)
    # replica presence per (vertex, partition)
    keys = np.concatenate(
        [
            stream.src * np.int64(k) + assignment.edge_partition,
            stream.dst * np.int64(k) + assignment.edge_partition,
        ]
    )
    present = np.unique(keys)
    vertices = (present // k).astype(np.int64)
    partitions = (present % k).astype(np.int64)
    masters = placement.master[vertices]
    mirror_mask = partitions != masters
    np.add.at(matrix, (partitions[mirror_mask], masters[mirror_mask]), 1)
    return matrix


def vertex_balance(assignment: PartitionAssignment) -> float:
    """``k * max(replicas hosted by a partition) / total replicas`` — the
    vertex-side analogue of the relative load balance."""
    placement = build_placement(assignment)
    hosted = placement.masters_per_partition + placement.mirrors_per_partition
    total = hosted.sum()
    if total == 0:
        return 1.0
    return float(assignment.num_partitions * hosted.max() / total)


def mirror_distribution(assignment: PartitionAssignment) -> np.ndarray:
    """Histogram of ``|P(v)|`` over active vertices: entry r counts
    vertices replicated into exactly r partitions."""
    counts = assignment.vertex_partition_counts()
    active = counts[counts > 0]
    return np.bincount(active, minlength=assignment.num_partitions + 1)


@dataclass(frozen=True)
class PartitionSummary:
    """Per-partition occupancy row."""

    partition: int
    edges: int
    masters: int
    mirrors: int

    @property
    def replicas(self) -> int:
        return self.masters + self.mirrors


def partition_summaries(assignment: PartitionAssignment) -> list[PartitionSummary]:
    """One :class:`PartitionSummary` per partition."""
    placement = build_placement(assignment)
    sizes = assignment.partition_sizes()
    return [
        PartitionSummary(
            partition=p,
            edges=int(sizes[p]),
            masters=int(placement.masters_per_partition[p]),
            mirrors=int(placement.mirrors_per_partition[p]),
        )
        for p in range(assignment.num_partitions)
    ]
