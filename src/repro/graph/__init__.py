"""Graph substrate: directed graphs, edge streams, I/O, generators, datasets."""

from .digraph import DiGraph
from .stream import EdgeStream, StreamOrder
from .generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_configuration_graph,
    rmat_graph,
    star_graph,
    web_crawl_graph,
)
from .datasets import DATASETS, load_dataset
from .sampling import sample_edges, bfs_ball
from . import io, properties

__all__ = [
    "DiGraph",
    "EdgeStream",
    "StreamOrder",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "planted_partition_graph",
    "powerlaw_configuration_graph",
    "rmat_graph",
    "star_graph",
    "web_crawl_graph",
    "DATASETS",
    "load_dataset",
    "sample_edges",
    "bfs_ball",
    "io",
    "properties",
]
