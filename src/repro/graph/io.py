"""Graph persistence: edge-list text, compressed npz binary, METIS format.

Web-graph corpora ship as edge lists (SNAP style) or METIS adjacency files;
this module reads and writes both plus a fast ``.npz`` binary used by the
benchmark harness to cache generated stand-in datasets.

All readers are hardened against hostile inputs (PR 8): malformed rows
raise typed :class:`~repro.reliability.ingest.IngestError` subclasses in
``strict`` mode or are dropped-and-counted in ``lenient`` mode, and the
binary formats detect truncation (a torn write, a full disk) instead of
returning a silently short graph.  :func:`write_edges_binary` /
:func:`read_edges_binary` add a raw length-framed, CRC-checked edge dump
for feeds where npz's zip container is too slow.
"""

from __future__ import annotations

import os
import struct
import zipfile
import zlib

import numpy as np

from ..reliability.ingest import (
    DropReport,
    MalformedEdgeError,
    TruncatedPayloadError,
    _check_mode,
    sanitize_edges,
)
from .digraph import DiGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "write_npz",
    "read_npz",
    "write_edges_binary",
    "read_edges_binary",
    "write_metis",
    "read_metis",
]

_EDGES_MAGIC = b"CLUGPED1"
_EDGES_HEADER = struct.Struct("<8sqq")  # magic, num_edges, num_vertices
_EDGES_TRAILER = struct.Struct("<I")  # crc32 of the endpoint body


def write_edgelist(graph: DiGraph, path: str | os.PathLike, comment: str = "") -> None:
    """Write a whitespace-separated ``u v`` edge list (SNAP style)."""
    with open(path, "w", encoding="ascii") as f:
        if comment:
            for line in comment.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# vertices {graph.num_vertices} edges {graph.num_edges}\n")
        np.savetxt(f, graph.edges(), fmt="%d")


def read_edgelist(
    path: str | os.PathLike,
    num_vertices: int | None = None,
    mode: str = "strict",
    report: DropReport | None = None,
) -> DiGraph:
    """Read a ``u v`` edge list; ``#``-prefixed lines are comments.

    A ``# vertices N edges M`` header (as written by :func:`write_edgelist`)
    is honored so isolated trailing vertices survive a round trip.

    ``strict`` (default) raises :class:`MalformedEdgeError` naming the
    first offending line; ``lenient`` drops unparseable/negative rows and
    counts them per reason in ``report`` (pass a
    :class:`~repro.reliability.ingest.DropReport` to collect them).
    """
    _check_mode(mode)
    if report is None:
        report = DropReport()
    header_vertices = None
    src_list: list[int] = []
    dst_list: list[int] = []
    with open(path, "r", encoding="ascii", errors="replace") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].split()
                if len(tokens) >= 4 and tokens[0] == "vertices" and tokens[2] == "edges":
                    try:
                        header_vertices = int(tokens[1])
                    except ValueError:
                        raise MalformedEdgeError(
                            f"{path}:{lineno}: bad vertex count in header: {line!r}"
                        ) from None
                continue
            parts = line.split()
            try:
                if len(parts) < 2:
                    raise ValueError
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                if mode == "strict":
                    raise MalformedEdgeError(
                        f"{path}:{lineno}: malformed edge line: {line!r}"
                    ) from None
                report.bump("malformed", 1)
                continue
            src_list.append(u)
            dst_list.append(v)
    n = num_vertices if num_vertices is not None else header_vertices
    try:
        src_arr = np.asarray(src_list, dtype=np.int64)
        dst_arr = np.asarray(dst_list, dtype=np.int64)
    except OverflowError:
        # a textual id past int64 — let the sanitizer's per-element path
        # turn it into a typed error / counted drop instead of a traceback
        src_arr = np.asarray(src_list, dtype=object)
        dst_arr = np.asarray(dst_list, dtype=object)
    src, dst, clean = sanitize_edges(src_arr, dst_arr, num_vertices=n, mode=mode)
    report.merge(clean)
    return DiGraph(src, dst, n)


def write_npz(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write the graph as a compressed numpy archive."""
    np.savez_compressed(
        path,
        src=graph.src,
        dst=graph.dst,
        num_vertices=np.int64(graph.num_vertices),
    )


def read_npz(path: str | os.PathLike) -> DiGraph:
    """Read a graph written by :func:`write_npz`.

    A truncated or otherwise undecodable archive (zip central directory
    lives at the *end* of the file, so truncation is the common failure)
    raises :class:`TruncatedPayloadError` instead of a zipfile traceback.
    """
    try:
        with np.load(path) as data:
            src = np.asarray(data["src"])
            dst = np.asarray(data["dst"])
            n = int(data["num_vertices"])
    except (ValueError, KeyError, OSError, EOFError, zipfile.BadZipFile) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise TruncatedPayloadError(
            f"{path}: corrupt or truncated npz archive: {exc}"
        ) from exc
    return DiGraph(src, dst, n)


def write_edges_binary(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write a raw length-framed, CRC-checked binary edge dump.

    Layout: an 8-byte magic + declared edge/vertex counts, the edges as
    little-endian int64 ``(u, v)`` pairs in stream order (row-major, so a
    truncated file still holds a prefix of complete edges), and a CRC-32
    trailer over the edge body.  No compression — this is the fast
    interchange format for service feeds; :func:`read_edges_binary`
    detects truncation exactly.
    """
    edges = np.empty((graph.num_edges, 2), dtype="<i8")
    edges[:, 0] = graph.src
    edges[:, 1] = graph.dst
    body = edges.tobytes()
    with open(path, "wb") as f:
        f.write(_EDGES_HEADER.pack(_EDGES_MAGIC, graph.num_edges, graph.num_vertices))
        f.write(body)
        f.write(_EDGES_TRAILER.pack(zlib.crc32(body)))


def read_edges_binary(
    path: str | os.PathLike,
    mode: str = "strict",
    report: DropReport | None = None,
) -> DiGraph:
    """Read a graph written by :func:`write_edges_binary`.

    ``strict`` raises :class:`TruncatedPayloadError` when the file ends
    mid-record or the CRC disagrees; ``lenient`` keeps the longest prefix
    of complete edges that the declared count allows and counts the
    missing rows in ``report`` (the CRC cannot be checked on a short
    body, so lenient reads of torn files trade integrity for liveness —
    exactly the operator call the mode encodes).
    """
    _check_mode(mode)
    if report is None:
        report = DropReport()
    with open(path, "rb") as f:
        raw = f.read()
    if len(raw) < _EDGES_HEADER.size:
        raise TruncatedPayloadError(f"{path}: truncated header")
    magic, m, n = _EDGES_HEADER.unpack_from(raw, 0)
    if magic != _EDGES_MAGIC:
        raise MalformedEdgeError(f"{path}: bad magic {magic!r}")
    if m < 0 or n < 0:
        raise MalformedEdgeError(f"{path}: negative count in header (m={m}, n={n})")
    body_start = _EDGES_HEADER.size
    body_end = body_start + 16 * m
    if body_end + _EDGES_TRAILER.size > len(raw):
        if mode == "strict":
            raise TruncatedPayloadError(
                f"{path}: declares {m} edges but holds "
                f"{max(0, len(raw) - body_start)} body bytes of {16 * m}"
            )
        avail = max(0, len(raw) - body_start)
        kept = min(m, avail // 16)
        report.bump("truncated", m - kept)
        pairs = np.frombuffer(
            raw, dtype="<i8", count=2 * kept, offset=body_start
        ).reshape(kept, 2)
        src, dst = pairs[:, 0].copy(), pairs[:, 1].copy()
    else:
        body = raw[body_start:body_end]
        (crc,) = _EDGES_TRAILER.unpack_from(raw, body_end)
        if zlib.crc32(body) != crc:
            raise TruncatedPayloadError(f"{path}: CRC mismatch (corrupt body)")
        pairs = np.frombuffer(body, dtype="<i8", count=2 * m).reshape(m, 2)
        src, dst = pairs[:, 0].copy(), pairs[:, 1].copy()
    src, dst, clean = sanitize_edges(src, dst, num_vertices=n, mode=mode)
    report.merge(clean)
    return DiGraph(src, dst, n)


def write_metis(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write the undirected simplification in METIS adjacency format.

    METIS files are 1-indexed, undirected, and disallow self-loops;
    reciprocal directed edges collapse to one undirected edge.
    """
    n = graph.num_vertices
    neighbor_sets: list[set[int]] = [set() for _ in range(n)]
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u == v:
            continue
        neighbor_sets[u].add(v)
        neighbor_sets[v].add(u)
    num_undirected = sum(len(s) for s in neighbor_sets) // 2
    with open(path, "w", encoding="ascii") as f:
        f.write(f"{n} {num_undirected}\n")
        for u in range(n):
            f.write(" ".join(str(v + 1) for v in sorted(neighbor_sets[u])) + "\n")


def read_metis(path: str | os.PathLike) -> DiGraph:
    """Read a METIS adjacency file as a digraph with both edge directions."""
    with open(path, "r", encoding="ascii") as f:
        lines = [ln for ln in (raw.strip() for raw in f) if ln and not ln.startswith("%")]
    if not lines:
        raise ValueError("empty METIS file")
    header = lines[0].split()
    n, m = int(header[0]), int(header[1])
    if len(lines) - 1 != n:
        raise ValueError(f"expected {n} adjacency lines, found {len(lines) - 1}")
    src_list: list[int] = []
    dst_list: list[int] = []
    for u, line in enumerate(lines[1:]):
        for token in line.split():
            v = int(token) - 1
            if u < v:  # emit each undirected edge once, in both directions
                src_list.append(u)
                dst_list.append(v)
                src_list.append(v)
                dst_list.append(u)
    graph = DiGraph(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        n,
    )
    if graph.num_edges != 2 * m:
        raise ValueError(
            f"METIS header declares {m} edges but file contains {graph.num_edges // 2}"
        )
    return graph
