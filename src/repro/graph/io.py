"""Graph persistence: edge-list text, compressed npz binary, METIS format.

Web-graph corpora ship as edge lists (SNAP style) or METIS adjacency files;
this module reads and writes both plus a fast ``.npz`` binary used by the
benchmark harness to cache generated stand-in datasets.
"""

from __future__ import annotations

import os

import numpy as np

from .digraph import DiGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "write_npz",
    "read_npz",
    "write_metis",
    "read_metis",
]


def write_edgelist(graph: DiGraph, path: str | os.PathLike, comment: str = "") -> None:
    """Write a whitespace-separated ``u v`` edge list (SNAP style)."""
    with open(path, "w", encoding="ascii") as f:
        if comment:
            for line in comment.splitlines():
                f.write(f"# {line}\n")
        f.write(f"# vertices {graph.num_vertices} edges {graph.num_edges}\n")
        np.savetxt(f, graph.edges(), fmt="%d")


def read_edgelist(path: str | os.PathLike, num_vertices: int | None = None) -> DiGraph:
    """Read a ``u v`` edge list; ``#``-prefixed lines are comments.

    A ``# vertices N edges M`` header (as written by :func:`write_edgelist`)
    is honored so isolated trailing vertices survive a round trip.
    """
    header_vertices = None
    src_list: list[int] = []
    dst_list: list[int] = []
    with open(path, "r", encoding="ascii") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                tokens = line[1:].split()
                if len(tokens) >= 4 and tokens[0] == "vertices" and tokens[2] == "edges":
                    header_vertices = int(tokens[1])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
    n = num_vertices if num_vertices is not None else header_vertices
    return DiGraph(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        n,
    )


def write_npz(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write the graph as a compressed numpy archive."""
    np.savez_compressed(
        path,
        src=graph.src,
        dst=graph.dst,
        num_vertices=np.int64(graph.num_vertices),
    )


def read_npz(path: str | os.PathLike) -> DiGraph:
    """Read a graph written by :func:`write_npz`."""
    with np.load(path) as data:
        return DiGraph(data["src"], data["dst"], int(data["num_vertices"]))


def write_metis(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write the undirected simplification in METIS adjacency format.

    METIS files are 1-indexed, undirected, and disallow self-loops;
    reciprocal directed edges collapse to one undirected edge.
    """
    n = graph.num_vertices
    neighbor_sets: list[set[int]] = [set() for _ in range(n)]
    for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
        if u == v:
            continue
        neighbor_sets[u].add(v)
        neighbor_sets[v].add(u)
    num_undirected = sum(len(s) for s in neighbor_sets) // 2
    with open(path, "w", encoding="ascii") as f:
        f.write(f"{n} {num_undirected}\n")
        for u in range(n):
            f.write(" ".join(str(v + 1) for v in sorted(neighbor_sets[u])) + "\n")


def read_metis(path: str | os.PathLike) -> DiGraph:
    """Read a METIS adjacency file as a digraph with both edge directions."""
    with open(path, "r", encoding="ascii") as f:
        lines = [ln for ln in (raw.strip() for raw in f) if ln and not ln.startswith("%")]
    if not lines:
        raise ValueError("empty METIS file")
    header = lines[0].split()
    n, m = int(header[0]), int(header[1])
    if len(lines) - 1 != n:
        raise ValueError(f"expected {n} adjacency lines, found {len(lines) - 1}")
    src_list: list[int] = []
    dst_list: list[int] = []
    for u, line in enumerate(lines[1:]):
        for token in line.split():
            v = int(token) - 1
            if u < v:  # emit each undirected edge once, in both directions
                src_list.append(u)
                dst_list.append(v)
                src_list.append(v)
                dst_list.append(u)
    graph = DiGraph(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        n,
    )
    if graph.num_edges != 2 * m:
        raise ValueError(
            f"METIS header declares {m} edges but file contains {graph.num_edges // 2}"
        )
    return graph
