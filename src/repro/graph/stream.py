"""The edge-streaming graph model (Definition 1 of the paper).

A :class:`EdgeStream` is an ordered sequence of directed edges together with
the vertex-id space.  The paper's algorithms are defined over streams, not
graphs: CLUGP makes three passes, the one-pass baselines a single pass.

The paper assumes web-graph streams arrive in BFS order ("most real web
graphs are formulated and crawled in BFS order", Section II) and evaluates
the baselines under their best orders (random).  :class:`StreamOrder`
captures the supported orders.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .._util import as_rng
from ..reliability.ingest import DropReport, VertexRangeError, sanitize_edges
from .digraph import DiGraph

__all__ = ["StreamOrder", "EdgeStream"]


class StreamOrder(str, Enum):
    """Supported edge arrival orders."""

    NATURAL = "natural"  # as stored in the graph
    RANDOM = "random"  # uniform shuffle
    BFS = "bfs"  # edges sorted by BFS discovery of their source vertex
    DFS = "dfs"  # edges sorted by DFS discovery of their source vertex


class EdgeStream:
    """An ordered edge sequence over a fixed vertex-id space.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays in arrival order.
    num_vertices:
        Size of the vertex-id space.

    The stream supports numpy-style bulk access (``stream.src``), chunked
    iteration (:meth:`chunks` / :meth:`batches`), and per-edge iteration
    (:meth:`__iter__`).  The chunked forms are the hot path: partitioners
    consume ``(chunk_size, 2)`` int64 arrays so per-edge interpreter
    overhead never touches the ingest loop.  Algorithms that need multiple
    passes simply iterate again; the arrays are immutable by convention.
    """

    def __init__(self, src, dst, num_vertices: int) -> None:
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src/dst must be 1-D arrays of equal length")
        self.num_vertices = int(num_vertices)
        if self.src.size:
            top = int(max(self.src.max(), self.dst.max()))
            if top >= self.num_vertices:
                raise VertexRangeError(
                    f"vertex id {top} out of range for num_vertices={num_vertices}"
                )
            if int(min(self.src.min(), self.dst.min())) < 0:
                raise VertexRangeError("vertex ids must be non-negative")

    # ------------------------------------------------------------------ #

    @classmethod
    def sanitized(
        cls,
        src,
        dst,
        num_vertices: int,
        mode: str = "lenient",
    ) -> tuple["EdgeStream", DropReport]:
        """Build a stream from untrusted columns; returns it + drop counts.

        Routes through :func:`~repro.reliability.ingest.sanitize_edges`:
        ``strict`` raises the typed error of the first bad row, ``lenient``
        (the default here — this constructor exists for untrusted feeds)
        drops bad rows and counts them per reason in the
        :class:`~repro.reliability.ingest.DropReport`.
        """
        u, v, report = sanitize_edges(src, dst, num_vertices=num_vertices, mode=mode)
        return cls(u, v, num_vertices), report

    @classmethod
    def from_graph(
        cls,
        graph: DiGraph,
        order: StreamOrder | str = StreamOrder.NATURAL,
        seed=None,
        source: int | None = None,
    ) -> "EdgeStream":
        """Build a stream from a graph in the requested order.

        ``BFS``/``DFS`` orders sort edges by the traversal rank of their
        source vertex (ties broken by the rank of the destination), which
        models a crawler emitting the out-links of each page as it is
        fetched — the setting the paper's streaming-clustering step relies
        on.
        """
        order = StreamOrder(order)
        if order is StreamOrder.NATURAL:
            return cls(graph.src.copy(), graph.dst.copy(), graph.num_vertices)
        if order is StreamOrder.RANDOM:
            rng = as_rng(seed)
            perm = rng.permutation(graph.num_edges)
            return cls(graph.src[perm], graph.dst[perm], graph.num_vertices)
        if order is StreamOrder.BFS:
            rank_of = _ranks(graph.bfs_order(source=source))
        elif order is StreamOrder.DFS:
            rank_of = _ranks(_dfs_order(graph, source))
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(order)
        key = rank_of[graph.src] * np.int64(graph.num_vertices) + rank_of[graph.dst]
        perm = np.argsort(key, kind="stable")
        return cls(graph.src[perm], graph.dst[perm], graph.num_vertices)

    @classmethod
    def from_chunks(cls, chunks, num_vertices: int) -> "EdgeStream":
        """Rebuild a stream from ``(m, 2)`` int64 edge chunks in order.

        The inverse of :meth:`chunks` — chunked consumers that buffer what
        they ingest (multi-pass algorithms like CLUGP re-stream the edges
        for passes 2-3) use this to recover a stream view without keeping
        a second copy of the endpoint arrays per chunk.
        """
        arrays = [np.asarray(c, dtype=np.int64) for c in chunks]
        arrays = [c for c in arrays if c.size]
        if not arrays:
            empty = np.empty(0, dtype=np.int64)
            return cls(empty, empty.copy(), num_vertices)
        edges = arrays[0] if len(arrays) == 1 else np.concatenate(arrays, axis=0)
        return cls(edges[:, 0], edges[:, 1], num_vertices)

    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def __len__(self) -> int:
        return self.num_edges

    def __iter__(self):
        """Yield ``(u, v)`` pairs as Python ints, in stream order."""
        for u, v in zip(self.src.tolist(), self.dst.tolist()):
            yield u, v

    def batches(self, batch_size: int):
        """Yield ``(src_chunk, dst_chunk)`` array pairs of ``batch_size``."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, self.num_edges, batch_size):
            stop = start + batch_size
            yield self.src[start:stop], self.dst[start:stop]

    def edge_array(self) -> np.ndarray:
        """The stream as one ``(num_edges, 2)`` int64 array (a copy).

        Column 0 is ``src``, column 1 is ``dst``.  Each call builds a
        fresh array; the stream itself never holds a second copy of its
        endpoints.
        """
        return np.stack((self.src, self.dst), axis=1)

    def chunks(self, chunk_size: int):
        """Yield ``(<=chunk_size, 2)`` int64 edge arrays in stream order.

        This is the vectorized ingestion path: chunks are transient
        per-slice arrays (O(chunk_size) temporary memory, nothing
        retained), sized so downstream partitioners can process whole
        batches with array operations instead of per-edge Python loops.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        for start in range(0, self.num_edges, chunk_size):
            stop = start + chunk_size
            yield np.stack((self.src[start:stop], self.dst[start:stop]), axis=1)

    def to_graph(self) -> DiGraph:
        """Materialize the stream back into a :class:`DiGraph`."""
        return DiGraph(self.src.copy(), self.dst.copy(), self.num_vertices)

    def reordered(self, order: StreamOrder | str, seed=None) -> "EdgeStream":
        """Return a new stream over the same edges in a different order."""
        return EdgeStream.from_graph(self.to_graph(), order=order, seed=seed)

    def active_vertices(self) -> np.ndarray:
        """Ids of vertices incident to at least one streamed edge."""
        used = np.zeros(self.num_vertices, dtype=bool)
        used[self.src] = True
        used[self.dst] = True
        return np.nonzero(used)[0]

    def degrees(self) -> np.ndarray:
        """Total degree per vertex over the full stream."""
        return (
            np.bincount(self.src, minlength=self.num_vertices)
            + np.bincount(self.dst, minlength=self.num_vertices)
        ).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EdgeStream(|V|={self.num_vertices}, |E|={self.num_edges})"


def _ranks(order: np.ndarray) -> np.ndarray:
    """Invert a visitation order into per-vertex ranks."""
    ranks = np.empty_like(order)
    ranks[order] = np.arange(order.size, dtype=np.int64)
    return ranks


def _dfs_order(graph: DiGraph, source: int | None) -> np.ndarray:
    """Iterative DFS visitation order over the undirected adjacency."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    out_indptr, out_nbrs, _ = graph.csr_out()
    in_indptr, in_nbrs, _ = graph.csr_in()
    if source is None:
        source = int(np.argmax(graph.degrees())) if graph.num_edges else 0
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    seeds = [source] + [v for v in range(n) if v != source]
    for seed in seeds:
        if visited[seed]:
            continue
        stack = [seed]
        while stack:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            order[pos] = v
            pos += 1
            nbrs = np.concatenate(
                [
                    out_nbrs[out_indptr[v] : out_indptr[v + 1]],
                    in_nbrs[in_indptr[v] : in_indptr[v + 1]],
                ]
            )
            # push in reverse so lowest-id neighbor is visited first
            for w in nbrs[::-1].tolist():
                if not visited[w]:
                    stack.append(w)
    return order
