"""Registry of synthetic stand-in datasets for the paper's corpora.

Table III of the paper lists five corpora:

===========  ==============  ======  ======  ========
alias        source           |V|     |E|    size
===========  ==============  ======  ======  ========
UK           uk-2002          19M    0.3B    4.7GB
Arabic       arabic-2005      22M    0.6B    11GB
WebBase      webbase-2001    118M    1.0B    17.2GB
IT           it-2004          41M    1.5B    18.8GB
Twitter      twitter          41M    1.4B    18.3GB
===========  ==============  ======  ======  ========

Those are not redistributable and far beyond pure-Python streaming scale,
so each alias maps to a *generator recipe* reproducing its salient shape at
a configurable ``scale`` (default ~100K edges, ~1/10000 of the original):

* the four web corpora use :func:`~repro.graph.generators.web_crawl_graph`
  with densities matching their |E|/|V| ratios and strong host locality;
* ``twitter`` uses preferential attachment (no crawl locality, higher hub
  skew) so the Figure 4 behaviour — CLUGP's clustering edge disappears on
  social graphs — is reproduced.

Graphs are deterministic per (alias, scale, seed) and cached in-process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .digraph import DiGraph
from .generators import barabasi_albert_graph, web_crawl_graph

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "WEB_DATASETS"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset recipe.

    ``build(scale, seed)`` returns a graph whose edge count is roughly
    ``base_edges * scale``.
    """

    alias: str
    source: str
    kind: str  # "web" or "social"
    paper_vertices: str
    paper_edges: str
    base_vertices: int
    avg_out_degree: float
    builder: Callable[[int, int], DiGraph]

    def build(self, scale: float = 1.0, seed: int = 0) -> DiGraph:
        n = max(128, int(self.base_vertices * scale))
        return self.builder(n, seed)


def _web_builder(avg_out_degree: float, host_size: int, intra: float):
    def build(num_vertices: int, seed: int) -> DiGraph:
        return web_crawl_graph(
            num_vertices,
            avg_out_degree=avg_out_degree,
            host_size=host_size,
            intra_host_prob=intra,
            seed=seed,
        )

    return build


def _social_builder(edges_per_vertex: int):
    def build(num_vertices: int, seed: int) -> DiGraph:
        graph = barabasi_albert_graph(num_vertices, edges_per_vertex, seed=seed)
        # social edge streams have no crawl locality: shuffle vertex order
        # relationship to arrival by shuffling the stored edge order.
        return graph.shuffled_copy(seed=seed + 1)

    return build


DATASETS: dict[str, DatasetSpec] = {
    "uk": DatasetSpec(
        alias="uk",
        source="uk-2002 (synthetic stand-in)",
        kind="web",
        paper_vertices="19M",
        paper_edges="0.3B",
        base_vertices=12_000,
        avg_out_degree=16.0,
        builder=_web_builder(16.0, host_size=32, intra=0.90),
    ),
    "arabic": DatasetSpec(
        alias="arabic",
        source="arabic-2005 (synthetic stand-in)",
        kind="web",
        paper_vertices="22M",
        paper_edges="0.6B",
        base_vertices=10_000,
        avg_out_degree=27.0,
        builder=_web_builder(27.0, host_size=64, intra=0.92),
    ),
    "webbase": DatasetSpec(
        alias="webbase",
        source="webbase-2001 (synthetic stand-in)",
        kind="web",
        paper_vertices="118M",
        paper_edges="1.0B",
        base_vertices=24_000,
        avg_out_degree=8.5,
        builder=_web_builder(8.5, host_size=24, intra=0.86),
    ),
    "it": DatasetSpec(
        alias="it",
        source="it-2004 (synthetic stand-in)",
        kind="web",
        paper_vertices="41M",
        paper_edges="1.5B",
        base_vertices=11_000,
        avg_out_degree=36.0,
        builder=_web_builder(36.0, host_size=96, intra=0.92),
    ),
    "twitter": DatasetSpec(
        alias="twitter",
        source="twitter (synthetic stand-in)",
        kind="social",
        paper_vertices="41M",
        paper_edges="1.4B",
        base_vertices=8_000,
        avg_out_degree=35.0,
        builder=_social_builder(18),
    ),
}

WEB_DATASETS = ("uk", "arabic", "webbase", "it")

_cache: dict[tuple[str, float, int], DiGraph] = {}


def load_dataset(alias: str, scale: float = 1.0, seed: int = 0) -> DiGraph:
    """Build (or fetch from cache) the stand-in graph for ``alias``.

    ``scale`` multiplies the base vertex count; ``seed`` selects the random
    instance.  Raises ``KeyError`` with the known aliases on a bad name.
    """
    key = alias.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {alias!r}; known: {sorted(DATASETS)}")
    cache_key = (key, float(scale), int(seed))
    if cache_key not in _cache:
        _cache[cache_key] = DATASETS[key].build(scale=scale, seed=seed)
    return _cache[cache_key]
