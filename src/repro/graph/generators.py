"""Synthetic graph generators.

The paper evaluates on billion-edge webgraph corpora (uk-2002, arabic-2005,
webbase-2001, it-2004) and the Twitter social graph.  Those corpora are not
redistributable here, and a pure-Python build cannot stream billions of
edges anyway (repro band 3/5), so every experiment runs on *synthetic
stand-ins* that preserve the three structural properties CLUGP's claims
rest on:

1. **power-law degree skew** (Section II-C) — `powerlaw_configuration_graph`
   and `barabasi_albert_graph` give tunable exponents;
2. **BFS crawl order with locality** — `web_crawl_graph` grows the graph by
   simulated crawling, so vertex ids correlate with crawl time the way
   UbiCrawler corpora do;
3. **community structure** — `planted_partition_graph` and the crawl
   generator's host-block mechanism create the clusters that pass 1 finds.

All generators take a ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int, check_probability
from .digraph import DiGraph

__all__ = [
    "powerlaw_configuration_graph",
    "barabasi_albert_graph",
    "rmat_graph",
    "erdos_renyi_graph",
    "web_crawl_graph",
    "planted_partition_graph",
    "star_graph",
    "powerlaw_degree_sequence",
]


def powerlaw_degree_sequence(
    num_vertices: int,
    alpha: float = 2.1,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed=None,
) -> np.ndarray:
    """Sample a degree sequence ``f(x) ~ x^-alpha`` by inverse transform.

    ``alpha`` is the power-law exponent (web graphs: ~2.1 in-degree,
    Section II-C cites Kumar/Kleinberg).  ``max_degree`` defaults to
    ``sqrt(num_vertices * min_degree)``, the natural structural cutoff.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(min_degree, "min_degree")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a normalizable tail, got {alpha}")
    rng = as_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(num_vertices * min_degree)) + 1)
    u = rng.random(num_vertices)
    # inverse CDF of the continuous truncated Pareto, then floor
    a = 1.0 - alpha
    lo, hi = float(min_degree), float(max_degree) + 1.0
    samples = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    return np.minimum(np.floor(samples).astype(np.int64), max_degree)


def powerlaw_configuration_graph(
    num_vertices: int,
    alpha: float = 2.1,
    min_degree: int = 2,
    max_degree: int | None = None,
    seed=None,
) -> DiGraph:
    """Directed configuration-model graph with power-law out/in degrees.

    Out- and in-stubs are sampled from the same power-law and matched by a
    random permutation; the total is trimmed so both sides agree.  Parallel
    edges and self-loops may occur (as in real crawl snapshots).
    """
    rng = as_rng(seed)
    out_deg = powerlaw_degree_sequence(
        num_vertices, alpha, min_degree, max_degree, rng
    )
    in_deg = powerlaw_degree_sequence(num_vertices, alpha, min_degree, max_degree, rng)
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), out_deg)
    dst = np.repeat(np.arange(num_vertices, dtype=np.int64), in_deg)
    m = min(src.size, dst.size)
    src = rng.permutation(src)[:m]
    dst = rng.permutation(dst)[:m]
    return DiGraph(src, dst, num_vertices)


def barabasi_albert_graph(
    num_vertices: int, edges_per_vertex: int = 4, seed=None
) -> DiGraph:
    """Preferential-attachment graph (power-law exponent ~3).

    Each new vertex attaches ``edges_per_vertex`` out-edges to existing
    vertices chosen proportionally to their current degree, implemented with
    the standard repeated-endpoints trick.  Vertex ids are in arrival
    order, so the natural edge order is already a growth/crawl order.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(edges_per_vertex, "edges_per_vertex")
    if num_vertices <= edges_per_vertex:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = as_rng(seed)
    m = edges_per_vertex
    src_list: list[int] = []
    dst_list: list[int] = []
    # endpoint pool: every edge contributes both endpoints -> degree-biased
    pool: list[int] = list(range(m))  # seed clique-ish start
    for v in range(m, num_vertices):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(pool[rng.integers(len(pool))]))
        for t in targets:
            src_list.append(v)
            dst_list.append(t)
            pool.append(v)
            pool.append(t)
    return DiGraph(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        num_vertices,
    )


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
) -> DiGraph:
    """Recursive-matrix (R-MAT / Graph500) generator.

    ``2**scale`` vertices, ``edge_factor * 2**scale`` edges.  The default
    (a,b,c,d)=(0.57,0.19,0.19,0.05) parameters are the Graph500 skew, which
    yields power-law-like in-degrees — the standard web-graph surrogate.
    Fully vectorized: each of the ``scale`` bit positions is drawn for all
    edges at once.
    """
    check_positive_int(scale, "scale")
    check_positive_int(edge_factor, "edge_factor")
    for name, val in (("a", a), ("b", b), ("c", c)):
        check_probability(val, name)
    if a + b + c >= 1.0:
        raise ValueError("a + b + c must be < 1")
    rng = as_rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(num_edges)
        right = (r >= a + c) | ((r >= a) & (r < a + b))  # quadrants b, d
        down = r >= a + b  # quadrants c, d
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return DiGraph(src, dst, num_vertices)


def erdos_renyi_graph(num_vertices: int, num_edges: int, seed=None) -> DiGraph:
    """Uniform random directed multigraph G(n, m)."""
    check_positive_int(num_vertices, "num_vertices")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    rng = as_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return DiGraph(src, dst, num_vertices)


def web_crawl_graph(
    num_vertices: int,
    avg_out_degree: float = 8.0,
    host_size: int = 64,
    intra_host_prob: float = 0.7,
    hub_bias: float = 0.6,
    seed=None,
) -> DiGraph:
    """Synthetic web graph grown in crawl order with host-level locality.

    Model: pages arrive one at a time (id = crawl time).  Each page belongs
    to a *host block* of ``host_size`` consecutive ids (UbiCrawler corpora
    number pages per-host contiguously, which is exactly the locality CLUGP
    exploits).  Each page emits ``Poisson(avg_out_degree)`` links; with
    probability ``intra_host_prob`` a link targets a page of the same host —
    uniform over the whole host block, so *forward* links to not-yet-crawled
    pages occur, exactly how navigation menus reference pages the crawler
    will fetch later.  Otherwise it targets an already crawled external
    page — preferentially a *hub* with probability ``hub_bias``
    (degree-proportional choice), uniform otherwise.

    The result has power-law in-degrees (preferential attachment on the
    external links), dense host communities, and natural-id ~ BFS-crawl
    order, reproducing the three properties of the paper's corpora.  The
    *natural* edge order of the returned graph is the crawl order the
    paper's streaming model assumes.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(host_size, "host_size")
    check_probability(intra_host_prob, "intra_host_prob")
    check_probability(hub_bias, "hub_bias")
    if avg_out_degree <= 0:
        raise ValueError("avg_out_degree must be positive")
    rng = as_rng(seed)
    src_list: list[int] = []
    dst_list: list[int] = []
    pool: list[int] = [0]  # degree-biased endpoint pool for hub selection
    out_counts = rng.poisson(avg_out_degree, size=num_vertices)
    for v in range(1, num_vertices):
        host_start = (v // host_size) * host_size
        host_end = min(host_start + host_size, num_vertices)
        for _ in range(int(out_counts[v])):
            if rng.random() < intra_host_prob and host_end - host_start > 1:
                t = v
                while t == v:
                    t = int(rng.integers(host_start, host_end))
            elif rng.random() < hub_bias:
                t = int(pool[rng.integers(len(pool))])
            else:
                t = int(rng.integers(0, v))
            src_list.append(v)
            dst_list.append(t)
            pool.append(t)
        pool.append(v)
    return DiGraph(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        num_vertices,
    )


def planted_partition_graph(
    num_communities: int,
    community_size: int,
    p_in: float = 0.2,
    p_out: float = 0.01,
    seed=None,
) -> DiGraph:
    """Planted-partition (stochastic block) digraph.

    Ground-truth communities are blocks of consecutive ids, so streaming
    clustering quality can be evaluated against a known answer.
    Edge counts are sampled per block pair (binomial) and endpoints drawn
    uniformly inside the blocks — O(E) rather than O(V^2).
    """
    check_positive_int(num_communities, "num_communities")
    check_positive_int(community_size, "community_size")
    check_probability(p_in, "p_in")
    check_probability(p_out, "p_out")
    rng = as_rng(seed)
    n = num_communities * community_size
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    for ci in range(num_communities):
        for cj in range(num_communities):
            p = p_in if ci == cj else p_out
            if p == 0.0:
                continue
            m = int(rng.binomial(community_size * community_size, p))
            if m == 0:
                continue
            srcs.append(
                rng.integers(ci * community_size, (ci + 1) * community_size, m)
            )
            dsts.append(
                rng.integers(cj * community_size, (cj + 1) * community_size, m)
            )
    if not srcs:
        return DiGraph.empty(n)
    return DiGraph(np.concatenate(srcs), np.concatenate(dsts), n)


def star_graph(num_leaves: int, center: int = 0) -> DiGraph:
    """Star ``center -> leaf_i`` for all leaves — the Figure 2 worst case.

    The hub's edges arrive consecutively in natural order, which is the
    adversarial stream for Hollocou clustering (every leaf edge opens a new
    cluster once the hub's cluster is full).
    """
    check_positive_int(num_leaves, "num_leaves")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    src = np.full(num_leaves, center, dtype=np.int64)
    return DiGraph(src, leaves, num_leaves + 1)
