"""Graph sampling used by the Figure 5 experiment (RF vs sampled size).

The paper "randomly samples UK-2002 to create a series of graph datasets";
we provide uniform edge sampling (the standard way to scale a web graph
down while preserving its degree-law shape) plus BFS-ball sampling (which
preserves locality, useful for crawl-order experiments).
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng, check_positive_int
from .digraph import DiGraph

__all__ = ["sample_edges", "bfs_ball"]


def sample_edges(graph: DiGraph, num_edges: int, seed=None, compact: bool = True) -> DiGraph:
    """Uniformly sample ``num_edges`` edges without replacement.

    With ``compact=True`` (default) isolated vertices are dropped and ids
    re-densified, matching how the paper's sampled datasets are stated as
    ``(|V|, |E|)`` pairs.
    """
    check_positive_int(num_edges, "num_edges")
    if num_edges > graph.num_edges:
        raise ValueError(
            f"cannot sample {num_edges} edges from a graph with {graph.num_edges}"
        )
    rng = as_rng(seed)
    chosen = rng.choice(graph.num_edges, size=num_edges, replace=False)
    chosen.sort()  # keep original stream order among survivors
    sub = DiGraph(graph.src[chosen], graph.dst[chosen], graph.num_vertices)
    if compact:
        sub, _ = sub.compact()
    return sub


def bfs_ball(graph: DiGraph, source: int, max_edges: int, compact: bool = True) -> DiGraph:
    """Edges discovered by an undirected BFS from ``source``, capped at
    ``max_edges`` — a locality-preserving subgraph sample.
    """
    check_positive_int(max_edges, "max_edges")
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    out_indptr, out_nbrs, out_eids = graph.csr_out()
    in_indptr, in_nbrs, in_eids = graph.csr_in()
    visited = np.zeros(graph.num_vertices, dtype=bool)
    edge_taken = np.zeros(graph.num_edges, dtype=bool)
    taken = 0
    queue = [source]
    visited[source] = True
    head = 0
    while head < len(queue) and taken < max_edges:
        v = queue[head]
        head += 1
        spans = (
            (out_nbrs, out_eids, out_indptr[v], out_indptr[v + 1]),
            (in_nbrs, in_eids, in_indptr[v], in_indptr[v + 1]),
        )
        for nbrs, eids, lo, hi in spans:
            for idx in range(lo, hi):
                if taken >= max_edges:
                    break
                eid = int(eids[idx])
                if edge_taken[eid]:
                    continue
                edge_taken[eid] = True
                taken += 1
                w = int(nbrs[idx])
                if not visited[w]:
                    visited[w] = True
                    queue.append(w)
    sub = graph.subgraph_edges(edge_taken)
    if compact:
        sub, _ = sub.compact()
    return sub
