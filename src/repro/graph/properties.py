"""Structural property analysis: degree distributions and power-law fits.

Used to verify that the synthetic stand-in datasets actually exhibit the
power-law skew the paper's theory (Section II-C, Theorems 1-2) assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "degree_histogram",
    "fit_powerlaw_alpha",
    "gini_coefficient",
    "DegreeStats",
    "degree_stats",
]


def degree_histogram(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(unique_degrees, counts)`` for nonzero degrees."""
    degrees = np.asarray(degrees)
    degrees = degrees[degrees > 0]
    return np.unique(degrees, return_counts=True)


def fit_powerlaw_alpha(degrees: np.ndarray, d_min: int = 1) -> float:
    """Maximum-likelihood power-law exponent (discrete Hill/Clauset estimator).

    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees ``>= d_min``.
    Returns ``nan`` when fewer than two qualifying degrees exist.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= d_min]
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.sum(np.log(tail / (d_min - 0.5))))


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (degree inequality measure).

    0 = perfectly uniform, ->1 = all mass on one vertex.  Power-law graphs
    have high Gini; ER graphs low.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return 0.0
    if values.min() < 0:
        raise ValueError("values must be non-negative")
    total = values.sum()
    if total == 0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * values) / (n * total)) - (n + 1.0) / n)


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree structure."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    median_degree: float
    alpha: float
    gini: float


def degree_stats(graph) -> DegreeStats:
    """Compute :class:`DegreeStats` for a :class:`~repro.graph.DiGraph`."""
    deg = graph.degrees()
    active = deg[deg > 0]
    if active.size == 0:
        return DegreeStats(graph.num_vertices, 0, 0, 0.0, 0.0, float("nan"), 0.0)
    return DegreeStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_degree=int(active.max()),
        mean_degree=float(active.mean()),
        median_degree=float(np.median(active)),
        alpha=fit_powerlaw_alpha(active, d_min=max(1, int(np.median(active)))),
        gini=gini_coefficient(active),
    )
