"""Directed graph core backed by numpy edge arrays and lazy CSR indices.

The streaming partitioners in this library consume *edge streams*
(:mod:`repro.graph.stream`); :class:`DiGraph` is the at-rest representation
used to build streams, compute degrees, run the GAS system simulator, and
check results against networkx.

Vertices are dense integers ``0..num_vertices-1``.  Parallel edges and
self-loops are allowed (web crawls contain both); helpers exist to strip
them.  The CSR index arrays are built on first use and cached.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng

__all__ = ["DiGraph"]


class DiGraph:
    """A directed multigraph stored as parallel ``src``/``dst`` arrays.

    Parameters
    ----------
    src, dst:
        Integer arrays of equal length; edge ``i`` goes ``src[i] -> dst[i]``.
    num_vertices:
        Total vertex-id space. Defaults to ``max(src, dst) + 1``; may be
        larger to include isolated vertices.
    """

    def __init__(self, src, dst, num_vertices: int | None = None) -> None:
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        if src.ndim != 1 or dst.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays")
        if src.shape != dst.shape:
            raise ValueError(
                f"src and dst must have equal length, got {src.shape} vs {dst.shape}"
            )
        if src.size and (src.min() < 0 or dst.min() < 0):
            raise ValueError("vertex ids must be non-negative")
        inferred = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
        if num_vertices is None:
            num_vertices = inferred
        elif num_vertices < inferred:
            raise ValueError(
                f"num_vertices={num_vertices} is smaller than max vertex id + 1 = {inferred}"
            )
        self.src = src
        self.dst = dst
        self.num_vertices = int(num_vertices)
        self._out_degree = None
        self._in_degree = None
        self._csr_out = None  # (indptr, indices) over dst sorted by src
        self._csr_in = None  # (indptr, indices) over src sorted by dst

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges, num_vertices: int | None = None) -> "DiGraph":
        """Build from an iterable of ``(u, v)`` pairs."""
        arr = np.asarray(list(edges), dtype=np.int64)
        if arr.size == 0:
            return cls(np.empty(0, np.int64), np.empty(0, np.int64), num_vertices or 0)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be pairs (u, v)")
        return cls(arr[:, 0], arr[:, 1], num_vertices)

    @classmethod
    def empty(cls, num_vertices: int = 0) -> "DiGraph":
        """An edgeless graph on ``num_vertices`` vertices."""
        return cls(np.empty(0, np.int64), np.empty(0, np.int64), num_vertices)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def edges(self) -> np.ndarray:
        """Return the ``(num_edges, 2)`` edge array (a view-backed copy)."""
        return np.stack([self.src, self.dst], axis=1)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (parallel edges counted)."""
        if self._out_degree is None:
            self._out_degree = np.bincount(
                self.src, minlength=self.num_vertices
            ).astype(np.int64)
        return self._out_degree

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex (parallel edges counted)."""
        if self._in_degree is None:
            self._in_degree = np.bincount(
                self.dst, minlength=self.num_vertices
            ).astype(np.int64)
        return self._in_degree

    def degrees(self) -> np.ndarray:
        """Total (in+out) degree; self-loops count twice."""
        return self.out_degrees() + self.in_degrees()

    # ------------------------------------------------------------------ #
    # CSR adjacency
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_csr(key: np.ndarray, val: np.ndarray, n: int):
        order = np.argsort(key, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(key, minlength=n), out=indptr[1:])
        return indptr, val[order], order

    def csr_out(self):
        """``(indptr, neighbors, edge_ids)`` for outgoing adjacency."""
        if self._csr_out is None:
            self._csr_out = self._build_csr(self.src, self.dst, self.num_vertices)
        return self._csr_out

    def csr_in(self):
        """``(indptr, neighbors, edge_ids)`` for incoming adjacency."""
        if self._csr_in is None:
            self._csr_in = self._build_csr(self.dst, self.src, self.num_vertices)
        return self._csr_in

    def out_neighbors(self, v: int) -> np.ndarray:
        indptr, nbrs, _ = self.csr_out()
        return nbrs[indptr[v] : indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        indptr, nbrs, _ = self.csr_in()
        return nbrs[indptr[v] : indptr[v + 1]]

    def neighbors(self, v: int) -> np.ndarray:
        """Undirected neighborhood (may contain duplicates for reciprocal edges)."""
        return np.concatenate([self.out_neighbors(v), self.in_neighbors(v)])

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #

    def simplify(self, drop_self_loops: bool = True) -> "DiGraph":
        """Return a copy without parallel edges (and optionally self-loops)."""
        key = self.src * np.int64(self.num_vertices) + self.dst
        _, first = np.unique(key, return_index=True)
        src, dst = self.src[first], self.dst[first]
        if drop_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        return DiGraph(src, dst, self.num_vertices)

    def reverse(self) -> "DiGraph":
        """Return the transpose graph."""
        return DiGraph(self.dst.copy(), self.src.copy(), self.num_vertices)

    def relabel(self, mapping: np.ndarray) -> "DiGraph":
        """Apply a vertex relabeling ``new_id = mapping[old_id]``.

        ``mapping`` must be a permutation of ``0..num_vertices-1``.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self.num_vertices,):
            raise ValueError("mapping must have one entry per vertex")
        sorted_m = np.sort(mapping)
        if not np.array_equal(sorted_m, np.arange(self.num_vertices)):
            raise ValueError("mapping must be a permutation of vertex ids")
        return DiGraph(mapping[self.src], mapping[self.dst], self.num_vertices)

    def subgraph_edges(self, edge_mask) -> "DiGraph":
        """Keep only edges where ``edge_mask`` is True (vertex set unchanged)."""
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != self.src.shape:
            raise ValueError("edge_mask must have one entry per edge")
        return DiGraph(self.src[edge_mask], self.dst[edge_mask], self.num_vertices)

    def compact(self) -> tuple["DiGraph", np.ndarray]:
        """Drop isolated vertices; returns ``(graph, old_ids)``.

        ``old_ids[new_id]`` gives the original id of each retained vertex.
        """
        used = np.zeros(self.num_vertices, dtype=bool)
        used[self.src] = True
        used[self.dst] = True
        old_ids = np.nonzero(used)[0]
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[old_ids] = np.arange(old_ids.size)
        return DiGraph(remap[self.src], remap[self.dst], old_ids.size), old_ids

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def bfs_order(self, source: int | None = None, directed: bool = False) -> np.ndarray:
        """Vertex visitation order of a BFS covering all vertices.

        Starts from ``source`` (default: highest-degree vertex, which is how
        crawlers seed on hub pages) and restarts from the lowest-id
        unvisited vertex until every vertex is ordered.  With
        ``directed=False`` edges are followed both ways, matching how crawl
        frontier order relates to link structure.
        """
        n = self.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        out_indptr, out_nbrs, _ = self.csr_out()
        if directed:
            adj = [(out_indptr, out_nbrs)]
        else:
            in_indptr, in_nbrs, _ = self.csr_in()
            adj = [(out_indptr, out_nbrs), (in_indptr, in_nbrs)]
        if source is None:
            source = int(np.argmax(self.degrees())) if self.num_edges else 0
        order = np.empty(n, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        pos = 0
        queue: list[int] = []
        seeds = [source] + [v for v in range(n) if v != source]
        seed_idx = 0
        while pos < n:
            while seed_idx < len(seeds) and visited[seeds[seed_idx]]:
                seed_idx += 1
            queue.append(seeds[seed_idx])
            visited[seeds[seed_idx]] = True
            head = 0
            while head < len(queue):
                v = queue[head]
                head += 1
                order[pos] = v
                pos += 1
                for indptr, nbrs in adj:
                    for w in nbrs[indptr[v] : indptr[v + 1]]:
                        if not visited[w]:
                            visited[w] = True
                            queue.append(int(w))
            queue.clear()
        return order

    def weakly_connected_components(self) -> np.ndarray:
        """Component label per vertex (labels are component-min vertex ids)."""
        n = self.num_vertices
        parent = np.arange(n, dtype=np.int64)

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for u, v in zip(self.src, self.dst):
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                if ru < rv:
                    parent[rv] = ru
                else:
                    parent[ru] = rv
        labels = np.empty(n, dtype=np.int64)
        for v in range(n):
            labels[v] = find(v)
        return labels

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def shuffled_copy(self, seed=None) -> "DiGraph":
        """Copy with edges in a random order (same graph, new stream order)."""
        rng = as_rng(seed)
        perm = rng.permutation(self.num_edges)
        return DiGraph(self.src[perm], self.dst[perm], self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.src, other.src)
            and np.array_equal(self.dst, other.dst)
        )

    def __hash__(self):  # DiGraph is mutable-array backed; identity hash
        return id(self)
