"""repro — a reproduction of "Clustering-based Partitioning for Large Web
Graphs" (CLUGP, ICDE 2022).

Public API quick tour::

    from repro import (
        load_dataset, EdgeStream, ClugpPartitioner, make_partitioner,
        quality_report,
    )

    graph = load_dataset("uk", scale=0.5)
    stream = EdgeStream.from_graph(graph, order="bfs")
    result = ClugpPartitioner(num_partitions=32).partition(stream)
    print(result.replication_factor(), result.relative_balance())

Subpackages
-----------
``repro.graph``
    Graph substrate: CSR digraphs, edge streams, generators, datasets, I/O.
``repro.core``
    The CLUGP three-pass pipeline (clustering, game, transformation).
``repro.partitioners``
    Streaming baselines: Hashing, DBH, Greedy, HDRF, Mint.
``repro.offline``
    Offline multilevel (METIS-style) comparator.
``repro.analysis``
    Quality metrics and comparison reports.
``repro.service``
    Online incremental partition maintenance (:class:`PartitionService`).
``repro.reliability``
    Fault-tolerant runtime: checkpoints + write-ahead journal, worker
    retry with deadlines, deterministic fault injection, hardened
    ingestion (docs/reliability.md).
``repro.system``
    PowerGraph-style GAS distributed-execution simulator + graph apps.
``repro.bench``
    The per-figure benchmark harness.
"""

from ._util import Timer
from .config import ClugpConfig, GameConfig, ReliabilityConfig
from .reliability import (
    BatchJournal,
    CheckpointManager,
    DropReport,
    FaultInjector,
    sanitize_edges,
)
from .graph import (
    DiGraph,
    EdgeStream,
    StreamOrder,
    load_dataset,
    DATASETS,
)
from .core import (
    ClugpPartitioner,
    ClugpNoSplitPartitioner,
    ClugpGreedyPartitioner,
    streaming_clustering,
    build_cluster_graph,
    ClusterPartitioningGame,
    parallel_game,
    transform_partitions,
)
from .partitioners import (
    PartitionAssignment,
    EdgePartitioner,
    HashingPartitioner,
    DBHPartitioner,
    GreedyPartitioner,
    HDRFPartitioner,
    MintPartitioner,
    make_partitioner,
    PARTITIONERS,
)
from .service import BatchStats, MigrationPlan, PartitionService
from .analysis import (
    quality_report,
    QualityReport,
    replication_factor,
    relative_balance,
    compare_partitioners,
)

__version__ = "1.1.0"

__all__ = [
    "Timer",
    "ClugpConfig",
    "GameConfig",
    "ReliabilityConfig",
    "FaultInjector",
    "CheckpointManager",
    "BatchJournal",
    "DropReport",
    "sanitize_edges",
    "DiGraph",
    "EdgeStream",
    "StreamOrder",
    "load_dataset",
    "DATASETS",
    "ClugpPartitioner",
    "ClugpNoSplitPartitioner",
    "ClugpGreedyPartitioner",
    "streaming_clustering",
    "build_cluster_graph",
    "ClusterPartitioningGame",
    "parallel_game",
    "transform_partitions",
    "PartitionService",
    "MigrationPlan",
    "BatchStats",
    "PartitionAssignment",
    "EdgePartitioner",
    "HashingPartitioner",
    "DBHPartitioner",
    "GreedyPartitioner",
    "HDRFPartitioner",
    "MintPartitioner",
    "make_partitioner",
    "PARTITIONERS",
    "quality_report",
    "QualityReport",
    "replication_factor",
    "relative_balance",
    "compare_partitioners",
    "__version__",
]
