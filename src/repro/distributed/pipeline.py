"""The pipelined shard→merge→serve drivers of the persistent backend.

These are the ``backend="persistent"`` counterparts of
``_run_independent`` / ``_run_merged`` in :mod:`repro.core.distributed`,
producing the same :class:`~repro.core.distributed.DistributedResult`
(bit-identical assignments, node reports, and merge reports — the bench
gate) from resident workers instead of fork-per-call pools.  Two things
change, and only two:

**Transport.**  Shards stream to the workers once through shared-memory
rings (:meth:`~repro.distributed.runtime.PersistentRuntime.feed_shard`);
stage commands then reference the *resident* shard and clustering, so
pass 3 ships a broadcast decision instead of re-pickling shard arrays
and clusterings the way the process pool must.

**Schedule.**  The merged protocol drops the stage-1 barrier: summaries
are folded into an :class:`~repro.core.distributed.IncrementalMerger`
*in arrival order*, the moment each lands — the coordinator merges while
the slowest shard is still clustering.  Fold order is irrelevant to the
bits (``ClusterGraph.merge`` is associative/commutative; the hypothesis
gate of ``tests/test_persistent_runtime.py``), so the warm-started global
game starts the instant the last summary lands with only the *last* fold
plus the finalize on the critical path.  The hidden folds are recorded in
``StageTimes.overlaps["pipeline_overlap"]``, and per-worker busy/idle
splits (``node<i>_busy`` / ``node<i>_idle``) expose how well the pipeline
kept the pool fed; ``walls["critical_path"]`` is the *measured*
end-to-end wall of the pipelined schedule, not a sum of stage maxima.
"""

from __future__ import annotations

import math
import time

import numpy as np

from .._util import StageTimes, Timer
from ..core.distributed import (
    DistributedResult,
    IncrementalMerger,
    MergeReport,
    NodeReport,
    _boundary_mask,
    _global_game,
    balance_quotas,
)
from ..partitioners.base import PartitionAssignment
from .runtime import PersistentRuntime

__all__ = ["run_persistent"]


def run_persistent(
    stream,
    num_partitions: int,
    num_nodes: int,
    config,
    seed: int,
    chunk_size,
    ranges,
    policy,
    inject,
    merge_mode: str,
    runtime: PersistentRuntime | None = None,
) -> DistributedResult:
    """Run one distributed CLUGP call on a persistent worker pool.

    ``runtime=None`` spawns an ephemeral pool for this call (and tears it
    down, segments unlinked); passing a resident runtime reuses its
    workers — the spawn/feed cost amortizes across calls, which is where
    the >=2x over the fork-per-call process backend comes from.
    """
    owned = runtime is None
    if runtime is None:
        runtime = PersistentRuntime(num_nodes)
    if runtime.num_workers != num_nodes:
        raise ValueError(
            f"runtime has {runtime.num_workers} workers but num_nodes={num_nodes}"
        )
    try:
        if merge_mode == "independent":
            return _persistent_independent(
                stream, runtime, num_partitions, config, seed, chunk_size,
                ranges, policy, inject,
            )
        return _persistent_merged(
            stream, runtime, num_partitions, config, seed, chunk_size,
            ranges, policy, inject,
        )
    finally:
        if owned:
            runtime.close()


def _feed_shards(stream, runtime: PersistentRuntime, ranges, times: StageTimes) -> None:
    """Stream every shard through its worker's shared-memory ring."""
    audit_before = runtime.edge_pickle_bytes
    with Timer() as timer:
        for node, (start, stop) in enumerate(ranges):
            runtime.feed_shard(
                node, stream.src[start:stop], stream.dst[start:stop],
                stream.num_vertices,
            )
    times.add_wall("ingest", timer.elapsed)
    # this call's measured pickled-ndarray bytes on the ingest plane —
    # the zero-copy bench gate reads this counter and expects 0
    times.bump("edge_pickle_bytes", runtime.edge_pickle_bytes - audit_before)


def _busy_idle(runtime: PersistentRuntime, busy_before, elapsed, times) -> None:
    """Record per-worker busy/idle splits over this call's elapsed wall."""
    for i, (before, after) in enumerate(zip(busy_before, runtime.busy_snapshot())):
        busy = after - before
        times.add_overlap(f"node{i}_busy", busy)
        times.add_overlap(f"node{i}_idle", max(0.0, elapsed - busy))


def _persistent_independent(
    stream, runtime, num_partitions, config, seed, chunk_size, ranges,
    policy, inject,
) -> DistributedResult:
    times = StageTimes()
    busy_before = runtime.busy_snapshot()
    t_start = time.perf_counter()
    _feed_shards(stream, runtime, ranges, times)
    commands = [
        {
            "op": "independent",
            "num_partitions": num_partitions,
            "seed": seed,
            "config": config,
            "chunk_size": chunk_size,
        }
        for _ in ranges
    ]
    with Timer() as t_stage:
        results = runtime.run_stage(
            "independent", commands, policy=policy, inject=inject, times=times,
        )
    times.add_wall("independent", t_stage.elapsed)

    edge_partition = np.empty(stream.num_edges, dtype=np.int64)
    reports: list[NodeReport] = []
    for node, result in enumerate(results):
        payload = result["payload"]
        start, stop = ranges[node]
        edge_partition[start:stop] = payload["edge_partition"]
        reports.append(
            NodeReport(
                node=node,
                num_edges=payload["num_edges"],
                num_clusters=payload["num_clusters"],
                splits=payload["splits"],
                game_rounds=payload["game_rounds"],
                seconds=result["seconds"],
            )
        )
    times.add("total", sum(r.seconds for r in reports))
    times.add_wall("max_node", max((r.seconds for r in reports), default=0.0))
    elapsed = time.perf_counter() - t_start
    times.add_wall("critical_path", elapsed)
    _busy_idle(runtime, busy_before, elapsed, times)
    assignment = PartitionAssignment(stream, edge_partition, num_partitions, times)
    return DistributedResult(
        assignment=assignment,
        nodes=reports,
        merge_mode="independent",
        backend="persistent",
    )


def _persistent_merged(
    stream, runtime, num_partitions, config, seed, chunk_size, ranges,
    policy, inject,
) -> DistributedResult:
    n = stream.num_vertices
    num_nodes = len(ranges)
    times = StageTimes()
    busy_before = runtime.busy_snapshot()
    wire_before = runtime.wire_bytes
    t_start = time.perf_counter()
    boundary = (
        _boundary_mask(stream, ranges) if num_nodes > 1 else np.zeros(n, dtype=bool)
    )
    _feed_shards(stream, runtime, ranges, times)

    # stage 1 (pipelined): pass 1 + local game on the workers; every
    # summary folds into the incremental merger the moment it arrives,
    # overlapping the coordinator's merge with the still-running shards
    merger = IncrementalMerger()
    fold_seconds: dict[int, float] = {}
    arrival_order: list[int] = []

    def on_summary(node: int, summary, arrival: float) -> None:
        with Timer() as fold:
            merger.add(node, summary)
        fold_seconds[node] = fold.elapsed
        arrival_order.append(node)

    validator = None
    if config.reliability.validate_summaries:
        def validator(payload, index):
            return payload.validate()

    summary_commands = [
        {
            "op": "summary",
            "num_partitions": num_partitions,
            "seed": seed,
            "config": config,
            "boundary": boundary,
            "chunk_size": chunk_size,
        }
        for _ in ranges
    ]
    with Timer() as t_stage1:
        stage1 = runtime.run_stage(
            "shard", summary_commands, policy=policy, inject=inject,
            times=times, validate=validator, on_result=on_summary, durable=True,
        )
    times.add_wall("shard", t_stage1.elapsed)
    cluster_seconds = [r["seconds"] for r in stage1]
    summaries = [r["payload"] for r in stage1]
    # every fold except the last ran while some shard was still busy
    hidden = sum(fold_seconds[node] for node in arrival_order[:-1])
    times.add_overlap("pipeline_overlap", hidden)

    # stage 2 (coordinator): only the last fold + finalize are exposed
    with Timer() as t_finalize:
        decision = merger.finalize(n)
    merge_seconds = sum(fold_seconds.values()) + t_finalize.elapsed

    # stage 3 (coordinator): one global game, warm-started
    with Timer() as t_game:
        game_result = _global_game(
            decision.merged_graph, config, seed, decision.warm_start
        )
    cluster_partition = game_result.assignment
    broadcast_bytes = int(
        cluster_partition.nbytes
        + decision.boundary_vertices.nbytes
        + decision.boundary_global_cluster.nbytes
    )

    # stage 4a (workers): uncapped probe on the *resident* clustering —
    # only the broadcast decision crosses the wire, never the clustering
    broadcast = {
        "cluster_partition": cluster_partition,
        "boundary_vertices": decision.boundary_vertices,
        "boundary_global_cluster": decision.boundary_global_cluster,
        "num_partitions": num_partitions,
        "chunk_size": chunk_size,
        "chunk_impl": config.chunk_impl,
        "kernel_backend": config.kernel_backend,
    }
    probe_commands = [
        {"op": "probe", "offset": int(decision.offsets[node]), **broadcast}
        for node in range(num_nodes)
    ]
    with Timer() as t_probe:
        stage4a = runtime.run_stage(
            "probe", probe_commands, policy=policy, inject=inject, times=times,
        )
    node_loads = np.stack([r["payload"] for r in stage4a])
    probe_seconds = [r["seconds"] for r in stage4a]

    # stage 4b (coordinator): balance quota exchange
    global_cap = max(
        1, math.ceil(config.imbalance_factor * stream.num_edges / num_partitions)
    )
    quotas = balance_quotas(node_loads, global_cap)

    # stage 4c (workers): committed pass-3 replay under the quotas
    commit_commands = [
        {
            "op": "commit",
            "offset": int(decision.offsets[node]),
            "imbalance_factor": config.imbalance_factor,
            "load_caps": quotas[node],
            **broadcast,
        }
        for node in range(num_nodes)
    ]
    with Timer() as t_commit:
        stage4c = runtime.run_stage(
            "commit", commit_commands, policy=policy, inject=inject, times=times,
        )

    edge_partition = np.empty(stream.num_edges, dtype=np.int64)
    reports: list[NodeReport] = []
    for node, result in enumerate(stage4c):
        start, stop = ranges[node]
        edge_partition[start:stop] = result["payload"]
        s = summaries[node]
        t_transform = probe_seconds[node] + result["seconds"]
        reports.append(
            NodeReport(
                node=node,
                num_edges=s.num_edges,
                num_clusters=s.num_clusters,
                splits=s.splits,
                game_rounds=s.local_game_rounds,
                seconds=cluster_seconds[node] + t_transform,
                summary_bytes=s.wire_bytes(),
                boundary_vertices=int(s.boundary_vertices.size),
                transform_seconds=t_transform,
            )
        )

    times.add("shard", sum(cluster_seconds))
    times.add("merge", merge_seconds)
    times.add("game", t_game.elapsed)
    times.add("transform", sum(r.transform_seconds for r in reports))
    times.add_wall("transform", t_probe.elapsed + t_commit.elapsed)
    elapsed = time.perf_counter() - t_start
    # measured end-to-end wall of the pipelined schedule — folds that ran
    # under the shard wall are *inside* this number, not added to it
    times.add_wall("critical_path", elapsed)
    _busy_idle(runtime, busy_before, elapsed, times)
    times.bump("control_plane_bytes", runtime.wire_bytes - wire_before)

    assignment = PartitionAssignment(stream, edge_partition, num_partitions, times)
    max_volume = max(
        (int(s.volume.max()) for s in summaries if s.volume.size), default=0
    )
    merge_report = MergeReport(
        num_global_clusters=decision.merged_graph.num_clusters,
        num_boundary_vertices=int(decision.boundary_vertices.size),
        num_unresolved_edges=decision.num_unresolved_edges,
        max_cluster_volume=max_volume,
        merge_bytes=sum(s.wire_bytes() for s in summaries),
        broadcast_bytes=broadcast_bytes,
        quota_bytes=int(node_loads.nbytes + quotas.nbytes),
        game_rounds=game_result.rounds,
        game_moves=game_result.moves,
        merge_seconds=merge_seconds,
        game_seconds=t_game.elapsed,
    )
    return DistributedResult(
        assignment=assignment,
        nodes=reports,
        merge_mode="merged",
        backend="persistent",
        merge=merge_report,
    )
