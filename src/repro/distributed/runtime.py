"""The persistent worker pool: spawn once, supervise forever.

:class:`PersistentRuntime` owns ``num_workers`` long-lived node processes
(:func:`~repro.distributed.worker.worker_main`), one shared-memory edge
ring per worker, and the framed command/result pipes.  It is the
``backend="persistent"`` executor behind
:func:`~repro.core.distributed.distributed_clugp`, the resident engine of
:class:`~repro.core.distributed.DistributedClugpPartitioner` and
:class:`~repro.service.service.PartitionService`, and the process fabric
the distributed GAS runtime (:mod:`repro.distributed.gas`) runs apps on.

Supervision (:meth:`run_stage`) mirrors the PR-8 semantics of
:func:`~repro.reliability.retry.run_reliable` on resident processes:

* **crash** — the result pipe EOFs; the worker is respawned and its
  resident state rebuilt by deterministic replay (re-feed the shard from
  the coordinator's stream, re-run the recorded durable commands with
  their original attempt numbers, so :class:`~repro.reliability.faults.
  FaultInjector` decisions replay identically), then the stage command is
  resent with ``attempt + 1``;
* **hang** — no reply within ``policy.task_timeout``; the process is
  terminated and handled like a crash (reason ``"timeout"``);
* **raise / invalid** — error replies and coordinator-side ``validate``
  quarantines resend the command to the (healthy) resident worker.

Failure counters land in ``StageTimes.counters`` under the same
``<stage>_retries``/``crashes``/``timeouts``/``raises``/``invalid`` names
the process backend uses, and exhausted retries raise the same
:class:`~repro.reliability.retry.ShardTaskError`.

Shared-memory hygiene: the coordinator creates every segment (tracked by
its resource tracker) and unlinks them all in :meth:`close` — also run
from ``atexit`` and ``__exit__`` — so ``/dev/shm`` is clean even after
injected worker crashes (asserted by the chaos tests).
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from multiprocessing import connection as mp_connection

import numpy as np

from .._util import StageTimes, check_positive_int
from ..reliability.retry import RetryPolicy, RetryStats, ShardTaskError, TaskFailure
from .shm import EdgeChunkRing, RingWriter, create_segment, unlink_segment
from .transport import FramedConnection, ndarray_nbytes
from .worker import worker_main

__all__ = ["PersistentRuntime", "WorkerDiedError"]

#: edges per ring slot (one ingest chunk); matches the pipeline default
DEFAULT_SLOT_EDGES = 1 << 16
#: ring depth — feeding may run this many chunks ahead of the worker copy
DEFAULT_RING_SLOTS = 4


class WorkerDiedError(RuntimeError):
    """A resident worker died outside supervised stage execution."""


class _WorkerHandle:
    """Coordinator-side bookkeeping for one resident node process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.cmd: FramedConnection | None = None
        self.res: FramedConnection | None = None
        self.ring: EdgeChunkRing | None = None
        self.writer: RingWriter | None = None
        self.shard: tuple[np.ndarray, np.ndarray, int] | None = None
        self.replay: list[dict] = []  # durable commands rebuilding resident state
        self.busy_seconds = 0.0

    @property
    def wire_bytes(self) -> int:
        """Control-plane bytes moved over this worker's pipes so far."""
        sent = self.cmd.bytes_sent if self.cmd else 0
        recv = self.res.bytes_received if self.res else 0
        return sent + recv


class PersistentRuntime:
    """A pool of resident shard workers reachable over shared memory.

    Parameters
    ----------
    num_workers:
        Node processes to hold resident (one shard each).
    slot_edges:
        Edges per shared-memory ring slot — the ingest chunk granularity.
    ring_slots:
        Ring depth per worker; feeding overlaps the worker's copy-out by
        up to ``ring_slots - 1`` chunks.
    """

    def __init__(
        self,
        num_workers: int,
        slot_edges: int = DEFAULT_SLOT_EDGES,
        ring_slots: int = DEFAULT_RING_SLOTS,
    ) -> None:
        self.num_workers = check_positive_int(num_workers, "num_workers")
        self.slot_edges = check_positive_int(slot_edges, "slot_edges")
        self.ring_slots = check_positive_int(ring_slots, "ring_slots")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            self._ctx = multiprocessing.get_context()
        self._segments = []
        self._closed = False
        #: measured ndarray bytes pickled on the ingest (edge) plane —
        #: the zero-copy gate; stays 0 unless the hot path regresses
        self.edge_pickle_bytes = 0
        self.workers: list[_WorkerHandle] = []
        for index in range(self.num_workers):
            handle = _WorkerHandle(index)
            shm = create_segment(EdgeChunkRing.nbytes(self.slot_edges, self.ring_slots))
            self._segments.append(shm)
            handle.ring = EdgeChunkRing(shm, self.slot_edges, self.ring_slots)
            handle.writer = RingWriter(handle.ring)
            self.workers.append(handle)
            self._spawn(handle)
        atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) one worker process on fresh pipes."""
        cmd_r, cmd_w = self._ctx.Pipe(duplex=False)
        res_r, res_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                handle.index, cmd_r, res_w,
                handle.ring.shm.name, self.slot_edges, self.ring_slots,
            ),
            daemon=True,
        )
        process.start()
        cmd_r.close()
        res_w.close()
        handle.process = process
        handle.cmd = FramedConnection(cmd_w)
        handle.res = FramedConnection(res_r)
        handle.writer.reset()

    def _kill(self, handle: _WorkerHandle) -> None:
        """Terminate one worker without waiting on its state."""
        if handle.cmd is not None:
            handle.cmd.close()
        if handle.res is not None:
            handle.res.close()
        proc = handle.process
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
                proc.kill()
                proc.join(timeout=5)
        handle.process = None

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Restart a dead worker and rebuild its resident state by replay.

        The shard is re-fed from the coordinator's own arrays and every
        recorded durable command re-executed with the attempt number it
        originally succeeded at — injector decisions are pure functions
        of ``(seed, stage, node, attempt)``, so the replay is fault-free
        exactly when the original success was, and the rebuilt state is
        bit-identical (workers are deterministic functions of their
        command history).
        """
        self._kill(handle)
        self._spawn(handle)
        if handle.shard is not None:
            src, dst, num_vertices = handle.shard
            self._feed(handle, src, dst, num_vertices)
        for msg in handle.replay:
            reply = self.call(handle.index, msg)
            del reply  # recomputed only to rebuild resident worker state

    def close(self) -> None:
        """Shut every worker down and unlink every shared segment."""
        if self._closed:
            return
        self._closed = True
        for handle in self.workers:
            if handle.cmd is not None:
                try:
                    handle.cmd.send({"op": "shutdown"})
                except Exception:
                    pass
        for handle in self.workers:
            proc = handle.process
            if proc is not None:
                proc.join(timeout=2)
            self._kill(handle)
            if handle.ring is not None:
                handle.ring.close()
                handle.ring = None
        for shm in self._segments:
            unlink_segment(shm)
        self._segments = []
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __enter__(self) -> "PersistentRuntime":
        """Context-manager entry (workers are already running)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: full shutdown + segment unlink."""
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # ingest plane
    # ------------------------------------------------------------------ #

    def feed_shard(
        self, worker: int, src: np.ndarray, dst: np.ndarray, num_vertices: int
    ) -> None:
        """Stream one shard to a worker through its shared-memory ring.

        The coordinator keeps a reference to the shard arrays so a
        crashed worker can be re-fed during respawn.  Only ``(slot,
        length)`` descriptors cross the pickle boundary; the audited
        ndarray bytes of every ingest command accumulate into
        :attr:`edge_pickle_bytes` (gated ``== 0`` in the bench).
        """
        handle = self.workers[worker]
        handle.shard = (src, dst, num_vertices)
        handle.replay = []
        self._feed(handle, src, dst, num_vertices)

    def _feed(self, handle, src, dst, num_vertices) -> None:
        def wait_ack() -> int:
            reply = handle.res.recv()
            if "ack" not in reply:
                raise WorkerDiedError(
                    f"worker {handle.index}: unexpected reply during feed: {reply}"
                )
            return reply["ack"]

        self._send_ingest(
            handle,
            {"op": "begin_shard", "num_vertices": num_vertices, "expected_edges": src.size},
        )
        for start in range(0, src.size, self.slot_edges):
            stop = min(start + self.slot_edges, src.size)
            slot = handle.writer.next_slot(wait_ack)
            length = handle.ring.write(slot, src[start:stop], dst[start:stop])
            self._send_ingest(handle, {"op": "chunk", "slot": slot, "length": length})
        handle.writer.drain(wait_ack)
        self._send_ingest(handle, {"op": "end_shard"})
        reply = handle.res.recv()
        fed = reply.get("payload")
        if fed != src.size:
            raise WorkerDiedError(
                f"worker {handle.index}: fed {src.size} edges but worker holds {fed}"
            )

    def _send_ingest(self, handle: _WorkerHandle, msg: dict) -> None:
        """Send an ingest-plane command, auditing it for pickled arrays."""
        self.edge_pickle_bytes += ndarray_nbytes(msg)
        handle.cmd.send(msg)

    # ------------------------------------------------------------------ #
    # command plane
    # ------------------------------------------------------------------ #

    def call(self, worker: int, msg: dict):
        """One unsupervised round trip; returns the reply payload.

        Used by the replay path and the GAS runtime (whose in-flight app
        state cannot survive a worker death anyway — see
        docs/distributed.md on failure semantics).
        """
        handle = self.workers[worker]
        try:
            handle.cmd.send(msg)
            reply = handle.res.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise WorkerDiedError(
                f"worker {worker} died during {msg.get('op')!r}"
            ) from exc
        if not reply.get("ok"):
            raise RuntimeError(
                f"worker {worker} failed {msg.get('op')!r}:\n{reply.get('error')}"
            )
        handle.busy_seconds += reply.get("seconds", 0.0)
        return reply.get("payload")

    def call_all(self, msgs: list[dict]) -> list[tuple]:
        """One unsupervised round trip to every worker concurrently.

        Sends all commands before reading any reply, so the workers
        compute in parallel; returns ``(payload, seconds)`` per worker in
        worker order.  Like :meth:`call`, a worker death raises
        :class:`WorkerDiedError` — the GAS runtime's documented failure
        semantics (in-flight app state does not survive a worker loss).
        """
        if len(msgs) != self.num_workers:
            raise ValueError(f"expected {self.num_workers} commands, got {len(msgs)}")
        for handle, msg in zip(self.workers, msgs):
            try:
                handle.cmd.send(msg)
            except (OSError, BrokenPipeError) as exc:
                raise WorkerDiedError(
                    f"worker {handle.index} died before {msg.get('op')!r}"
                ) from exc
        out = []
        for handle, msg in zip(self.workers, msgs):
            try:
                reply = handle.res.recv()
            except (EOFError, OSError) as exc:
                raise WorkerDiedError(
                    f"worker {handle.index} died during {msg.get('op')!r}"
                ) from exc
            if not reply.get("ok"):
                raise RuntimeError(
                    f"worker {handle.index} failed {msg.get('op')!r}:\n"
                    f"{reply.get('error')}"
                )
            seconds = reply.get("seconds", 0.0)
            handle.busy_seconds += seconds
            out.append((reply.get("payload"), seconds))
        return out

    def run_stage(
        self,
        stage: str,
        commands: list[dict],
        policy: RetryPolicy | None = None,
        inject=None,
        times: StageTimes | None = None,
        validate=None,
        on_result=None,
        durable: bool = False,
    ) -> list[dict]:
        """Supervised fan-out of one stage command per worker.

        Returns per-worker dicts ``{"payload", "seconds", "arrival"}`` in
        worker order.  ``on_result(worker, payload, arrival)`` streams
        each validated result the moment it lands (the pipelined-merge
        hook); ``durable=True`` records each worker's successful command
        for crash replay.  Raises :class:`~repro.reliability.retry.
        ShardTaskError` when a worker exhausts ``policy.max_retries``.
        """
        if len(commands) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} commands, got {len(commands)}"
            )
        policy = policy or RetryPolicy()
        stats = RetryStats()
        results: list[dict | None] = [None] * self.num_workers
        attempts = [0] * self.num_workers
        deadlines: dict[int, float | None] = {}
        last_error: BaseException | None = None

        def dispatch(index: int) -> None:
            msg = dict(commands[index])
            msg.update(
                stage=stage, node=index, num_nodes=self.num_workers,
                attempt=attempts[index], inject=inject,
            )
            stats.attempts += 1
            if attempts[index]:
                stats.retries += 1
                pause = policy.backoff(attempts[index])
                stats.backoff_seconds += pause
                if pause > 0:
                    time.sleep(pause)
            self.workers[index].cmd.send(msg)
            deadlines[index] = (
                None if policy.task_timeout is None
                else time.monotonic() + policy.task_timeout
            )

        def fail(index: int, reason: str, error: BaseException | None) -> None:
            nonlocal last_error
            failure = TaskFailure(index, reason, attempts[index], error)
            stats.record(failure)
            if error is not None:
                last_error = error
            attempts[index] += 1
            if attempts[index] > policy.max_retries:
                if reason in ("crash", "timeout"):
                    # leave the pool healthy for the caller's teardown
                    self._respawn(self.workers[index])
                self._record(stats, stage, times)
                raise ShardTaskError(
                    f"stage {stage!r}: worker {index} failed after "
                    f"{policy.max_retries + 1} attempts: {failure.describe()}"
                ) from last_error
            if reason in ("crash", "timeout"):
                self._respawn(self.workers[index])
            dispatch(index)

        pending = set(range(self.num_workers))
        for index in sorted(pending):
            dispatch(index)
        while pending:
            timeout = None
            now = time.monotonic()
            live = [d for d in (deadlines[i] for i in pending) if d is not None]
            if live:
                timeout = max(0.0, min(live) - now)
            conn_of = {self.workers[i].res.conn: i for i in pending}
            ready = mp_connection.wait(list(conn_of), timeout=timeout)
            if not ready:
                now = time.monotonic()
                for index in sorted(pending):
                    deadline = deadlines[index]
                    if deadline is not None and deadline <= now:
                        fail(index, "timeout", None)
                continue
            for conn in ready:
                index = conn_of[conn]
                try:
                    reply = self.workers[index].res.recv()
                except (EOFError, OSError) as exc:
                    fail(index, "crash", exc)
                    continue
                if not reply.get("ok"):
                    fail(index, "raise", RuntimeError(reply.get("error", "?")))
                    continue
                payload = reply.get("payload")
                if validate is not None:
                    problem = validate(payload, index)
                    if problem:
                        fail(index, "invalid", ValueError(f"{stage}: {problem}"))
                        continue
                arrival = time.perf_counter()
                seconds = reply.get("seconds", 0.0)
                self.workers[index].busy_seconds += seconds
                results[index] = {
                    "payload": payload, "seconds": seconds, "arrival": arrival,
                }
                pending.discard(index)
                if durable:
                    msg = dict(commands[index])
                    msg.update(
                        stage=stage, node=index, num_nodes=self.num_workers,
                        attempt=attempts[index], inject=inject,
                    )
                    self.workers[index].replay.append(msg)
                if on_result is not None:
                    on_result(index, payload, arrival)
        self._record(stats, stage, times)
        return results  # type: ignore[return-value]

    @staticmethod
    def _record(stats: RetryStats, stage: str, times: StageTimes | None) -> None:
        """Land failure counters under the process-backend's names."""
        if times is None:
            return
        counters = stats.to_counters()
        for name in ("retries", "crashes", "timeouts", "raises", "invalid"):
            times.bump(f"{stage}_{name}", counters[name])
        times.bump("retries", counters["retries"])

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @property
    def wire_bytes(self) -> int:
        """Total control-plane bytes over every worker pipe so far."""
        return sum(h.wire_bytes for h in self.workers)

    def busy_snapshot(self) -> list[float]:
        """Per-worker cumulative compute seconds (for busy/idle splits)."""
        return [h.busy_seconds for h in self.workers]
