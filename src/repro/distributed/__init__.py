"""Persistent shared-memory worker runtime (the ``persistent`` backend).

Long-lived node processes holding resident shard + clustering + app
state, fed over ``multiprocessing.shared_memory`` rings, driving the
pipelined shard→merge→serve schedule of ``distributed_clugp`` and the
process-backed distributed GAS runtime.  See ``docs/distributed.md``.
"""

from .gas import DistributedGasRuntime
from .runtime import PersistentRuntime, WorkerDiedError
from .shm import SHM_PREFIX, EdgeChunkRing, RingWriter, leaked_segments
from .transport import FramedConnection, ndarray_nbytes

__all__ = [
    "DistributedGasRuntime",
    "PersistentRuntime",
    "WorkerDiedError",
    "SHM_PREFIX",
    "EdgeChunkRing",
    "RingWriter",
    "leaked_segments",
    "FramedConnection",
    "ndarray_nbytes",
]
