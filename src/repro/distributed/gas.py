"""Distributed GAS execution on the persistent worker pool.

:class:`DistributedGasRuntime` runs the same BSP superstep as
:class:`~repro.system.runtime.LocalGasRuntime` — the bit-identity oracle
— but the per-partition gather/apply kernels execute on the resident
node processes of a :class:`~repro.distributed.runtime.PersistentRuntime`
(partitions are owned round-robin, ``pid % num_workers``), typically the
same processes that just partitioned the graph: stream → partition → app
end-to-end on real processes.

Per superstep, three command round trips:

1. ``gas_gather`` — the coordinator ships packed active/selection bit
   masks; each worker runs its partitions' local gather kernels, returns
   the active mirrors' partial-accumulator chunks (and, for programs
   with a ``master_aggregate`` hook, one float partial per partition);
2. ``gas_apply`` — the coordinator assembles the gather
   :class:`~repro.system.messages.MessageBuffer` (chunks concatenated in
   pid order — float merge order is part of the bit contract), routes
   each partition's incoming rows back, and ships the reduced global
   aggregate; workers combine, apply at active masters, and return the
   new master values;
3. ``gas_sync`` — masters' applied values broadcast to mirrors through
   the apply buffer (provably equal to ``new_global[routes.vertex[sel]]``
   — masters are authoritative), plus the packed changed mask for the
   workers' message-free scatter; workers return their activated local
   frontiers and the coordinator OR-reduces.

``SuperstepCost.messages``/``bytes`` are counted from the same buffers
the oracle builds (the parity contract), while ``compute_seconds`` is
the slowest worker's *measured* kernel time and ``comm_seconds`` the
measured superstep wall minus that — real transport, not a network
model; :attr:`DistributedGasRuntime.wire_bytes` is the measured
control-plane traffic of the run.

Scope: dense accumulators only (the ragged label-count programs raise),
and global-aggregate programs must expose the split
``master_aggregate``/``receive_aggregate`` hooks.  A worker death
mid-run raises :class:`~repro.distributed.runtime.WorkerDiedError` — app
state is not checkpointed (see docs/distributed.md).
"""

from __future__ import annotations

import time

import numpy as np

from ..partitioners.base import PartitionAssignment
from ..system.engine import RunCost, SuperstepCost
from ..system.messages import DensePayload, MessageBuffer
from ..system.runtime import DenseAccumulator
from ..system.placement import build_local_index, build_placement
from .runtime import PersistentRuntime

__all__ = ["DistributedGasRuntime"]


def _packbits(mask: np.ndarray) -> np.ndarray:
    return np.packbits(mask.astype(np.uint8))


class DistributedGasRuntime:
    """Partition-local GAS over resident worker processes.

    Drop-in for :class:`~repro.system.runtime.LocalGasRuntime` on the
    programs it supports (dense accumulators): same ``run()`` contract,
    bit-identical values and superstep counts, measured communication.

    Parameters
    ----------
    assignment:
        The vertex-cut deployment to execute on.
    runtime:
        The persistent worker pool hosting the partitions — commonly the
        pool that produced ``assignment``, so the app runs where the
        shards already live.
    """

    mode = "distributed"

    def __init__(
        self,
        assignment: PartitionAssignment,
        runtime: PersistentRuntime,
    ) -> None:
        self.assignment = assignment
        self.stream = assignment.stream
        self.runtime = runtime
        self.placement = build_placement(assignment)
        self.index = build_local_index(assignment, self.placement)
        self.num_vertices = self.stream.num_vertices
        self.num_partitions = assignment.num_partitions
        self._unhosted = self.placement.replica_counts == 0
        #: pid -> owning worker (round-robin)
        self.owner = {
            pid: pid % runtime.num_workers for pid in range(self.num_partitions)
        }
        #: per-superstep sync masks of the last run (for the parity test)
        self.sync_masks: list[np.ndarray] = []
        #: measured control-plane bytes of the last run (setup + supersteps)
        self.wire_bytes = 0
        self.setup_seconds = 0.0

    def _owned_pids(self, worker: int) -> list[int]:
        return [pid for pid in range(self.num_partitions) if self.owner[pid] == worker]

    def _mirror_rows(self, pid: int) -> slice:
        indptr = self.index.routes.mirror_indptr
        return slice(indptr[pid], indptr[pid + 1])

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, program, max_supersteps: int = 100) -> tuple[np.ndarray, RunCost]:
        """Execute ``program`` to convergence; returns (values, cost)."""
        if max_supersteps <= 0:
            raise ValueError("max_supersteps must be positive")
        spec = program.accumulator
        if not isinstance(spec, DenseAccumulator):
            raise ValueError(
                "DistributedGasRuntime supports dense accumulators only; "
                "run ragged programs on LocalGasRuntime"
            )
        if hasattr(program, "before_apply") and not hasattr(program, "master_aggregate"):
            raise ValueError(
                "program computes global aggregates in before_apply but does "
                "not expose the distributed master_aggregate/receive_aggregate "
                "hooks"
            )
        wire_before = self.runtime.wire_bytes
        values_global = np.ascontiguousarray(program.init(self))
        if hasattr(program, "setup"):
            program.setup(self)
        parts = self.index.partitions
        routes = self.index.routes
        n = self.num_vertices
        k = self.num_partitions
        has_aggregate = hasattr(program, "master_aggregate")
        undirected = program.edge_mode == "undirected"
        sparse = program.frontier != "dense"

        # one-time placement: ship each worker its partitions (sub-graph,
        # replica values, mirror route slice) plus the shared program
        t_setup = time.perf_counter()
        setup_msgs = []
        for worker in range(self.runtime.num_workers):
            owned = {
                pid: {
                    "part": parts[pid],
                    "values": values_global[parts[pid].vertices].copy(),
                    "mirror_local": routes.mirror_local[self._mirror_rows(pid)],
                }
                for pid in self._owned_pids(worker)
            }
            setup_msgs.append(
                {
                    "op": "gas_setup",
                    "program": program,
                    "owned": owned,
                    "num_vertices": n,
                    "num_partitions": k,
                }
            )
        self.runtime.call_all(setup_msgs)
        self.setup_seconds = time.perf_counter() - t_setup

        cost = RunCost()
        self.sync_masks = []
        active = np.ones(n, dtype=bool)
        for step in range(max_supersteps):
            t_step = time.perf_counter()
            self.sync_masks.append(active.copy())
            active_local = [active[p.vertices] for p in parts]
            sel = active[routes.vertex]

            # (1)+(2a) gather on the workers; chunks stream back per pid
            gather_msgs = []
            for worker in range(self.runtime.num_workers):
                pids = self._owned_pids(worker)
                gather_msgs.append(
                    {
                        "op": "gas_gather",
                        "active_bits": {
                            pid: _packbits(active_local[pid]) for pid in pids
                        },
                        "sel_bits": {
                            pid: _packbits(sel[self._mirror_rows(pid)]) for pid in pids
                        },
                    }
                )
            gather_replies = self.runtime.call_all(gather_msgs)
            chunks: dict[int, np.ndarray] = {}
            aggs: dict[int, float] = {}
            worker_seconds = [s for _, s in gather_replies]
            for payload, _ in gather_replies:
                chunks.update(payload["chunks"])
                aggs.update(payload["aggs"])
            values = (
                np.concatenate([chunks[pid] for pid in range(k)])
                if k
                else np.empty(0, dtype=spec.dtype)
            )
            gather_buf = MessageBuffer(
                round="gather",
                vertex=routes.vertex[sel],
                src_part=routes.mirror_part[sel],
                dst_part=routes.master_part[sel],
                dst_local=routes.master_local[sel],
                payload=DensePayload(values),
            )

            # global aggregate: worker partials reduced in pid order, then
            # the coordinator's unhosted share — the oracle's float order
            aggregate = None
            if has_aggregate:
                total = 0.0
                for pid in range(k):
                    total += aggs[pid]
                total += program.unhosted_aggregate(self, values_global)
                program.receive_aggregate(total)  # for the unhosted apply
                aggregate = total

            # (2b)+(3) route gather rows home, apply at active masters
            apply_msgs = []
            for worker in range(self.runtime.num_workers):
                deliver = {}
                for pid in self._owned_pids(worker):
                    locals_recv, payload = gather_buf.for_partition(pid)
                    deliver[pid] = (locals_recv, payload.values)
                apply_msgs.append(
                    {
                        "op": "gas_apply",
                        "aggregate": aggregate,
                        "deliver": deliver,
                        "combine": spec.combine,
                    }
                )
            apply_replies = self.runtime.call_all(apply_msgs)
            new_global = values_global.copy()
            changed = np.zeros(n, dtype=bool)
            applied: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            for i, (payload, seconds) in enumerate(apply_replies):
                worker_seconds[i] += seconds
                applied.update(payload["applied"])
            for pid in range(k):
                ids, new_vals = applied[pid]
                if ids.size == 0:
                    continue
                gids = parts[pid].vertices[ids]
                new_global[gids] = new_vals
                if sparse:
                    changed[gids] = new_vals != values_global[gids]
            isolated = active & self._unhosted
            if isolated.any():
                gids = np.nonzero(isolated)[0]
                new_vals = program.apply(
                    self, gids, values_global[gids], spec.empty(gids.size)
                )
                new_global[gids] = new_vals
                if sparse:
                    changed[gids] = new_vals != values_global[gids]

            # (4) apply sync: masters are authoritative, so the broadcast
            # values are exactly the new globals at the selected routes
            apply_buf = MessageBuffer(
                round="apply",
                vertex=routes.vertex[sel],
                src_part=routes.master_part[sel],
                dst_part=routes.mirror_part[sel],
                dst_local=routes.mirror_local[sel],
                payload=DensePayload(new_global[routes.vertex[sel]]),
            )
            if not sparse:
                converged = program.check_converged(self, values_global, new_global)
                changed = np.full(n, not converged, dtype=bool)
            if hasattr(program, "post_superstep"):
                changed = program.post_superstep(self, step, changed)

            # (5) mirror refresh + message-free scatter on the workers
            changed_bits = _packbits(changed) if sparse else None
            sync_msgs = []
            for worker in range(self.runtime.num_workers):
                deliver = {}
                for pid in self._owned_pids(worker):
                    locals_recv, payload = apply_buf.for_partition(pid)
                    deliver[pid] = (locals_recv, payload.values)
                sync_msgs.append(
                    {
                        "op": "gas_sync",
                        "deliver": deliver,
                        "changed_bits": changed_bits,
                        "undirected": undirected,
                    }
                )
            sync_replies = self.runtime.call_all(sync_msgs)
            if sparse:
                nxt = np.zeros(n, dtype=bool)
                for i, (payload, seconds) in enumerate(sync_replies):
                    worker_seconds[i] += seconds
                    for pid, acts in payload["activated"].items():
                        nxt[parts[pid].vertices[acts]] = True
                next_active = nxt
            else:
                for i, (_, seconds) in enumerate(sync_replies):
                    worker_seconds[i] += seconds
                next_active = changed.copy()

            # measured superstep cost: oracle-identical message/byte
            # counts, real compute (slowest worker) and transport walls
            compute = max(worker_seconds, default=0.0)
            wall = time.perf_counter() - t_step
            active_edges = sum(
                int(np.count_nonzero(al[p.src_local] | al[p.dst_local]))
                for p, al in zip(parts, active_local)
            )
            cost.add(
                SuperstepCost(
                    superstep=step,
                    active_vertices=int(np.count_nonzero(active)),
                    active_edges=active_edges,
                    messages=gather_buf.count + apply_buf.count,
                    bytes=gather_buf.payload_nbytes + apply_buf.payload_nbytes,
                    compute_seconds=compute,
                    comm_seconds=max(0.0, wall - compute),
                )
            )
            values_global = new_global
            active = next_active
            if not changed.any():
                break
        self.wire_bytes = self.runtime.wire_bytes - wire_before
        return values_global, cost
