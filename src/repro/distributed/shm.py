"""Shared-memory segments and the edge-chunk ring buffer.

The persistent worker runtime moves edge data between the coordinator and
its resident node processes through ``multiprocessing.shared_memory``
segments instead of pickled task payloads: the coordinator writes a chunk
of ``(src, dst)`` int64 pairs into a ring slot and sends only a
``(slot, length)`` descriptor over the command pipe — zero copies of edge
bytes ever cross a pickle boundary on the ingest path.

Lifecycle rules (the part that goes wrong in real deployments):

* the **coordinator owns every segment** — it creates them (tracked by its
  own ``resource_tracker``, so even a SIGKILL'd coordinator leaks nothing
  past interpreter teardown) and unlinks them in ``close()``;
* **workers attach untracked** — a forked/spawned child must not register
  the segment with *its* resource tracker, or the first worker death
  (including injected chaos crashes) would unlink a segment the
  coordinator and its siblings still use.  Python 3.13 grew
  ``SharedMemory(..., track=False)`` for exactly this; on older
  interpreters :func:`attach_segment` just attaches — fork children
  share the coordinator's tracker, so the duplicate registration is a
  set-level no-op (see the function docstring);
* every segment name carries :data:`SHM_PREFIX`, so tests (and operators)
  can assert ``/dev/shm`` cleanliness with :func:`leaked_segments`.
"""

from __future__ import annotations

import os
import secrets
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SHM_PREFIX",
    "create_segment",
    "attach_segment",
    "unlink_segment",
    "leaked_segments",
    "EdgeChunkRing",
    "RingWriter",
]

#: every segment the runtime creates is named ``clugp-shm-<pid>-<nonce>``
SHM_PREFIX = "clugp-shm-"

_SHM_DIR = "/dev/shm"


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a coordinator-owned segment with a recognizable name.

    The creating process keeps normal resource-tracker registration: if
    the coordinator dies without ``close()``, its tracker unlinks the
    segment at interpreter teardown (with a warning) instead of leaking
    it into ``/dev/shm`` forever.
    """
    name = f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
    return shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership.

    Workers call this after fork/spawn.  Python 3.13 grew
    ``SharedMemory(..., track=False)`` for exactly this case.  On older
    interpreters the attach re-registers the name — but multiprocessing
    children inherit the *coordinator's* tracker process, whose cache is
    a per-type set, so the duplicate registration is a no-op and the
    coordinator's ``unlink()`` performs the single balanced unregister.
    Explicitly unregistering here would instead erase the coordinator's
    registration from the shared set (and make the tracker log spurious
    KeyErrors at unlink time), so the fallback deliberately does nothing.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track kwarg; see docstring
        return shared_memory.SharedMemory(name=name)


def unlink_segment(shm: shared_memory.SharedMemory | None) -> None:
    """Close and unlink a segment, tolerating repeat/raced teardown."""
    if shm is None:
        return
    try:
        shm.close()
    except Exception:  # pragma: no cover - already-closed race
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # pragma: no cover - platform-specific teardown
        pass


def leaked_segments() -> list[str]:
    """Names of runtime-created segments still present in ``/dev/shm``.

    The chaos tests assert this is empty after ``close()`` even when
    workers were crash-injected mid-stage.  On platforms without a
    ``/dev/shm`` view this returns an empty list (nothing to audit).
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SHM_PREFIX))


class EdgeChunkRing:
    """A fixed ring of edge-chunk slots inside one shared segment.

    Layout: ``slots`` slots of ``slot_edges`` edges each; slot ``i`` holds
    ``src[0:m]`` then ``dst[0:m]`` as contiguous int64 rows (``m`` travels
    in the pipe descriptor).  The coordinator writes round-robin and the
    worker copies each chunk into its resident shard arrays, so a slot is
    reusable as soon as its acknowledgement arrives — flow control lives
    in :class:`RingWriter`, not here.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slot_edges: int, slots: int) -> None:
        self.shm = shm
        self.slot_edges = int(slot_edges)
        self.slots = int(slots)
        self._array = np.ndarray(
            (self.slots, 2, self.slot_edges), dtype=np.int64, buffer=shm.buf
        )

    @staticmethod
    def nbytes(slot_edges: int, slots: int) -> int:
        """Segment size needed for a ring of the given geometry."""
        return int(slots) * 2 * int(slot_edges) * 8

    def write(self, slot: int, src: np.ndarray, dst: np.ndarray) -> int:
        """Copy one chunk into ``slot``; returns the chunk length."""
        m = int(src.size)
        if m > self.slot_edges:
            raise ValueError(f"chunk of {m} edges exceeds slot capacity {self.slot_edges}")
        self._array[slot, 0, :m] = src
        self._array[slot, 1, :m] = dst
        return m

    def read(self, slot: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of one chunk's (src, dst) rows — valid until overwritten."""
        return self._array[slot, 0, :length], self._array[slot, 1, :length]

    def close(self) -> None:
        """Drop this process's mapping (does not unlink the segment)."""
        self._array = None
        try:
            self.shm.close()
        except Exception:  # pragma: no cover - already-closed race
            pass


class RingWriter:
    """Coordinator-side flow control over an :class:`EdgeChunkRing`.

    Tracks in-flight slots; :meth:`next_slot` yields the next free slot,
    blocking (via the caller-supplied ``wait_ack``) only when every slot
    is occupied — so feeding overlaps the worker's copy-out by up to
    ``slots - 1`` chunks.
    """

    def __init__(self, ring: EdgeChunkRing) -> None:
        self.ring = ring
        self._in_flight: list[int] = []

    @property
    def in_flight(self) -> int:
        """Chunks written but not yet acknowledged."""
        return len(self._in_flight)

    def next_slot(self, wait_ack) -> int:
        """Reserve the next ring slot, draining one ack if the ring is full."""
        if len(self._in_flight) >= self.ring.slots:
            self.ack(wait_ack())
        slot = (self._in_flight[-1] + 1) % self.ring.slots if self._in_flight else 0
        self._in_flight.append(slot)
        return slot

    def ack(self, slot: int) -> None:
        """Mark ``slot`` reusable (acks arrive in FIFO chunk order)."""
        if not self._in_flight or self._in_flight[0] != slot:
            raise RuntimeError(
                f"out-of-order ring ack: got slot {slot}, expected "
                f"{self._in_flight[0] if self._in_flight else 'none'}"
            )
        self._in_flight.pop(0)

    def drain(self, wait_ack) -> None:
        """Block until every in-flight chunk is acknowledged."""
        while self._in_flight:
            self.ack(wait_ack())

    def reset(self) -> None:
        """Forget in-flight state (after a worker respawn re-feed)."""
        self._in_flight.clear()
