"""The persistent node process: resident shard state, command loop.

One :func:`worker_main` process per ingest node, spawned once by
:class:`~repro.distributed.runtime.PersistentRuntime` and reused across
every stage of every ``distributed_clugp`` call (and across calls).  The
worker owns:

* its **shard** — edge chunks copied out of the shared-memory ring into
  resident int64 arrays (the node's local crawl buffer);
* its **pipeline state** — the :class:`~repro.core.partitioner.
  ClugpPartitioner` whose pass-1 ``ClusteringState`` survives between the
  summary and transform stages, so pass 3 replays with zero re-shipping;
* its **app state** — per-partition values/partials of the distributed
  GAS runtime (:mod:`repro.distributed.gas`), living on the same process
  that partitioned the shard.

Protocol: commands arrive as dicts over the framed command pipe; every
stage command gets exactly one reply ``{"node", "ok", "payload"/"error",
"seconds"}`` where ``seconds`` is the worker's measured compute time (the
coordinator's busy/idle accounting).  Stage commands carry the PR-8
:class:`~repro.reliability.faults.FaultInjector` plus their attempt
number, and the worker applies ``pre_task``/``post_task`` exactly like
the process-pool path — an injected ``crash`` is a real ``os._exit`` that
the coordinator observes as a broken pipe and answers with respawn +
deterministic replay.
"""

from __future__ import annotations

import traceback

import numpy as np

from .._util import Timer
from ..core.distributed import _node_vertex_partition
from ..core.partitioner import ClugpPartitioner
from ..core.transform import replay_transform_chunked
from ..graph.stream import EdgeStream
from ..system.runtime import LocalContext
from .shm import EdgeChunkRing, attach_segment
from .transport import FramedConnection

__all__ = ["worker_main"]


class _GasFacade:
    """The minimal runtime surface a shipped vertex program touches.

    Programs running worker-side only read immutable globals
    (``num_vertices`` / ``num_partitions``) — every per-partition table
    was built coordinator-side in ``setup`` and travels inside the
    program object.
    """

    def __init__(self, num_vertices: int, num_partitions: int) -> None:
        self.num_vertices = num_vertices
        self.num_partitions = num_partitions


class _WorkerState:
    """Everything resident between commands (shard, pipeline, app)."""

    def __init__(self, node: int) -> None:
        self.node = node
        self.num_vertices = 0
        self.src: np.ndarray | None = None
        self.dst: np.ndarray | None = None
        self.count = 0
        self.partitioner: ClugpPartitioner | None = None
        self.gas: dict | None = None

    def stream(self) -> EdgeStream:
        """The resident shard as an :class:`EdgeStream` (zero-copy views)."""
        return EdgeStream(self.src[: self.count], self.dst[: self.count], self.num_vertices)


def _handle_begin_shard(state: _WorkerState, msg: dict) -> None:
    state.num_vertices = msg["num_vertices"]
    cap = max(1, int(msg["expected_edges"]))
    state.src = np.empty(cap, dtype=np.int64)
    state.dst = np.empty(cap, dtype=np.int64)
    state.count = 0
    state.partitioner = None


def _handle_chunk(state: _WorkerState, ring: EdgeChunkRing, msg: dict) -> None:
    src, dst = ring.read(msg["slot"], msg["length"])
    need = state.count + src.size
    if need > state.src.size:  # defensive; the coordinator pre-sizes exactly
        grown = max(need, 2 * state.src.size)
        for name in ("src", "dst"):
            buf = np.empty(grown, dtype=np.int64)
            buf[: state.count] = getattr(state, name)[: state.count]
            setattr(state, name, buf)
    state.src[state.count : need] = src
    state.dst[state.count : need] = dst
    state.count = need


def _handle_summary(state: _WorkerState, msg: dict):
    shard = state.stream()
    partitioner = ClugpPartitioner(
        msg["num_partitions"], seed=msg["seed"] + state.node, config=msg["config"]
    )
    summary = partitioner.cluster_summary(
        shard,
        boundary_mask=msg["boundary"],
        chunk_size=msg["chunk_size"],
        node=state.node,
    )
    state.partitioner = partitioner  # clustering stays resident for pass 3
    return summary


def _handle_independent(state: _WorkerState, msg: dict):
    shard = state.stream()
    partitioner = ClugpPartitioner(
        msg["num_partitions"], seed=msg["seed"] + state.node, config=msg["config"]
    )
    assignment = partitioner.partition_chunked(shard, chunk_size=msg["chunk_size"])
    state.partitioner = partitioner
    return {
        "edge_partition": assignment.edge_partition,
        "num_edges": shard.num_edges,
        "num_clusters": partitioner.last_clustering.num_clusters,
        "splits": partitioner.last_clustering.splits,
        "game_rounds": partitioner.last_game_result.rounds,
    }


def _transform_args(state: _WorkerState, msg: dict) -> tuple[EdgeStream, np.ndarray]:
    """Shared probe/commit prologue: shard view + broadcast vertex map."""
    if state.partitioner is None or state.partitioner.last_clustering is None:
        raise RuntimeError("transform before summary: no resident clustering")
    shard = state.stream()
    vp = _node_vertex_partition(
        state.partitioner.last_clustering,
        msg["offset"],
        msg["cluster_partition"],
        msg["boundary_vertices"],
        msg["boundary_global_cluster"],
        state.num_vertices,
    )
    return shard, vp


def _handle_probe(state: _WorkerState, msg: dict):
    shard, vp = _transform_args(state, msg)
    k = msg["num_partitions"]
    out, _ = replay_transform_chunked(
        shard,
        state.partitioner.last_clustering,
        vp,
        k,
        load_caps=np.full(k, max(1, shard.num_edges), dtype=np.int64),
        chunk_size=msg["chunk_size"],
        chunk_impl=msg["chunk_impl"],
        kernel_backend=msg["kernel_backend"],
    )
    return np.bincount(out, minlength=k)


def _handle_commit(state: _WorkerState, msg: dict):
    shard, vp = _transform_args(state, msg)
    out, _ = replay_transform_chunked(
        shard,
        state.partitioner.last_clustering,
        vp,
        msg["num_partitions"],
        imbalance_factor=msg["imbalance_factor"],
        load_caps=msg["load_caps"],
        chunk_size=msg["chunk_size"],
        chunk_impl=msg["chunk_impl"],
        kernel_backend=msg["kernel_backend"],
    )
    return out


# --------------------------------------------------------------------- #
# distributed GAS handlers (see repro.distributed.gas for the protocol)
# --------------------------------------------------------------------- #


def _handle_gas_setup(state: _WorkerState, msg: dict) -> None:
    state.gas = {
        "program": msg["program"],
        "owned": msg["owned"],  # pid -> {"part", "values", "mirror_local"}
        "facade": _GasFacade(msg["num_vertices"], msg["num_partitions"]),
        "partials": {},
        "active_local": {},
    }


def _unpack(bits: np.ndarray, n: int) -> np.ndarray:
    """Unpack a packbits mask back to ``n`` booleans."""
    return np.unpackbits(bits, count=n).astype(bool)


def _handle_gas_gather(state: _WorkerState, msg: dict) -> dict:
    gas = state.gas
    program = gas["program"]
    chunks: dict[int, np.ndarray] = {}
    aggs: dict[int, float] = {}
    for pid in sorted(gas["owned"]):
        slot = gas["owned"][pid]
        part = slot["part"]
        active_local = _unpack(msg["active_bits"][pid], part.num_vertices)
        gas["active_local"][pid] = active_local
        partial = program.gather_local(
            LocalContext(
                part=part, values=slot["values"], active=active_local,
                runtime=gas["facade"],
            )
        )
        gas["partials"][pid] = partial
        sel = _unpack(msg["sel_bits"][pid], slot["mirror_local"].size)
        chunks[pid] = partial[slot["mirror_local"][sel]]
        if hasattr(program, "master_aggregate"):
            aggs[pid] = program.master_aggregate(part, slot["values"])
    return {"chunks": chunks, "aggs": aggs}


def _handle_gas_apply(state: _WorkerState, msg: dict) -> dict:
    gas = state.gas
    program = gas["program"]
    if msg["aggregate"] is not None:
        program.receive_aggregate(msg["aggregate"])
    applied: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for pid in sorted(gas["owned"]):
        slot = gas["owned"][pid]
        part = slot["part"]
        partial = gas["partials"][pid]
        deliver = msg["deliver"].get(pid)
        if deliver is not None:
            locals_recv, values = deliver
            if locals_recv.size:
                msg["combine"].at(partial, locals_recv, values)
        ids = np.nonzero(part.is_master & gas["active_local"][pid])[0]
        if ids.size == 0:
            applied[pid] = (ids, np.empty(0, dtype=slot["values"].dtype))
            continue
        new_vals = program.apply(
            gas["facade"], part.vertices[ids], slot["values"][ids], partial[ids]
        )
        slot["values"][ids] = new_vals
        applied[pid] = (ids, new_vals)
    return {"applied": applied}


def _handle_gas_sync(state: _WorkerState, msg: dict) -> dict:
    gas = state.gas
    for pid, (locals_recv, values) in msg["deliver"].items():
        if locals_recv.size:
            gas["owned"][pid]["values"][locals_recv] = values
    activated: dict[int, np.ndarray] = {}
    if msg["changed_bits"] is not None:
        changed = _unpack(msg["changed_bits"], state.gas["facade"].num_vertices)
        for pid in sorted(gas["owned"]):
            part = gas["owned"][pid]["part"]
            changed_local = changed[part.vertices]
            marks = np.zeros(part.num_vertices, dtype=bool)
            marks[part.dst_local[changed_local[part.src_local]]] = True
            if msg["undirected"]:
                marks[part.src_local[changed_local[part.dst_local]]] = True
            activated[pid] = np.flatnonzero(marks)
    return {"activated": activated}


_STAGE_HANDLERS = {
    "summary": _handle_summary,
    "independent": _handle_independent,
    "probe": _handle_probe,
    "commit": _handle_commit,
}

_PLAIN_HANDLERS = {
    "gas_setup": _handle_gas_setup,
    "gas_gather": _handle_gas_gather,
    "gas_apply": _handle_gas_apply,
    "gas_sync": _handle_gas_sync,
}


def worker_main(node, cmd_conn, res_conn, ring_name, slot_edges, ring_slots) -> None:
    """Entry point of one persistent node process.

    Attaches the shared edge ring untracked (the coordinator owns the
    segment), then serves commands until ``shutdown`` or a dropped
    command pipe.  Handler exceptions become error replies — the
    coordinator counts them as ``raise`` failures and retries per its
    :class:`~repro.reliability.retry.RetryPolicy`; only an injected crash
    (``os._exit``) or a kill takes the process down.
    """
    cmd = FramedConnection(cmd_conn)
    res = FramedConnection(res_conn)
    ring = EdgeChunkRing(attach_segment(ring_name), slot_edges, ring_slots)
    state = _WorkerState(node)
    try:
        while True:
            try:
                msg = cmd.recv()
            except (EOFError, OSError):
                break
            op = msg["op"]
            if op == "shutdown":
                break
            if op == "begin_shard":
                _handle_begin_shard(state, msg)
                continue
            if op == "chunk":
                _handle_chunk(state, ring, msg)
                res.send({"node": node, "ok": True, "ack": msg["slot"]})
                continue
            if op == "end_shard":
                res.send(
                    {"node": node, "ok": True, "payload": state.count, "seconds": 0.0}
                )
                continue
            if op == "ping":
                res.send({"node": node, "ok": True, "payload": "pong", "seconds": 0.0})
                continue
            try:
                with Timer() as timer:
                    if op in _STAGE_HANDLERS:
                        inject = msg.get("inject")
                        if inject is not None:
                            inject.pre_task(
                                msg["stage"], node, msg["num_nodes"],
                                msg["attempt"], in_process=True,
                            )
                        payload = _STAGE_HANDLERS[op](state, msg)
                        if inject is not None:
                            payload = inject.post_task(
                                msg["stage"], node, msg["num_nodes"],
                                msg["attempt"], payload,
                            )
                    else:
                        payload = _PLAIN_HANDLERS[op](state, msg)
                res.send(
                    {"node": node, "ok": True, "payload": payload, "seconds": timer.elapsed}
                )
            except Exception:
                res.send(
                    {
                        "node": node,
                        "ok": False,
                        "error": traceback.format_exc(limit=20),
                        "seconds": 0.0,
                    }
                )
    finally:
        ring.close()
        cmd.close()
        res.close()
