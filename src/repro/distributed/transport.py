"""Framed, byte-counted command/result pipes for the persistent runtime.

Each worker is driven over two unidirectional OS pipes: a *command*
connection (coordinator -> worker) and a *result* connection (worker ->
coordinator).  Both ends frame messages through explicit ``pickle`` +
``send_bytes`` so every byte that crosses the boundary is **measured** —
the zero-copy claim of the shared-memory ingest path is a gate in
``benchmarks/bench_persistent.py``, not an assumption:

* :attr:`FramedConnection.bytes_sent` / :attr:`bytes_received` count the
  raw wire traffic of the control plane;
* :func:`ndarray_nbytes` audits a command for numpy payloads, and the
  coordinator accumulates the audit of every **ingest-plane** command
  into ``edge_pickle_bytes`` — chunk descriptors are plain ints, so the
  counter stays 0 unless someone regresses the hot path back to pickling
  arrays.

Coordination traffic (boundary masks, the broadcast cluster decision,
quota tables, the shipped summaries) legitimately carries arrays; those
commands are *not* ingest-plane and their bytes are accounted under the
existing ``MergeReport`` wire-byte fields instead.
"""

from __future__ import annotations

import pickle

import numpy as np

__all__ = ["FramedConnection", "ndarray_nbytes"]


def ndarray_nbytes(obj) -> int:
    """Total bytes of every numpy array reachable inside ``obj``.

    Walks tuples/lists/dicts and dataclass-like ``__dict__`` payloads —
    the shapes commands actually use — without falling into cycles.
    """
    total = 0
    seen: set[int] = set()
    stack = [obj]
    while stack:
        item = stack.pop()
        if id(item) in seen:
            continue
        seen.add(id(item))
        if isinstance(item, np.ndarray):
            total += int(item.nbytes)
        elif isinstance(item, (tuple, list, set)):
            stack.extend(item)
        elif isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif hasattr(item, "__dict__") and not isinstance(item, type):
            stack.extend(vars(item).values())
    return total


class FramedConnection:
    """One direction of a worker pipe with wire-byte accounting.

    Wraps a ``multiprocessing.connection.Connection``; every object is
    pickled here (protocol 5) and shipped with ``send_bytes`` so the
    measured frame length is exactly what crossed the pipe.
    """

    def __init__(self, conn) -> None:
        self.conn = conn
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, obj) -> int:
        """Pickle and send one frame; returns (and counts) its byte size."""
        frame = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.send_bytes(frame)
        self.bytes_sent += len(frame)
        return len(frame)

    def recv(self):
        """Receive one frame; raises ``EOFError`` when the peer died."""
        frame = self.conn.recv_bytes()
        self.bytes_received += len(frame)
        return pickle.loads(frame)

    def poll(self, timeout: float | None = 0) -> bool:
        """Whether a frame is ready within ``timeout`` seconds."""
        return self.conn.poll(timeout)

    def fileno(self) -> int:
        """Underlying descriptor (for ``multiprocessing.connection.wait``)."""
        return self.conn.fileno()

    def close(self) -> None:
        """Close the underlying connection, tolerating repeats."""
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - already-closed race
            pass
