"""Numba kernel backend: ``@njit`` over the :mod:`._pykernels` sources.

Import is guarded — machines without numba get ``load() -> None`` and the
resolver falls through to the C backend.  Compilation is deferred to the
first call of each kernel (standard lazy ``@njit``); callers that care
about timing run :func:`repro.kernels.warmup` first so nopython compile
time never lands inside a measured region.
"""

from __future__ import annotations

from . import _pykernels


class NumbaBackend:
    """nopython-compiled kernels sharing the uniform numpy-level API."""

    name = "numba"

    def __init__(self, njit) -> None:
        opts = {"cache": True, "nogil": True}
        self.hdrf_chunk = njit(**opts)(_pykernels.hdrf_chunk)
        self.greedy_chunk = njit(**opts)(_pykernels.greedy_chunk)
        self.clustering_chunk = njit(**opts)(_pykernels.clustering_chunk)
        self.transform_chunk = njit(**opts)(_pykernels.transform_chunk)
        self.game_round = njit(**opts)(_pykernels.game_round)
        self.game_cost_rows = njit(**opts)(_pykernels.game_cost_rows)


def load() -> NumbaBackend | None:
    """Wrap the Python kernels in ``@njit``; None when numba is absent."""
    try:
        from numba import njit
    except ImportError:
        return None
    try:
        return NumbaBackend(njit)
    except Exception:  # pragma: no cover - defensive: broken numba install
        return None
