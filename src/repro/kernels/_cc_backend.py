"""C kernel backend: compile ``kernels.c`` on first use, bind via ctypes.

This is the "JIT" tier for machines without numba but with a system C
compiler (``cc``/``gcc``/``clang``): the shipped ``kernels.c`` is
compiled once into a per-user cache directory keyed by a hash of the
source, so every later import is a single ``dlopen``.  Compilation uses
``-O2 -ffp-contract=off`` and **no** ``-ffast-math`` — IEEE double
semantics must match CPython's exactly for the HDRF bit-identity
guarantee (DESIGN.md §8).

Everything degrades gracefully: no compiler, a failed compile, or a
failed load simply makes :func:`load` return ``None`` and the caller
falls back to the next backend tier.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

import numpy as np

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernels.c")

_I64P = ctypes.POINTER(ctypes.c_int64)
_U64P = ctypes.POINTER(ctypes.c_uint64)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_F64P = ctypes.POINTER(ctypes.c_double)


def _cache_dir() -> str:
    root = os.environ.get("CLUGP_KERNEL_CACHE")
    if not root:
        base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
            os.path.expanduser("~"), ".cache"
        )
        root = os.path.join(base, "clugp-kernels")
    return root


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build(source_path: str) -> str | None:
    """Compile the kernel library if not cached; return the .so path."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        with open(source_path, "rb") as fh:
            source = fh.read()
    except OSError:
        return None
    key = hashlib.sha256(source + sys.platform.encode()).hexdigest()[:16]
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"kernels-{key}{suffix}")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=suffix, dir=cache)
        os.close(fd)
        cmd = [
            compiler,
            "-O2",
            "-fPIC",
            "-shared",
            "-ffp-contract=off",
            "-o",
            tmp,
            source_path,
        ]
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=120
        )
        if proc.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, lib_path)  # atomic: concurrent builders agree on the key
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


class CcBackend:
    """ctypes bindings presenting the uniform numpy-level kernel API."""

    name = "cc"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        lib.hdrf_chunk.restype = None
        lib.hdrf_chunk.argtypes = [
            _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_double, ctypes.c_double, _F64P, _I64P, _U64P, _I64P,
        ]
        lib.greedy_chunk.restype = None
        lib.greedy_chunk.argtypes = [
            _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64P, _U64P, _I64P,
        ]
        lib.clustering_chunk.restype = None
        lib.clustering_chunk.argtypes = [
            _I64P, _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
            _I64P, _I64P, _U8P, _I64P, _I64P, _I64P, _I64P,
        ]
        lib.transform_chunk.restype = ctypes.c_int64
        lib.transform_chunk.argtypes = [
            _I64P, _I64P, ctypes.c_int64, ctypes.c_int64,
            _I64P, _U8P, _I64P, _I64P, _I64P, _I64P, ctypes.c_int64, _I64P,
        ]
        lib.game_round.restype = ctypes.c_int64
        lib.game_round.argtypes = [
            _I64P, ctypes.c_int64, ctypes.c_int64,
            ctypes.c_double, ctypes.c_double, ctypes.c_int64,
            _I64P, _I64P, _F64P, _F64P, _F64P,
            _I64P, _F64P, _F64P, ctypes.c_int64,
            _I64P, _I64P, _I64P, _I64P,
            _I64P, _F64P, _I64P, _F64P, _F64P,
        ]
        lib.game_cost_rows.restype = None
        lib.game_cost_rows.argtypes = [
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_double,
            _I64P, _I64P, _F64P, _F64P, _F64P, _I64P, _F64P, _F64P,
        ]

    def hdrf_chunk(self, u, v, k, nw, lam, eps, loads, degree, words, out) -> None:
        self._lib.hdrf_chunk(
            _ptr(u, ctypes.c_int64), _ptr(v, ctypes.c_int64),
            u.shape[0], k, nw, lam, eps,
            _ptr(loads, ctypes.c_double), _ptr(degree, ctypes.c_int64),
            _ptr(words, ctypes.c_uint64), _ptr(out, ctypes.c_int64),
        )

    def greedy_chunk(self, u, v, k, nw, loads, words, out) -> None:
        self._lib.greedy_chunk(
            _ptr(u, ctypes.c_int64), _ptr(v, ctypes.c_int64),
            u.shape[0], k, nw,
            _ptr(loads, ctypes.c_int64), _ptr(words, ctypes.c_uint64),
            _ptr(out, ctypes.c_int64),
        )

    def clustering_chunk(
        self, u, v, vmax, splitting, clu, deg, divided, vol, mirror_v, mirror_c, counters
    ) -> None:
        self._lib.clustering_chunk(
            _ptr(u, ctypes.c_int64), _ptr(v, ctypes.c_int64),
            u.shape[0], vmax, 1 if splitting else 0,
            _ptr(clu, ctypes.c_int64), _ptr(deg, ctypes.c_int64),
            _ptr(divided, ctypes.c_uint8), _ptr(vol, ctypes.c_int64),
            _ptr(mirror_v, ctypes.c_int64), _ptr(mirror_c, ctypes.c_int64),
            _ptr(counters, ctypes.c_int64),
        )

    def game_round(
        self, players, k, lam_over_k, eps, relaxed,
        indptr, indices, weights, internal, cut_degree,
        assignment, loads, adj, has_adj,
        last_eval, nbr_epoch, inc_epoch, dec_epoch,
        counters, phi, move_log, cost_buf, row_buf,
    ) -> int:
        return int(
            self._lib.game_round(
                _ptr(players, ctypes.c_int64), players.shape[0],
                k, lam_over_k, eps, relaxed,
                _ptr(indptr, ctypes.c_int64), _ptr(indices, ctypes.c_int64),
                _ptr(weights, ctypes.c_double), _ptr(internal, ctypes.c_double),
                _ptr(cut_degree, ctypes.c_double),
                _ptr(assignment, ctypes.c_int64), _ptr(loads, ctypes.c_double),
                _ptr(adj, ctypes.c_double), has_adj,
                _ptr(last_eval, ctypes.c_int64), _ptr(nbr_epoch, ctypes.c_int64),
                _ptr(inc_epoch, ctypes.c_int64), _ptr(dec_epoch, ctypes.c_int64),
                _ptr(counters, ctypes.c_int64), _ptr(phi, ctypes.c_double),
                _ptr(move_log, ctypes.c_int64),
                _ptr(cost_buf, ctypes.c_double), _ptr(row_buf, ctypes.c_double),
            )
        )

    def game_cost_rows(
        self, start, stop, k, lam_over_k,
        indptr, indices, weights, internal, cut_degree,
        assignment, loads, out,
    ) -> None:
        self._lib.game_cost_rows(
            start, stop, k, lam_over_k,
            _ptr(indptr, ctypes.c_int64), _ptr(indices, ctypes.c_int64),
            _ptr(weights, ctypes.c_double), _ptr(internal, ctypes.c_double),
            _ptr(cut_degree, ctypes.c_double),
            _ptr(assignment, ctypes.c_int64), _ptr(loads, ctypes.c_double),
            _ptr(out, ctypes.c_double),
        )

    def transform_chunk(
        self, u, v, k, vp, divided, deg, loads, caps, counters, check_mapped, out
    ) -> int:
        return int(
            self._lib.transform_chunk(
                _ptr(u, ctypes.c_int64), _ptr(v, ctypes.c_int64),
                u.shape[0], k,
                _ptr(vp, ctypes.c_int64), _ptr(divided, ctypes.c_uint8),
                _ptr(deg, ctypes.c_int64), _ptr(loads, ctypes.c_int64),
                _ptr(caps, ctypes.c_int64), _ptr(counters, ctypes.c_int64),
                1 if check_mapped else 0, _ptr(out, ctypes.c_int64),
            )
        )


def load() -> CcBackend | None:
    """Build (cached) and bind the C kernel library; None if impossible."""
    lib_path = _build(_SOURCE)
    if lib_path is None:
        return None
    try:
        return CcBackend(ctypes.CDLL(lib_path))
    except OSError:
        return None
