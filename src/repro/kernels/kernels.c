/* Scalar decision cores for the chunked streaming partitioners.
 *
 * Each function is a line-for-line transliteration of the corresponding
 * per-edge Python reference loop (see DESIGN.md section 8 for the
 * bit-identity argument):
 *
 *   hdrf_chunk        <- repro.partitioners.hdrf.HDRFPartitioner._assign
 *   greedy_chunk      <- repro.partitioners.greedy.GreedyPartitioner._assign
 *   clustering_chunk  <- repro.core.clustering.streaming_clustering
 *   transform_chunk   <- repro.core.transform.transform_partitions
 *                        (generalized to per-partition caps, matching
 *                        TransformState._scalar_tail)
 *   game_round        <- repro.core.game.ClusterPartitioningGame.run
 *                        (one fused best-response round, DESIGN.md s10)
 *   game_cost_rows    <- repro.core.game.ClusterPartitioningGame
 *                        .batch_cost_matrix
 *
 * All state crosses the boundary as flat C-contiguous arrays; vertex
 * partition sets are multiword uint64 bitmask rows (nw = ceil(k / 64)
 * words per vertex).  Integer kernels are bit-identical by construction;
 * hdrf_chunk keeps every floating-point expression in the reference's
 * evaluation order and must be compiled WITHOUT -ffast-math and with
 * -ffp-contract=off so IEEE double semantics match CPython's exactly.
 *
 * The same algorithms exist in numba-compilable Python form in
 * _pykernels.py; the two must be kept in lockstep.
 */

#include <stdint.h>

/* ------------------------------------------------------------------ */
/* HDRF: score all k partitions, first-maximum argmax (Petroni 2015)  */
/* ------------------------------------------------------------------ */

void hdrf_chunk(
    const int64_t *u, const int64_t *v, int64_t m,
    int64_t k, int64_t nw,
    double lam, double eps,
    double *loads, int64_t *degree, uint64_t *words,
    int64_t *out)
{
    for (int64_t i = 0; i < m; i++) {
        int64_t ui = u[i];
        int64_t vi = v[i];
        degree[ui] += 1;
        degree[vi] += 1;
        double du = (double)degree[ui];
        double dv = (double)degree[vi];
        double theta_u = du / (du + dv);
        double gu = 1.0 + (1.0 - theta_u);
        double gv = 1.0 + theta_u;
        double max_load = loads[0];
        double min_load = loads[0];
        for (int64_t p = 1; p < k; p++) {
            if (loads[p] > max_load) max_load = loads[p];
            if (loads[p] < min_load) min_load = loads[p];
        }
        double scale = lam / (eps + (max_load - min_load));
        const uint64_t *wu = words + ui * nw;
        const uint64_t *wv = words + vi * nw;
        int64_t best_p = 0;
        double best_score = -1e300;
        for (int64_t p = 0; p < k; p++) {
            double score = scale * (max_load - loads[p]);
            uint64_t bit = 1ULL << (p & 63);
            if (wu[p >> 6] & bit) score += gu;
            if (wv[p >> 6] & bit) score += gv;
            if (score > best_score) {
                best_score = score;
                best_p = p;
            }
        }
        out[i] = best_p;
        loads[best_p] += 1.0;
        uint64_t bit = 1ULL << (best_p & 63);
        words[ui * nw + (best_p >> 6)] |= bit;
        words[vi * nw + (best_p >> 6)] |= bit;
    }
}

/* ------------------------------------------------------------------ */
/* Greedy: PowerGraph coordinated placement (Gonzalez 2012)           */
/* ------------------------------------------------------------------ */

void greedy_chunk(
    const int64_t *u, const int64_t *v, int64_t m,
    int64_t k, int64_t nw,
    int64_t *loads, uint64_t *words,
    int64_t *out)
{
    for (int64_t i = 0; i < m; i++) {
        int64_t ui = u[i];
        int64_t vi = v[i];
        uint64_t *wu = words + ui * nw;
        uint64_t *wv = words + vi * nw;
        /* cases 1-3: candidates = A(u) & A(v), else A(u) | A(v) (either
         * side may be empty); argmin over candidate bits with the
         * (load, id) lexicographic tie-break = ascending p, strict < */
        int64_t best_p = -1;
        int64_t best_l = 0;
        int64_t any_common = 0;
        for (int64_t w = 0; w < nw; w++) {
            if (wu[w] & wv[w]) { any_common = 1; break; }
        }
        for (int64_t w = 0; w < nw; w++) {
            uint64_t cand = any_common ? (wu[w] & wv[w]) : (wu[w] | wv[w]);
            while (cand) {
                uint64_t bit = cand & (~cand + 1);
                int64_t p = w * 64 + __builtin_ctzll(cand);
                cand ^= bit;
                int64_t lp = loads[p];
                if (best_p < 0 || lp < best_l) {
                    best_l = lp;
                    best_p = p;
                }
            }
        }
        if (best_p < 0) {
            /* case 4: first least-loaded partition overall */
            best_p = 0;
            best_l = loads[0];
            for (int64_t p = 1; p < k; p++) {
                if (loads[p] < best_l) {
                    best_l = loads[p];
                    best_p = p;
                }
            }
        }
        out[i] = best_p;
        loads[best_p] += 1;
        uint64_t bit = 1ULL << (best_p & 63);
        wu[best_p >> 6] |= bit;
        wv[best_p >> 6] |= bit;
    }
}

/* ------------------------------------------------------------------ */
/* Pass 1: allocation / splitting / migration (Algorithm 2)           */
/* ------------------------------------------------------------------ */

/* counters: [num_raw, num_mirrors, splits, migrations, allocations].
 * num_mirrors indexes mirror_v / mirror_c (per-chunk buffers of
 * capacity >= 2 * m); vol must have capacity >= num_raw + 4 * m. */
void clustering_chunk(
    const int64_t *u, const int64_t *v, int64_t m,
    int64_t vmax, int64_t splitting,
    int64_t *clu, int64_t *deg, uint8_t *divided,
    int64_t *vol, int64_t *mirror_v, int64_t *mirror_c,
    int64_t *counters)
{
    int64_t next_raw = counters[0];
    int64_t n_mirrors = counters[1];
    int64_t splits = counters[2];
    int64_t migrations = counters[3];
    int64_t allocations = counters[4];
    for (int64_t i = 0; i < m; i++) {
        int64_t ui = u[i];
        int64_t vi = v[i];
        /* --- allocation --- */
        int64_t cu = clu[ui];
        if (cu == -1) {
            cu = next_raw++;
            vol[cu] = 0;
            clu[ui] = cu;
            allocations++;
        }
        int64_t cv = clu[vi];
        if (cv == -1) {
            cv = next_raw++;
            vol[cv] = 0;
            clu[vi] = cv;
            allocations++;
        }
        deg[ui] += 1;
        deg[vi] += 1;
        vol[cu] += 1;
        vol[cv] += 1;
        /* --- splitting --- */
        if (splitting && ui != vi) {
            int64_t du = deg[ui];
            if (vol[cu] >= vmax && 1 < du && du < vmax && !divided[ui]) {
                int64_t c_new = next_raw++;
                divided[ui] = 1;
                mirror_v[n_mirrors] = ui;
                mirror_c[n_mirrors] = cu;
                n_mirrors++;
                vol[cu] -= du;
                vol[c_new] = du;
                clu[ui] = c_new;
                splits++;
            }
            cv = clu[vi]; /* u's split may have lowered vol[cv] when cv == cu */
            int64_t dv = deg[vi];
            if (vol[cv] >= vmax && 1 < dv && dv < vmax && !divided[vi]) {
                int64_t c_new = next_raw++;
                divided[vi] = 1;
                mirror_v[n_mirrors] = vi;
                mirror_c[n_mirrors] = cv;
                n_mirrors++;
                vol[cv] -= dv;
                vol[c_new] = dv;
                clu[vi] = c_new;
                splits++;
            }
        }
        /* --- migration --- */
        cu = clu[ui];
        cv = clu[vi];
        if (cu != cv && vol[cu] < vmax && vol[cv] < vmax) {
            if (vol[cu] <= vol[cv]) {
                vol[cu] -= deg[ui];
                vol[cv] += deg[ui];
                clu[ui] = cv;
            } else {
                vol[cv] -= deg[vi];
                vol[cu] += deg[vi];
                clu[vi] = cu;
            }
            migrations++;
        }
    }
    counters[0] = next_raw;
    counters[1] = n_mirrors;
    counters[2] = splits;
    counters[3] = migrations;
    counters[4] = allocations;
}

/* ------------------------------------------------------------------ */
/* Pass 3: hard load cap + agreement / mirror / degree (Algorithm 1)  */
/* ------------------------------------------------------------------ */

/* counters: [spill_ptr, agreement, mirror_reuse, degree_cut,
 * balance_spill].  Returns 0 on success, 1 if no underfull partition
 * exists (unreachable when caps were validated to hold the stream),
 * 2 if check_mapped is set and some endpoint's vp entry is -1 (checked
 * up front, before any state mutation). */
int64_t transform_chunk(
    const int64_t *u, const int64_t *v, int64_t m, int64_t k,
    const int64_t *vp, const uint8_t *divided, const int64_t *deg,
    int64_t *loads, const int64_t *caps, int64_t *counters,
    int64_t check_mapped,
    int64_t *out)
{
    if (check_mapped) {
        for (int64_t i = 0; i < m; i++) {
            if (vp[u[i]] < 0 || vp[v[i]] < 0) return 2;
        }
    }
    int64_t sp = counters[0];
    int64_t agreement = counters[1];
    int64_t mirror_reuse = counters[2];
    int64_t degree_cut = counters[3];
    int64_t balance_spill = counters[4];
    for (int64_t i = 0; i < m; i++) {
        int64_t ui = u[i];
        int64_t vi = v[i];
        int64_t pu = vp[ui];
        int64_t pv = vp[vi];
        int64_t target;
        if (loads[pu] >= caps[pu] || loads[pv] >= caps[pv]) {
            if (loads[pu] < caps[pu]) {
                target = pu;
            } else if (loads[pv] < caps[pv]) {
                target = pv;
            } else {
                while (loads[sp] >= caps[sp]) {
                    sp++;
                    if (sp == k) return 1;
                }
                target = sp;
            }
            balance_spill++;
        } else if (pu == pv) {
            target = pu;
            agreement++;
        } else if (divided[ui] && !divided[vi]) {
            target = pv; /* u already has mirrors: cut u again */
            mirror_reuse++;
        } else if (divided[vi] && !divided[ui]) {
            target = pu;
            mirror_reuse++;
        } else {
            /* both or neither divided: cut the higher-degree endpoint */
            target = deg[vi] > deg[ui] ? pu : pv;
            degree_cut++;
        }
        out[i] = target;
        loads[target] += 1;
    }
    counters[0] = sp;
    counters[1] = agreement;
    counters[2] = mirror_reuse;
    counters[3] = degree_cut;
    counters[4] = balance_spill;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Pass 2: fused best-response round (Algorithm 3, DESIGN.md s10)     */
/* ------------------------------------------------------------------ */

/* One round over the player list.  Float expressions keep the exact
 * op sequence of ClusterPartitioningGame.run's in-place cost rewrite:
 * (loads[p] + size) * (lam_over_k * size) + (cut_degree - row) * 0.5,
 * with the current column (loads[cur] - size) + size; no -ffast-math,
 * -ffp-contract=off (no FMA contraction of the final multiply-add).
 *
 * adj is the flat (m, k) merged-adjacency table when has_adj != 0;
 * otherwise rows are rebuilt on demand from the symmetrized CSR (the
 * over-cap fallback) — same integer-valued sums either way.
 *
 * Skip rules (decision-preserving): last_eval[c] == move_counter means
 * zero moves anywhere since c last declined; with `relaxed`, c also
 * skips when nbr_epoch[c] <= last_eval[c] (no neighbor moved),
 * inc_epoch[cur] <= last_eval[c] (own partition gained no load) and
 * every other partition's dec_epoch <= last_eval[c] (no alternative
 * got cheaper) — requires lam_over_k >= 0, which the caller checks.
 *
 * phi = [sum(loads^2), total_partition_cut], updated per move by the
 * mover's exact delta (pre-move loads and adjacency row); counters =
 * [move_counter]; move_log records (cluster, target) pairs; cost_buf /
 * row_buf are k-sized scratch.  Returns the number of moves. */
int64_t game_round(
    const int64_t *players, int64_t n,
    int64_t k, double lam_over_k, double eps, int64_t relaxed,
    const int64_t *indptr, const int64_t *indices, const double *weights,
    const double *internal, const double *cut_degree,
    int64_t *assignment, double *loads,
    double *adj, int64_t has_adj,
    int64_t *last_eval, int64_t *nbr_epoch,
    int64_t *inc_epoch, int64_t *dec_epoch,
    int64_t *counters, double *phi, int64_t *move_log,
    double *cost_buf, double *row_buf)
{
    int64_t mc = counters[0];
    int64_t moves = 0;
    for (int64_t idx = 0; idx < n; idx++) {
        int64_t c = players[idx];
        int64_t le = last_eval[c];
        if (le == mc) continue;
        int64_t cur = assignment[c];
        if (relaxed && le >= 0 && nbr_epoch[c] <= le && inc_epoch[cur] <= le) {
            int64_t ok = 1;
            for (int64_t p = 0; p < k; p++) {
                if (p != cur && dec_epoch[p] > le) { ok = 0; break; }
            }
            if (ok) {
                /* the prior no-move decision provably stands now */
                last_eval[c] = mc;
                continue;
            }
        }
        last_eval[c] = mc;
        double size = internal[c];
        if (has_adj) {
            const double *row = adj + c * k;
            for (int64_t p = 0; p < k; p++) row_buf[p] = row[p];
        } else {
            for (int64_t p = 0; p < k; p++) row_buf[p] = 0.0;
            for (int64_t j = indptr[c]; j < indptr[c + 1]; j++)
                row_buf[assignment[indices[j]]] += weights[j];
        }
        double a = lam_over_k * size;
        int64_t best = 0;
        double best_cost = 0.0;
        for (int64_t p = 0; p < k; p++) {
            double t = loads[p] + size;
            if (p == cur) t = (loads[cur] - size) + size;
            double cost = t * a + (cut_degree[c] - row_buf[p]) * 0.5;
            cost_buf[p] = cost;
            if (p == 0 || cost < best_cost) {
                best_cost = cost;
                best = p;
            }
        }
        if (best_cost < cost_buf[cur] - eps) {
            double l_cur = loads[cur];
            double l_best = loads[best];
            phi[0] += (l_cur - size) * (l_cur - size) - l_cur * l_cur;
            phi[0] += (l_best + size) * (l_best + size) - l_best * l_best;
            phi[1] += row_buf[cur] - row_buf[best];
            loads[cur] = l_cur - size;
            loads[best] = l_best + size;
            assignment[c] = best;
            mc++;
            for (int64_t j = indptr[c]; j < indptr[c + 1]; j++) {
                int64_t nb = indices[j];
                double w = weights[j];
                if (has_adj) {
                    adj[nb * k + cur] -= w;
                    adj[nb * k + best] += w;
                }
                nbr_epoch[nb] = mc;
            }
            dec_epoch[cur] = mc;
            inc_epoch[best] = mc;
            move_log[2 * moves] = c;
            move_log[2 * moves + 1] = best;
            moves++;
            last_eval[c] = -1; /* movers are always re-evaluated */
        }
    }
    counters[0] = mc;
    return moves;
}

/* Batched cost rows of clusters [start, stop) against a frozen state —
 * the compiled form of batch_cost_matrix; out is the flat
 * (stop - start, k) cost matrix. */
void game_cost_rows(
    int64_t start, int64_t stop, int64_t k, double lam_over_k,
    const int64_t *indptr, const int64_t *indices, const double *weights,
    const double *internal, const double *cut_degree,
    const int64_t *assignment, const double *loads,
    double *out)
{
    for (int64_t c = start; c < stop; c++) {
        double *row = out + (c - start) * k;
        for (int64_t p = 0; p < k; p++) row[p] = 0.0;
        for (int64_t j = indptr[c]; j < indptr[c + 1]; j++)
            row[assignment[indices[j]]] += weights[j];
        double size = internal[c];
        double a = lam_over_k * size;
        int64_t cur = assignment[c];
        for (int64_t p = 0; p < k; p++) {
            double t = loads[p] + size;
            if (p == cur) t = (loads[cur] - size) + size;
            row[p] = t * a + (cut_degree[c] - row[p]) * 0.5;
        }
    }
}
