"""JIT-accelerated scalar decision cores (`chunk_impl="jit"` backends).

The chunked partitioners keep three scalar hot loops that DESIGN.md §4.3
proved cannot be bulk-committed bit-identically: the HDRF decision core,
the greedy decision core, and CLUGP's pass-1 allocation/splitting/
migration replay (plus the pass-3 transform tail).  This package holds
compiled implementations of those loops behind one numpy-level API, so
``chunk_impl="jit"`` can dispatch whole chunks into machine code while
remaining bit-identical to the per-edge references.

Backends, in ``"auto"`` resolution order:

* ``"numba"`` — ``@njit`` over :mod:`._pykernels` (needs the ``[jit]``
  extra installed);
* ``"cc"`` — ``kernels.c`` compiled at first use with the system C
  compiler and bound via ctypes;
* ``"python"`` — the plain-Python :mod:`._pykernels` functions.  Never
  selected by ``"auto"`` (it is *slower* than the numpy fast path); it
  exists so tests can exercise the kernel glue everywhere;
* ``"none"`` — explicit empty resolution, forcing callers onto their
  numpy fallback.

Importing this package never hard-fails: with neither numba nor a C
compiler present, :func:`available` is False, :func:`get_backend`
returns None, and ``chunk_impl="jit"`` silently degrades to the
``"fast"`` numpy path.  The ``CLUGP_KERNEL_BACKEND`` environment
variable overrides the default resolution (same values as
``kernel_backend``).

:func:`warmup` triggers every deferred compile (numba nopython build or
the one-off ``cc`` invocation) and runs each kernel once on tiny inputs,
so benchmark timing regions never include compiler time.
"""

from __future__ import annotations

import logging
import os
from typing import Any

import numpy as np

from . import _pykernels

__all__ = [
    "BACKEND_NAMES",
    "ENV_REQUIRE",
    "KernelUnavailableError",
    "available",
    "backend_name",
    "get_backend",
    "popcount",
    "warmup",
]

logger = logging.getLogger("repro.kernels")

#: set to ``1``/``true`` to make silent kernel degradation a hard error
ENV_REQUIRE = "CLUGP_KERNEL_REQUIRE"


class KernelUnavailableError(RuntimeError):
    """Raised in strict mode when no compiled kernel backend resolves."""


def popcount(words: np.ndarray) -> int:
    """Total set bits in a uint64 array (replica accounting at finish)."""
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(words).sum())
    return int(np.unpackbits(words.view(np.uint8)).sum())  # numpy < 2.0

BACKEND_NAMES = ("auto", "numba", "cc", "python", "none")

_AUTO_ORDER = ("numba", "cc")


class PythonBackend:
    """Plain-Python kernels; the always-available glue-test backend."""

    name = "python"

    hdrf_chunk = staticmethod(_pykernels.hdrf_chunk)
    greedy_chunk = staticmethod(_pykernels.greedy_chunk)
    clustering_chunk = staticmethod(_pykernels.clustering_chunk)
    transform_chunk = staticmethod(_pykernels.transform_chunk)
    game_round = staticmethod(_pykernels.game_round)
    game_cost_rows = staticmethod(_pykernels.game_cost_rows)


_cache: dict[str, Any] = {}
_failures: dict[str, str] = {}
_warned_degraded = False


def _load(name: str) -> Any:
    """Load one concrete backend by name, memoized (None on failure)."""
    if name in _cache:
        return _cache[name]
    backend = None
    if name == "numba":
        from . import _numba_backend

        backend = _numba_backend.load()
        if backend is None:
            _failures[name] = "numba not importable (or broken install)"
    elif name == "cc":
        from . import _cc_backend

        backend = _cc_backend.load()
        if backend is None:
            _failures[name] = "no working C compiler, or compile/bind failed"
    elif name == "python":
        backend = PythonBackend()
    _cache[name] = backend
    return backend


def _require_enabled() -> bool:
    """True when the environment demands a compiled backend."""
    return os.environ.get(ENV_REQUIRE, "").strip().lower() in {"1", "true", "yes"}


def _degraded(requested: str, strict: bool):
    """Handle a failed resolution: warn once, raise when strict."""
    global _warned_degraded
    detail = "; ".join(
        f"{cand}: {_failures.get(cand, 'not attempted')}" for cand in _AUTO_ORDER
    )
    if strict or _require_enabled():
        raise KernelUnavailableError(
            f"kernel backend {requested!r} is unavailable ({detail}) and a "
            f"compiled backend was required (strict=True or {ENV_REQUIRE}=1)"
        )
    if not _warned_degraded:
        _warned_degraded = True
        logger.warning(
            "no compiled kernel backend available (%s); "
            "chunk_impl='jit' degrades to the numpy fast path",
            detail,
        )
    return None


def get_backend(name: str | None = None, strict: bool = False) -> Any:
    """Resolve a kernel backend; None means "use the numpy fallback".

    ``name`` is one of :data:`BACKEND_NAMES` (None means ``"auto"``).
    ``"auto"`` honours the ``CLUGP_KERNEL_BACKEND`` environment variable,
    then tries numba and the C backend in order; ``"python"`` and
    ``"none"`` are explicit-only.

    Asking for a backend that is unavailable normally returns None —
    jit mode degrades gracefully to the numpy path, with a one-time
    warning naming each backend that failed and why.  With
    ``strict=True`` (or ``CLUGP_KERNEL_REQUIRE=1`` in the environment)
    the degradation becomes a :class:`KernelUnavailableError` instead —
    for deployments where silently losing the compiled kernels would
    invalidate a benchmark.  An explicit ``"none"`` is an intentional
    resolution of nothing and never raises.
    """
    if name is None:
        name = "auto"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if name == "auto":
        env = os.environ.get("CLUGP_KERNEL_BACKEND", "").strip().lower()
        if env and env != "auto":
            if env not in BACKEND_NAMES:
                raise ValueError(
                    f"CLUGP_KERNEL_BACKEND={env!r} is not one of {BACKEND_NAMES}"
                )
            return get_backend(env, strict=strict)
        for candidate in _AUTO_ORDER:
            backend = _load(candidate)
            if backend is not None:
                return backend
        return _degraded(name, strict)
    if name == "none":
        return None
    backend = _load(name)
    if backend is None:
        return _degraded(name, strict)
    return backend


def available() -> bool:
    """True when a *compiled* backend (numba or cc) can be resolved."""
    return any(_load(candidate) is not None for candidate in _AUTO_ORDER)


def backend_name(name: str | None = None) -> str | None:
    """Name of the backend :func:`get_backend` would return (or None)."""
    backend = get_backend(name)
    return None if backend is None else backend.name


_warmed: set[str] = set()


def warmup(name: str | None = None) -> str | None:
    """One-shot compile + tiny-input run of every kernel.

    Returns the resolved backend name (None if no backend is available,
    in which case there is nothing to warm).  Idempotent per backend, so
    benchmark harnesses can call it unconditionally before timing.
    """
    backend = get_backend(name)
    if backend is None:
        return None
    if backend.name in _warmed:
        return backend.name
    k, nw, n = 2, 1, 4
    u = np.array([0, 2], dtype=np.int64)
    v = np.array([1, 3], dtype=np.int64)
    out = np.zeros(2, dtype=np.int64)
    backend.hdrf_chunk(
        u, v, k, nw, 1.0, 1.0,
        np.zeros(k, dtype=np.float64), np.zeros(n, dtype=np.int64),
        np.zeros(n * nw, dtype=np.uint64), out,
    )
    backend.greedy_chunk(
        u, v, k, nw,
        np.zeros(k, dtype=np.int64), np.zeros(n * nw, dtype=np.uint64), out,
    )
    backend.clustering_chunk(
        u, v, 4, 1,
        np.full(n, -1, dtype=np.int64), np.zeros(n, dtype=np.int64),
        np.zeros(n, dtype=np.uint8), np.zeros(16, dtype=np.int64),
        np.zeros(8, dtype=np.int64), np.zeros(8, dtype=np.int64),
        np.zeros(5, dtype=np.int64),
    )
    backend.transform_chunk(
        u, v, k,
        np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.uint8),
        np.ones(n, dtype=np.int64), np.zeros(k, dtype=np.int64),
        np.full(k, 8, dtype=np.int64), np.zeros(5, dtype=np.int64),
        1, out,
    )
    # tiny 2-cluster game: one undirected inter-cluster edge, k=2
    g_indptr = np.array([0, 1, 2], dtype=np.int64)
    g_indices = np.array([1, 0], dtype=np.int64)
    g_weights = np.ones(2, dtype=np.float64)
    g_internal = np.ones(2, dtype=np.float64)
    g_cut = np.ones(2, dtype=np.float64)
    g_assign = np.array([0, 1], dtype=np.int64)
    g_loads = np.array([1.0, 1.0])
    backend.game_round(
        np.arange(2, dtype=np.int64), k, 0.5, 1e-9, 1,
        g_indptr, g_indices, g_weights, g_internal, g_cut,
        g_assign, g_loads, np.zeros(2 * k, dtype=np.float64), 1,
        np.full(2, -1, dtype=np.int64), np.zeros(2, dtype=np.int64),
        np.zeros(k, dtype=np.int64), np.zeros(k, dtype=np.int64),
        np.zeros(1, dtype=np.int64), np.zeros(2, dtype=np.float64),
        np.zeros(4, dtype=np.int64),
        np.zeros(k, dtype=np.float64), np.zeros(k, dtype=np.float64),
    )
    backend.game_cost_rows(
        0, 2, k, 0.5,
        g_indptr, g_indices, g_weights, g_internal, g_cut,
        g_assign, g_loads, np.zeros(2 * k, dtype=np.float64),
    )
    _warmed.add(backend.name)
    return backend.name
