"""Numba-compilable Python form of the scalar decision cores.

These four functions are the *source* of the numba backend (``@njit`` is
applied to them unchanged by :mod:`._numba_backend`) and double as the
pure-Python ``"python"`` backend — always importable, never fast, used by
the tests to exercise the kernel call paths on machines with neither
numba nor a C compiler.

Each function is a line-for-line transliteration of the corresponding
per-edge reference loop (the same algorithms as ``kernels.c``; the two
files must be kept in lockstep — see DESIGN.md §8):

* :func:`hdrf_chunk` — ``HDRFPartitioner._assign``;
* :func:`greedy_chunk` — ``GreedyPartitioner._assign``;
* :func:`clustering_chunk` — :func:`repro.core.clustering.streaming_clustering`;
* :func:`transform_chunk` — :func:`repro.core.transform.transform_partitions`
  (generalized to per-partition caps, matching
  ``TransformState._scalar_tail``);
* :func:`game_round` — one fused best-response round of
  ``repro.core.game.ClusterPartitioningGame.run`` (pass 2, Algorithm 3),
  with the decision-preserving epoch skip rule and O(1) potential
  maintenance (DESIGN.md §10);
* :func:`game_cost_rows` — the batched cost-row primitive behind
  ``ClusterPartitioningGame.batch_cost_matrix``.

Conventions shared with the C kernels: vertex partition sets are flat
multiword uint64 bitmask rows (``nw = ceil(k / 64)`` words per vertex,
vertex ``x`` owns ``words[x * nw : (x + 1) * nw]``); counters cross the
boundary in small int64 arrays so one signature fits nopython mode,
ctypes, and plain Python.  Only nopython-subset constructs are used —
no Python int bitmasks, no lists, no dicts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hdrf_chunk",
    "greedy_chunk",
    "clustering_chunk",
    "transform_chunk",
    "game_round",
    "game_cost_rows",
]

_ONE = np.uint64(1)
_U6 = np.uint64(6)  # word index shift (p >> 6 == p // 64)
_M63 = np.uint64(63)


def hdrf_chunk(u, v, k, nw, lam, eps, loads, degree, words, out):
    """HDRF decision core over one chunk (mutates loads/degree/words)."""
    m = u.shape[0]
    for i in range(m):
        ui = u[i]
        vi = v[i]
        degree[ui] += 1
        degree[vi] += 1
        du = degree[ui]
        dv = degree[vi]
        theta_u = du / (du + dv)
        gu = 1.0 + (1.0 - theta_u)
        gv = 1.0 + theta_u
        max_load = loads[0]
        min_load = loads[0]
        for p in range(1, k):
            if loads[p] > max_load:
                max_load = loads[p]
            if loads[p] < min_load:
                min_load = loads[p]
        scale = lam / (eps + (max_load - min_load))
        base_u = ui * nw
        base_v = vi * nw
        best_p = 0
        best_score = -1e300
        for p in range(k):
            score = scale * (max_load - loads[p])
            pw = np.uint64(p)
            bit = _ONE << (pw & _M63)
            if words[base_u + (p >> 6)] & bit:
                score += gu
            if words[base_v + (p >> 6)] & bit:
                score += gv
            if score > best_score:
                best_score = score
                best_p = p
        out[i] = best_p
        loads[best_p] += 1.0
        bw = np.uint64(best_p)
        bit = _ONE << (bw & _M63)
        words[base_u + (best_p >> 6)] |= bit
        words[base_v + (best_p >> 6)] |= bit


def greedy_chunk(u, v, k, nw, loads, words, out):
    """Greedy decision core over one chunk (mutates loads/words)."""
    m = u.shape[0]
    for i in range(m):
        ui = u[i]
        vi = v[i]
        base_u = ui * nw
        base_v = vi * nw
        any_common = False
        for w in range(nw):
            if words[base_u + w] & words[base_v + w]:
                any_common = True
                break
        # cases 1-3: argmin load over the candidate bits, ascending p with
        # strict < (the (load, id) lexicographic rule); case 4: first
        # least-loaded partition overall
        best_p = -1
        best_l = 0
        for p in range(k):
            pw = np.uint64(p)
            bit = _ONE << (pw & _M63)
            wu = words[base_u + (p >> 6)]
            wv = words[base_v + (p >> 6)]
            member = (wu & wv & bit) if any_common else ((wu | wv) & bit)
            if member:
                lp = loads[p]
                if best_p < 0 or lp < best_l:
                    best_l = lp
                    best_p = p
        if best_p < 0:
            best_p = 0
            best_l = loads[0]
            for p in range(1, k):
                if loads[p] < best_l:
                    best_l = loads[p]
                    best_p = p
        out[i] = best_p
        loads[best_p] += 1
        bw = np.uint64(best_p)
        bit = _ONE << (bw & _M63)
        words[base_u + (best_p >> 6)] |= bit
        words[base_v + (best_p >> 6)] |= bit


def clustering_chunk(
    u, v, vmax, splitting, clu, deg, divided, vol, mirror_v, mirror_c, counters
):
    """Pass-1 allocation/splitting/migration replay over one chunk.

    ``counters``: ``[num_raw, num_mirrors, splits, migrations,
    allocations]``; ``vol`` needs capacity ``num_raw + 4 * m`` and the
    mirror buffers ``2 * m`` (the caller guarantees both).
    """
    m = u.shape[0]
    next_raw = counters[0]
    n_mirrors = counters[1]
    splits = counters[2]
    migrations = counters[3]
    allocations = counters[4]
    for i in range(m):
        ui = u[i]
        vi = v[i]
        # --- allocation ---
        cu = clu[ui]
        if cu == -1:
            cu = next_raw
            next_raw += 1
            vol[cu] = 0
            clu[ui] = cu
            allocations += 1
        cv = clu[vi]
        if cv == -1:
            cv = next_raw
            next_raw += 1
            vol[cv] = 0
            clu[vi] = cv
            allocations += 1
        deg[ui] += 1
        deg[vi] += 1
        vol[cu] += 1
        vol[cv] += 1
        # --- splitting ---
        if splitting and ui != vi:
            du = deg[ui]
            if vol[cu] >= vmax and 1 < du < vmax and not divided[ui]:
                c_new = next_raw
                next_raw += 1
                divided[ui] = 1
                mirror_v[n_mirrors] = ui
                mirror_c[n_mirrors] = cu
                n_mirrors += 1
                vol[cu] -= du
                vol[c_new] = du
                clu[ui] = c_new
                splits += 1
            cv = clu[vi]  # u's split may have lowered vol[cv] when cv == cu
            dv = deg[vi]
            if vol[cv] >= vmax and 1 < dv < vmax and not divided[vi]:
                c_new = next_raw
                next_raw += 1
                divided[vi] = 1
                mirror_v[n_mirrors] = vi
                mirror_c[n_mirrors] = cv
                n_mirrors += 1
                vol[cv] -= dv
                vol[c_new] = dv
                clu[vi] = c_new
                splits += 1
        # --- migration ---
        cu = clu[ui]
        cv = clu[vi]
        if cu != cv and vol[cu] < vmax and vol[cv] < vmax:
            if vol[cu] <= vol[cv]:
                vol[cu] -= deg[ui]
                vol[cv] += deg[ui]
                clu[ui] = cv
            else:
                vol[cv] -= deg[vi]
                vol[cu] += deg[vi]
                clu[vi] = cu
            migrations += 1
    counters[0] = next_raw
    counters[1] = n_mirrors
    counters[2] = splits
    counters[3] = migrations
    counters[4] = allocations


def transform_chunk(u, v, k, vp, divided, deg, loads, caps, counters, check_mapped, out):
    """Pass-3 cap/agreement/mirror/degree replay over one chunk.

    ``counters``: ``[spill_ptr, agreement, mirror_reuse, degree_cut,
    balance_spill]``.  Returns 0 on success, 1 when no underfull
    partition exists (unreachable once caps were validated to hold the
    stream), 2 when ``check_mapped`` is set and an endpoint maps to -1
    (checked up front, before any state mutation).
    """
    m = u.shape[0]
    if check_mapped:
        for i in range(m):
            if vp[u[i]] < 0 or vp[v[i]] < 0:
                return 2
    sp = counters[0]
    agreement = counters[1]
    mirror_reuse = counters[2]
    degree_cut = counters[3]
    balance_spill = counters[4]
    for i in range(m):
        ui = u[i]
        vi = v[i]
        pu = vp[ui]
        pv = vp[vi]
        if loads[pu] >= caps[pu] or loads[pv] >= caps[pv]:
            if loads[pu] < caps[pu]:
                target = pu
            elif loads[pv] < caps[pv]:
                target = pv
            else:
                while loads[sp] >= caps[sp]:
                    sp += 1
                    if sp == k:
                        counters[0] = sp
                        return 1
                target = sp
            balance_spill += 1
        elif pu == pv:
            target = pu
            agreement += 1
        elif divided[ui] and not divided[vi]:
            target = pv  # u already has mirrors: cut u again
            mirror_reuse += 1
        elif divided[vi] and not divided[ui]:
            target = pu
            mirror_reuse += 1
        else:
            # both or neither divided: cut the higher-degree endpoint
            target = pu if deg[vi] > deg[ui] else pv
            degree_cut += 1
        out[i] = target
        loads[target] += 1
    counters[0] = sp
    counters[1] = agreement
    counters[2] = mirror_reuse
    counters[3] = degree_cut
    counters[4] = balance_spill
    return 0


def game_round(
    players, k, lam_over_k, eps, relaxed,
    indptr, indices, weights, internal, cut_degree,
    assignment, loads, adj, has_adj,
    last_eval, nbr_epoch, inc_epoch, dec_epoch,
    counters, phi, move_log, cost_buf, row_buf,
):
    """One best-response round over ``players`` (mutates the game state).

    Transliteration of the in-place cost rewrite in
    ``ClusterPartitioningGame.run``: per cluster the k-vector
    ``(loads + size) * (lam_over_k * size) + (cut_degree - adj_row) * 0.5``
    (current column ``(loads[cur] - size) + size``), first-minimum argmin,
    strict-improvement test against ``eps``, move commit, and the O(deg)
    adjacency-table update.  ``adj`` is the flat ``(m, k)`` table when
    ``has_adj`` is set; otherwise rows are rebuilt on demand from the
    symmetrized CSR (the over-cap fallback), which changes nothing — the
    table entries are the same integer-valued sums.

    Skip rules (both decision-preserving, DESIGN.md §10): a cluster whose
    ``last_eval`` equals the move counter has seen zero moves anywhere
    since it last declined; with ``relaxed`` set, a cluster also skips
    when no neighbor moved (``nbr_epoch``), its own partition gained no
    load (``inc_epoch``), and no other partition lost load
    (``dec_epoch``) since its last evaluation — its stay cost can only
    have dropped and every alternative can only have risen.

    O(1) potential maintenance: ``phi`` carries ``[sum(loads^2),
    total_partition_cut]``; each move updates both by the mover's exact
    delta (pre-move loads, pre-move adjacency row), so the caller prices
    ``Phi`` per round without the O(|E|) recompute.

    ``counters``: ``[move_counter]``.  ``move_log`` records ``(cluster,
    target)`` pairs for the round's moves.  ``cost_buf``/``row_buf`` are
    k-sized scratch.  Returns the number of moves committed.
    """
    n = players.shape[0]
    mc = counters[0]
    moves = 0
    for idx in range(n):
        c = players[idx]
        le = last_eval[c]
        if le == mc:
            continue
        cur = assignment[c]
        if relaxed != 0 and le >= 0 and nbr_epoch[c] <= le and inc_epoch[cur] <= le:
            ok = True
            for p in range(k):
                if p != cur and dec_epoch[p] > le:
                    ok = False
                    break
            if ok:
                # the prior no-move decision provably stands at the
                # current state, so it counts as an evaluation *now*
                last_eval[c] = mc
                continue
        last_eval[c] = mc
        size = internal[c]
        if has_adj != 0:
            base = c * k
            for p in range(k):
                row_buf[p] = adj[base + p]
        else:
            for p in range(k):
                row_buf[p] = 0.0
            for j in range(indptr[c], indptr[c + 1]):
                row_buf[assignment[indices[j]]] += weights[j]
        a = lam_over_k * size
        best = 0
        best_cost = 0.0
        for p in range(k):
            t = loads[p] + size
            if p == cur:
                t = (loads[cur] - size) + size
            cost = t * a + (cut_degree[c] - row_buf[p]) * 0.5
            cost_buf[p] = cost
            if p == 0 or cost < best_cost:
                best_cost = cost
                best = p
        if best_cost < cost_buf[cur] - eps:
            l_cur = loads[cur]
            l_best = loads[best]
            phi[0] += (l_cur - size) * (l_cur - size) - l_cur * l_cur
            phi[0] += (l_best + size) * (l_best + size) - l_best * l_best
            phi[1] += row_buf[cur] - row_buf[best]
            loads[cur] = l_cur - size
            loads[best] = l_best + size
            assignment[c] = best
            mc += 1
            for j in range(indptr[c], indptr[c + 1]):
                nb = indices[j]
                w = weights[j]
                if has_adj != 0:
                    adj[nb * k + cur] -= w
                    adj[nb * k + best] += w
                nbr_epoch[nb] = mc
            dec_epoch[cur] = mc
            inc_epoch[best] = mc
            move_log[2 * moves] = c
            move_log[2 * moves + 1] = best
            moves += 1
            last_eval[c] = -1  # movers are always re-evaluated
    counters[0] = mc
    return moves


def game_cost_rows(
    start, stop, k, lam_over_k,
    indptr, indices, weights, internal, cut_degree,
    assignment, loads, out,
):
    """Cost rows of clusters ``[start, stop)`` against a frozen state.

    Compiled form of ``ClusterPartitioningGame.batch_cost_matrix`` —
    ``out`` is the flat ``(stop - start, k)`` cost matrix, bit-identical
    to the numpy path (same per-element IEEE op sequence; the adjacency
    accumulation is an integer sum, exact in any order).
    """
    for c in range(start, stop):
        base = (c - start) * k
        for p in range(k):
            out[base + p] = 0.0
        for j in range(indptr[c], indptr[c + 1]):
            out[base + assignment[indices[j]]] += weights[j]
        size = internal[c]
        a = lam_over_k * size
        cur = assignment[c]
        for p in range(k):
            t = loads[p] + size
            if p == cur:
                t = (loads[cur] - size) + size
            out[base + p] = t * a + (cut_degree[c] - out[base + p]) * 0.5
