"""Reusable sweep machinery behind the per-figure benchmarks.

Every figure in the paper's evaluation is a sweep of one knob (number of
partitions, graph size, thread count, tau, relative weight) against one or
more metrics (replication factor, runtime, memory, PageRank cost) across
the competitor set.  This module provides those sweeps once, so each
``benchmarks/bench_fig*.py`` file is a thin, readable driver that prints
the same series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..graph.stream import EdgeStream
from ..partitioners.base import EdgePartitioner, PartitionAssignment
from ..partitioners.registry import make_partitioner
from ..system import make_engine
from ..system.engine import RunCost
from ..system.network import NetworkModel
from ..system.apps.pagerank import pagerank

__all__ = [
    "DEFAULT_ALGORITHMS",
    "SweepResult",
    "run_algorithm",
    "clugp_stage_times",
    "rf_vs_partitions",
    "runtime_vs_partitions",
    "memory_vs_partitions",
    "pagerank_costs",
    "distributed_merge_sweep",
    "series_table",
]

#: the Table I competitor set, in the paper's order
DEFAULT_ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")


@dataclass
class SweepResult:
    """A (x-value -> algorithm -> metric) grid with a table printer."""

    x_name: str
    metric_name: str
    x_values: list = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def add(self, algorithm: str, x, value: float) -> None:
        if x not in self.x_values:
            self.x_values.append(x)
        self.series.setdefault(algorithm, []).append(float(value))

    def get(self, algorithm: str, x) -> float:
        return self.series[algorithm][self.x_values.index(x)]

    def winner_at(self, x) -> str:
        """Algorithm with the lowest metric at ``x``."""
        idx = self.x_values.index(x)
        return min(self.series, key=lambda a: self.series[a][idx])

    def __str__(self) -> str:
        headers = [f"{self.metric_name} \\ {self.x_name}"] + [
            str(x) for x in self.x_values
        ]
        rows = [
            (name,) + tuple(f"{v:.3f}" for v in values)
            for name, values in self.series.items()
        ]
        return format_table(headers, rows)


def series_table(result: SweepResult, title: str = "") -> str:
    """Render a sweep as the paper-style series table."""
    body = str(result)
    return f"{title}\n{body}" if title else body


def run_algorithm(
    name: str,
    stream: EdgeStream,
    num_partitions: int,
    seed: int = 0,
    order_seed: int = 0,
    use_preferred_order: bool = True,
    ingest: str = "default",
    chunk_size: int | None = None,
    **kwargs,
) -> tuple[EdgePartitioner, PartitionAssignment]:
    """Instantiate + run one registered algorithm under its best order.

    ``ingest`` selects the ingestion path: ``"default"`` (the algorithm's
    native :meth:`~EdgePartitioner.partition`), ``"chunked"`` (vectorized
    ``(m, 2)`` chunk ingestion, optionally sized by ``chunk_size``), or
    ``"per-edge"`` (the reference one-edge-at-a-time loop).  All three
    produce identical assignments; they differ only in speed.
    """
    partitioner = make_partitioner(name, num_partitions, seed=seed, **kwargs)
    if use_preferred_order and partitioner.preferred_order != "natural":
        stream = stream.reordered(partitioner.preferred_order, seed=order_seed)
    if ingest == "default":
        assignment = partitioner.partition(stream)
    elif ingest == "chunked":
        assignment = partitioner.partition_chunked(stream, chunk_size=chunk_size)
    elif ingest == "per-edge":
        assignment = partitioner.partition_per_edge(stream)
    else:
        raise ValueError(
            f"ingest must be 'default', 'chunked', or 'per-edge', got {ingest!r}"
        )
    return partitioner, assignment


def clugp_stage_times(
    stream: EdgeStream,
    num_partitions: int,
    variant: str = "clugp",
    seed: int = 0,
    chunk_size: int = 1 << 16,
    repeats: int = 3,
    chunk_impl: str = "fast",
    kernel_backend: str = "auto",
    game_impl: str = "fast",
) -> dict[str, dict[str, float]]:
    """Best-of-``repeats`` per-pass wall-clock of one CLUGP variant.

    Returns ``{"per-edge": {...}, "chunked": {...}}`` where each inner dict
    maps pass name (``clustering`` / ``game`` / ``transform``) and
    ``total`` to seconds.  The per-edge side times the retained reference
    loops (:func:`repro.core.clustering.streaming_clustering`, the
    per-neighbor game scorer,
    :func:`repro.core.transform.transform_partitions`); the chunked side
    times the vectorized chunk engines (:class:`ClusteringState`, the
    CSR/adjacency-table game — or, with ``game_impl="jit"``, the fused
    compiled rounds — and :class:`TransformState`) running
    ``chunk_impl`` (``"fast"``/``"reference"``/``"jit"``).  Both paths
    are asserted bit-identical before timings are returned.
    """
    import numpy as np

    from .._util import Timer
    from ..core.clustering import ClusteringState, streaming_clustering
    from ..core.cluster_graph import build_cluster_graph
    from ..core.transform import TransformState, transform_partitions

    partitioner = make_partitioner(
        variant, num_partitions, seed=seed,
        kernel_backend=kernel_backend, game_impl=game_impl,
    )
    cfg = partitioner.config
    vmax = cfg.resolve_vmax(stream.num_edges)
    baseline = None
    results: dict[str, dict[str, float]] = {}
    for ingest in ("per-edge", "chunked"):
        stages: dict[str, float] = {}
        for _ in range(repeats):
            partitioner = make_partitioner(
                variant, num_partitions, seed=seed,
                kernel_backend=kernel_backend, game_impl=game_impl,
            )
            if ingest == "per-edge":
                with Timer() as t1:
                    clustering = streaming_clustering(
                        stream, vmax, enable_splitting=cfg.enable_splitting
                    )
                with Timer() as t2:
                    cluster_graph = build_cluster_graph(stream, clustering)
                    game = partitioner._map_clusters(cluster_graph, vectorized=False)
                with Timer() as t3:
                    edge_partition, _ = transform_partitions(
                        stream,
                        clustering,
                        game.assignment,
                        cfg.num_partitions,
                        imbalance_factor=cfg.imbalance_factor,
                    )
            else:
                with Timer() as t1:
                    state = ClusteringState(
                        stream.num_vertices,
                        vmax,
                        enable_splitting=cfg.enable_splitting,
                        chunk_impl=chunk_impl,
                        kernel_backend=kernel_backend,
                    )
                    for src, dst in stream.batches(chunk_size):
                        state.ingest_pair(src, dst)
                    clustering = state.finalize()
                with Timer() as t2:
                    cluster_graph = build_cluster_graph(stream, clustering)
                    game = partitioner._map_clusters(cluster_graph)
                with Timer() as t3:
                    transform = TransformState(
                        clustering,
                        game.assignment,
                        cfg.num_partitions,
                        num_edges=stream.num_edges,
                        num_vertices=stream.num_vertices,
                        imbalance_factor=cfg.imbalance_factor,
                        chunk_impl=chunk_impl,
                        kernel_backend=kernel_backend,
                    )
                    parts = [
                        transform.ingest_pair(src, dst)
                        for src, dst in stream.batches(chunk_size)
                    ]
                    edge_partition = (
                        np.concatenate(parts)
                        if parts
                        else np.empty(0, dtype=np.int64)
                    )
            run_stages = {
                "clustering": t1.elapsed,
                "game": t2.elapsed,
                "transform": t3.elapsed,
                "total": t1.elapsed + t2.elapsed + t3.elapsed,
            }
            for name, seconds in run_stages.items():
                stages[name] = min(stages.get(name, float("inf")), seconds)
        if baseline is None:
            baseline = edge_partition
        elif not np.array_equal(baseline, edge_partition):
            raise AssertionError(
                f"{variant}: chunked and per-edge assignments diverged"
            )
        results[ingest] = stages
    return results


def rf_vs_partitions(
    stream: EdgeStream,
    partition_counts: list[int],
    algorithms=DEFAULT_ALGORITHMS,
    seed: int = 0,
) -> SweepResult:
    """Figure 3/4(a): replication factor vs number of partitions."""
    result = SweepResult(x_name="k", metric_name="RF")
    for k in partition_counts:
        for name in algorithms:
            _, assignment = run_algorithm(name, stream, k, seed=seed)
            result.add(name, k, assignment.replication_factor())
    return result


def runtime_vs_partitions(
    stream: EdgeStream,
    partition_counts: list[int],
    algorithms=DEFAULT_ALGORITHMS,
    seed: int = 0,
) -> SweepResult:
    """Figure 7: partitioning wall-clock vs number of partitions."""
    result = SweepResult(x_name="k", metric_name="seconds")
    for k in partition_counts:
        for name in algorithms:
            _, assignment = run_algorithm(name, stream, k, seed=seed)
            result.add(name, k, assignment.total_time())
    return result


def memory_vs_partitions(
    stream: EdgeStream,
    partition_counts: list[int],
    algorithms=DEFAULT_ALGORITHMS,
    seed: int = 0,
) -> SweepResult:
    """Figure 6: partitioner state memory vs number of partitions."""
    result = SweepResult(x_name="k", metric_name="state_bytes")
    for k in partition_counts:
        for name in algorithms:
            partitioner, _ = run_algorithm(name, stream, k, seed=seed)
            result.add(name, k, partitioner.state_memory_bytes(stream))
    return result


def pagerank_costs(
    stream: EdgeStream,
    num_partitions: int,
    algorithms=DEFAULT_ALGORITHMS,
    network: NetworkModel | None = None,
    max_supersteps: int = 30,
    seed: int = 0,
    mode: str = "local",
) -> dict[str, RunCost]:
    """Figure 8: run PageRank on the GAS system layer per partitioning.

    ``mode="local"`` (default) executes on the partition-local runtime, so
    the reported messages/bytes are *measured* off its sync buffers;
    ``mode="global"`` uses the retained oracle's modeled costs.  For
    PageRank's dense activation the two agree superstep for superstep.
    """
    costs: dict[str, RunCost] = {}
    for name in algorithms:
        _, assignment = run_algorithm(name, stream, num_partitions, seed=seed)
        engine = make_engine(assignment, mode=mode, network=network)
        _, cost = pagerank(engine, max_supersteps=max_supersteps)
        costs[name] = cost
    return costs


def distributed_merge_sweep(
    stream: EdgeStream,
    num_partitions: int,
    node_counts=(1, 2, 4, 8),
    seed: int = 0,
    backend: str = "thread",
    merge_modes=("independent", "merged"),
) -> list[dict]:
    """Merged vs independent distributed CLUGP across node counts.

    Returns one ``DistributedResult.to_dict()`` row per (mode, nodes)
    pair — quality, per-stage walls, and merge wire bytes — the data
    behind the ``distributed_merge`` benchmark section and the CLI
    ``distribute`` sweep.  Node counts larger than the stream are
    skipped.
    """
    from ..core.distributed import distributed_clugp

    rows: list[dict] = []
    for num_nodes in node_counts:
        if num_nodes > max(1, stream.num_edges):
            continue
        for mode in merge_modes:
            result = distributed_clugp(
                stream,
                num_partitions,
                num_nodes=num_nodes,
                seed=seed,
                merge_mode=mode,
                backend=backend,
            )
            rows.append(result.to_dict())
    return rows
