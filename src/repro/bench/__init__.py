"""Benchmark harness: sweeps and printers for every paper table/figure."""

from .harness import (
    SweepResult,
    rf_vs_partitions,
    runtime_vs_partitions,
    memory_vs_partitions,
    pagerank_costs,
    series_table,
    DEFAULT_ALGORITHMS,
)

__all__ = [
    "SweepResult",
    "rf_vs_partitions",
    "runtime_vs_partitions",
    "memory_vs_partitions",
    "pagerank_costs",
    "series_table",
    "DEFAULT_ALGORITHMS",
]
