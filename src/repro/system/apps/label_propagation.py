"""Community label propagation (synchronous, deterministic) as a GAS program.

Each vertex adopts the most frequent label among its undirected neighbors
(ties -> smallest label), the classic Raghavan-style community detection the
paper cites as a motivating distributed workload.  Synchronous LPA need not
converge (labels can oscillate), so the run is bounded by ``max_iters``.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost

__all__ = ["LabelPropagationProgram", "label_propagation"]


class LabelPropagationProgram:
    """Deterministic synchronous majority-label propagation.

    Parameters
    ----------
    max_iters:
        Hard iteration bound (synchronous LPA may oscillate forever).
    """

    def __init__(self, max_iters: int = 10) -> None:
        if max_iters <= 0:
            raise ValueError("max_iters must be positive")
        self.max_iters = int(max_iters)
        self._iteration = 0

    def init(self, engine: GasEngine) -> np.ndarray:
        self._iteration = 0
        return np.arange(engine.num_vertices, dtype=np.int64)

    def superstep(self, engine: GasEngine, values: np.ndarray):
        self._iteration += 1
        n = engine.num_vertices
        src, dst = engine.stream.src, engine.stream.dst
        # count (vertex, neighbor_label) pairs over the undirected adjacency
        nbr_vertex = np.concatenate([src, dst])
        nbr_label = np.concatenate([values[dst], values[src]])
        # majority by sorting (vertex, label) pairs and run-length counting
        order = np.lexsort((nbr_label, nbr_vertex))
        vtx = nbr_vertex[order]
        lab = nbr_label[order]
        boundary = np.ones(vtx.size, dtype=bool)
        boundary[1:] = (vtx[1:] != vtx[:-1]) | (lab[1:] != lab[:-1])
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, vtx.size))
        group_vtx = vtx[starts]
        group_lab = lab[starts]
        new_values = values.copy()
        # for each vertex keep the (count desc, label asc) best group
        best_count = np.zeros(n, dtype=np.int64)
        for gv, gl, gc in zip(
            group_vtx.tolist(), group_lab.tolist(), counts.tolist()
        ):
            if gc > best_count[gv]:
                best_count[gv] = gc
                new_values[gv] = gl
        changed = new_values != values
        if self._iteration >= self.max_iters:
            changed = np.zeros(n, dtype=bool)
        return new_values, changed


def label_propagation(
    engine: GasEngine, max_iters: int = 10
) -> tuple[np.ndarray, RunCost]:
    """Run LPA for at most ``max_iters`` supersteps; returns (labels, cost)."""
    return engine.run(
        LabelPropagationProgram(max_iters), max_supersteps=max_iters + 1
    )
