"""Community label propagation (synchronous, deterministic) as a GAS program.

Each vertex adopts the most frequent label among its undirected neighbors
(ties -> smallest label), the classic Raghavan-style community detection the
paper cites as a motivating distributed workload.  Synchronous LPA need not
converge (labels can oscillate), so the run is bounded by ``max_iters``.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost
from ..runtime import (
    LABEL_COUNT,
    LocalContext,
    LocalGasRuntime,
    group_label_counts,
    undirected_incidences,
)

__all__ = [
    "LabelPropagationProgram",
    "LocalLabelPropagationProgram",
    "label_propagation",
]


class LabelPropagationProgram:
    """Deterministic synchronous majority-label propagation.

    Parameters
    ----------
    max_iters:
        Hard iteration bound (synchronous LPA may oscillate forever).
    """

    def __init__(self, max_iters: int = 10) -> None:
        if max_iters <= 0:
            raise ValueError("max_iters must be positive")
        self.max_iters = int(max_iters)
        self._iteration = 0

    def init(self, engine: GasEngine) -> np.ndarray:
        self._iteration = 0
        return np.arange(engine.num_vertices, dtype=np.int64)

    def superstep(self, engine: GasEngine, values: np.ndarray):
        self._iteration += 1
        n = engine.num_vertices
        src, dst = engine.stream.src, engine.stream.dst
        # count (vertex, neighbor_label) pairs over the undirected adjacency
        nbr_vertex = np.concatenate([src, dst])
        nbr_label = np.concatenate([values[dst], values[src]])
        # majority by sorting (vertex, label) pairs and run-length counting
        order = np.lexsort((nbr_label, nbr_vertex))
        vtx = nbr_vertex[order]
        lab = nbr_label[order]
        boundary = np.ones(vtx.size, dtype=bool)
        boundary[1:] = (vtx[1:] != vtx[:-1]) | (lab[1:] != lab[:-1])
        starts = np.nonzero(boundary)[0]
        counts = np.diff(np.append(starts, vtx.size))
        group_vtx = vtx[starts]
        group_lab = lab[starts]
        new_values = values.copy()
        # for each vertex keep the (count desc, label asc) best group
        best_count = np.zeros(n, dtype=np.int64)
        for gv, gl, gc in zip(
            group_vtx.tolist(), group_lab.tolist(), counts.tolist()
        ):
            if gc > best_count[gv]:
                best_count[gv] = gc
                new_values[gv] = gl
        changed = new_values != values
        if self._iteration >= self.max_iters:
            changed = np.zeros(n, dtype=bool)
        return new_values, changed


class LocalLabelPropagationProgram(LabelPropagationProgram):
    """Majority-label propagation against the partition-local API
    (sharing the oracle's ``max_iters`` validation and ``init``).

    The gather accumulator is a ragged per-vertex label histogram
    (:data:`LABEL_COUNT`): each partition counts labels over its local
    undirected incidences, mirrors ship their histograms to the master,
    and the master's exact integer merge + (count desc, label asc) pick
    reproduces the oracle bit-for-bit.
    """

    edge_mode = "undirected"
    frontier = "sparse"
    accumulator = LABEL_COUNT

    _incidences: list | None = None

    def setup(self, runtime: LocalGasRuntime) -> None:
        self._incidences = undirected_incidences(runtime.index)

    def gather_local(self, ctx: LocalContext):
        targets, sources = self._incidences[ctx.part.pid]
        mask = ctx.active[targets]
        return group_label_counts(
            targets[mask], ctx.values[sources[mask]], ctx.runtime.num_vertices
        )

    def apply(self, runtime, vertex_ids, old_values, acc):
        indptr, labels, counts = acc
        new_values = old_values.copy()
        if labels.size:
            seg = np.repeat(
                np.arange(vertex_ids.size, dtype=np.int64), np.diff(indptr)
            )
            # per segment: highest count wins, ties to the smallest label
            order = np.lexsort((labels, -counts, seg))
            seg_sorted = seg[order]
            heads = order[np.r_[True, seg_sorted[1:] != seg_sorted[:-1]]]
            new_values[seg[heads]] = labels[heads]
        return new_values

    def post_superstep(
        self, runtime: LocalGasRuntime, step: int, changed: np.ndarray
    ) -> np.ndarray:
        if step + 1 >= self.max_iters:
            return np.zeros_like(changed)
        return changed


def label_propagation(
    engine: GasEngine | LocalGasRuntime, max_iters: int = 10
) -> tuple[np.ndarray, RunCost]:
    """Run LPA for at most ``max_iters`` supersteps; returns (labels, cost)."""
    if isinstance(engine, LocalGasRuntime):
        program = LocalLabelPropagationProgram(max_iters)
    else:
        program = LabelPropagationProgram(max_iters)
    return engine.run(program, max_supersteps=max_iters + 1)
