"""PageRank as a synchronous GAS vertex program.

Standard damped power iteration with dangling-mass redistribution, matching
``networkx.pagerank`` semantics so values can be cross-checked exactly in
the tests.  This is the paper's headline application (Figure 8): its
communication cost is dominated by mirror synchronization, which is why the
replication factor drives PowerGraph performance.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost
from ..runtime import DenseAccumulator, LocalContext, LocalGasRuntime

__all__ = ["PageRankProgram", "LocalPageRankProgram", "pagerank"]


class PageRankProgram:
    """Damped PageRank vertex program.

    Parameters
    ----------
    damping:
        Damping factor alpha (0.85 default).
    tol:
        L1 convergence threshold on the rank vector, scaled by |V| as in
        networkx (``err < tol * n`` with per-vertex tolerance semantics).
    """

    def __init__(self, damping: float = 0.85, tol: float = 1e-8) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.damping = float(damping)
        self.tol = float(tol)
        self._out_degree: np.ndarray | None = None

    def init(self, engine: GasEngine) -> np.ndarray:
        n = engine.num_vertices
        self._out_degree = np.bincount(engine.stream.src, minlength=n).astype(
            np.float64
        )
        return np.full(n, 1.0 / n, dtype=np.float64)

    def superstep(self, engine: GasEngine, values: np.ndarray):
        n = engine.num_vertices
        out_degree = self._out_degree
        src, dst = engine.stream.src, engine.stream.dst
        contrib = np.where(out_degree > 0, values / np.maximum(out_degree, 1.0), 0.0)
        gathered = np.zeros(n, dtype=np.float64)
        np.add.at(gathered, dst, contrib[src])
        dangling_mass = values[out_degree == 0].sum()
        new_values = (1.0 - self.damping) / n + self.damping * (
            gathered + dangling_mass / n
        )
        err = np.abs(new_values - values).sum()
        if err < self.tol * n:
            changed = np.zeros(n, dtype=bool)
        else:
            changed = np.ones(n, dtype=bool)
        return new_values, changed


class LocalPageRankProgram(PageRankProgram):
    """PageRank against the partition-local :class:`LocalContext` API.

    Extends :class:`PageRankProgram` to share its knob validation and
    global-formula ``init`` (both engines accept it); the gather is a
    partition-local ``add.at`` over each partition's edge sub-graph, the
    dangling mass a global aggregator assembled from per-partition master
    partials, and convergence the oracle's L1 test on the coordinator
    view — so superstep counts match the global oracle exactly and values
    agree to summation-order rounding (<= 1e-12).
    """

    edge_mode = "directed"
    frontier = "dense"
    accumulator = DenseAccumulator(np.dtype(np.float64), 0.0, np.add)

    _out_degree_local: list[np.ndarray] | None = None
    _dangling_mass = 0.0

    def setup(self, runtime: LocalGasRuntime) -> None:
        # static replica table: each partition holds the out-degrees of its
        # local replicas (broadcast once at load time in a real deployment)
        self._out_degree_local = [
            self._out_degree[p.vertices] for p in runtime.index.partitions
        ]

    def gather_local(self, ctx: LocalContext) -> np.ndarray:
        part = ctx.part
        out_degree = self._out_degree_local[part.pid]
        contrib = np.where(
            out_degree > 0, ctx.values / np.maximum(out_degree, 1.0), 0.0
        )
        partial = np.zeros(part.num_vertices, dtype=np.float64)
        mask = ctx.active[part.dst_local]
        np.add.at(partial, part.dst_local[mask], contrib[part.src_local[mask]])
        return partial

    def master_aggregate(self, part, values: np.ndarray) -> float:
        """This partition's dangling-mass partial: sum over local masters.

        Split out of ``before_apply`` so a *distributed* runtime can
        evaluate each partial on the process that owns the partition and
        ship one float — the tree-reduction of a real deployment.
        """
        dangling = part.is_master & (self._out_degree_local[part.pid] == 0)
        return float(values[dangling].sum())

    def unhosted_aggregate(self, runtime, values_global: np.ndarray) -> float:
        """The coordinator's share: edgeless vertices no partition hosts."""
        unhosted = runtime.placement.replica_counts == 0
        return float(values_global[unhosted & (self._out_degree == 0)].sum())

    def receive_aggregate(self, value: float) -> None:
        """Install the reduced global aggregate before ``apply`` runs."""
        self._dangling_mass = value

    def before_apply(self, runtime: LocalGasRuntime, values_global: np.ndarray):
        # dangling-mass aggregator: per-partition partial sums over local
        # masters (pid order — the reduction order is part of the float
        # contract shared with the distributed runtime), plus the
        # coordinator's edgeless vertices
        total = 0.0
        for i, part in enumerate(runtime.index.partitions):
            total += self.master_aggregate(part, runtime.values_local[i])
        total += self.unhosted_aggregate(runtime, values_global)
        self.receive_aggregate(total)

    def apply(
        self,
        runtime: LocalGasRuntime,
        vertex_ids: np.ndarray,
        old_values: np.ndarray,
        acc: np.ndarray,
    ) -> np.ndarray:
        n = runtime.num_vertices
        return (1.0 - self.damping) / n + self.damping * (
            acc + self._dangling_mass / n
        )

    def check_converged(
        self, runtime: LocalGasRuntime, old: np.ndarray, new: np.ndarray
    ) -> bool:
        return float(np.abs(new - old).sum()) < self.tol * runtime.num_vertices


def pagerank(
    engine: GasEngine | LocalGasRuntime,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_supersteps: int = 100,
) -> tuple[np.ndarray, RunCost]:
    """Run PageRank on a global oracle engine or local runtime."""
    if isinstance(engine, LocalGasRuntime):
        program = LocalPageRankProgram(damping, tol)
    else:
        program = PageRankProgram(damping, tol)
    return engine.run(program, max_supersteps=max_supersteps)
