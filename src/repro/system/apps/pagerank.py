"""PageRank as a synchronous GAS vertex program.

Standard damped power iteration with dangling-mass redistribution, matching
``networkx.pagerank`` semantics so values can be cross-checked exactly in
the tests.  This is the paper's headline application (Figure 8): its
communication cost is dominated by mirror synchronization, which is why the
replication factor drives PowerGraph performance.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost

__all__ = ["PageRankProgram", "pagerank"]


class PageRankProgram:
    """Damped PageRank vertex program.

    Parameters
    ----------
    damping:
        Damping factor alpha (0.85 default).
    tol:
        L1 convergence threshold on the rank vector, scaled by |V| as in
        networkx (``err < tol * n`` with per-vertex tolerance semantics).
    """

    def __init__(self, damping: float = 0.85, tol: float = 1e-8) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.damping = float(damping)
        self.tol = float(tol)
        self._out_degree: np.ndarray | None = None

    def init(self, engine: GasEngine) -> np.ndarray:
        n = engine.num_vertices
        self._out_degree = np.bincount(engine.stream.src, minlength=n).astype(
            np.float64
        )
        return np.full(n, 1.0 / n, dtype=np.float64)

    def superstep(self, engine: GasEngine, values: np.ndarray):
        n = engine.num_vertices
        out_degree = self._out_degree
        src, dst = engine.stream.src, engine.stream.dst
        contrib = np.where(out_degree > 0, values / np.maximum(out_degree, 1.0), 0.0)
        gathered = np.zeros(n, dtype=np.float64)
        np.add.at(gathered, dst, contrib[src])
        dangling_mass = values[out_degree == 0].sum()
        new_values = (1.0 - self.damping) / n + self.damping * (
            gathered + dangling_mass / n
        )
        err = np.abs(new_values - values).sum()
        if err < self.tol * n:
            changed = np.zeros(n, dtype=bool)
        else:
            changed = np.ones(n, dtype=bool)
        return new_values, changed


def pagerank(
    engine: GasEngine,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_supersteps: int = 100,
) -> tuple[np.ndarray, RunCost]:
    """Run PageRank on the engine; returns (ranks, cost)."""
    return engine.run(PageRankProgram(damping, tol), max_supersteps=max_supersteps)
