"""Connected components via min-label propagation (HashMin), a GAS program.

Treats edges as undirected (weakly connected components).  Only vertices
whose label changed stay active, so later supersteps get cheaper — the
frontier behaviour the engine's active-edge cost model captures.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost

__all__ = ["ConnectedComponentsProgram", "connected_components"]


class ConnectedComponentsProgram:
    """HashMin label propagation: every vertex adopts the minimum label in
    its closed undirected neighborhood each superstep."""

    def init(self, engine: GasEngine) -> np.ndarray:
        return np.arange(engine.num_vertices, dtype=np.int64)

    def superstep(self, engine: GasEngine, values: np.ndarray):
        src, dst = engine.stream.src, engine.stream.dst
        new_values = values.copy()
        np.minimum.at(new_values, dst, values[src])
        np.minimum.at(new_values, src, values[dst])
        changed = new_values != values
        return new_values, changed


def connected_components(
    engine: GasEngine, max_supersteps: int = 200
) -> tuple[np.ndarray, RunCost]:
    """Run weakly-connected components; returns (labels, cost).

    Labels equal the minimum vertex id of each component, matching
    :meth:`repro.graph.DiGraph.weakly_connected_components`.
    """
    return engine.run(ConnectedComponentsProgram(), max_supersteps=max_supersteps)
