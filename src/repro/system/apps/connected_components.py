"""Connected components via min-label propagation (HashMin), a GAS program.

Treats edges as undirected (weakly connected components).  Only vertices
whose label changed stay active, so later supersteps get cheaper — the
frontier behaviour the engine's active-edge cost model captures.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost
from ..runtime import (
    DenseAccumulator,
    LocalContext,
    LocalGasRuntime,
    undirected_incidences,
)

__all__ = [
    "ConnectedComponentsProgram",
    "LocalConnectedComponentsProgram",
    "connected_components",
]


class ConnectedComponentsProgram:
    """HashMin label propagation: every vertex adopts the minimum label in
    its closed undirected neighborhood each superstep."""

    def init(self, engine: GasEngine) -> np.ndarray:
        return np.arange(engine.num_vertices, dtype=np.int64)

    def superstep(self, engine: GasEngine, values: np.ndarray):
        src, dst = engine.stream.src, engine.stream.dst
        new_values = values.copy()
        np.minimum.at(new_values, dst, values[src])
        np.minimum.at(new_values, src, values[dst])
        changed = new_values != values
        return new_values, changed


class LocalConnectedComponentsProgram(ConnectedComponentsProgram):
    """HashMin against the partition-local API (sharing the oracle's
    ``init``): undirected min-gather over each partition's local edges,
    exact int64 minima — bit-identical to the global oracle."""

    edge_mode = "undirected"
    frontier = "sparse"
    accumulator = DenseAccumulator(
        np.dtype(np.int64), np.iinfo(np.int64).max, np.minimum
    )

    _incidences: list | None = None

    def setup(self, runtime: LocalGasRuntime) -> None:
        self._incidences = undirected_incidences(runtime.index)

    def gather_local(self, ctx: LocalContext) -> np.ndarray:
        part = ctx.part
        partial = np.full(
            part.num_vertices, np.iinfo(np.int64).max, dtype=np.int64
        )
        targets, sources = self._incidences[part.pid]
        mask = ctx.active[targets]
        np.minimum.at(partial, targets[mask], ctx.values[sources[mask]])
        return partial

    def apply(self, runtime, vertex_ids, old_values, acc) -> np.ndarray:
        return np.minimum(old_values, acc)


def connected_components(
    engine: GasEngine | LocalGasRuntime, max_supersteps: int = 200
) -> tuple[np.ndarray, RunCost]:
    """Run weakly-connected components; returns (labels, cost).

    Labels equal the minimum vertex id of each component, matching
    :meth:`repro.graph.DiGraph.weakly_connected_components`.
    """
    if isinstance(engine, LocalGasRuntime):
        program = LocalConnectedComponentsProgram()
    else:
        program = ConnectedComponentsProgram()
    return engine.run(program, max_supersteps=max_supersteps)
