"""Single-source shortest paths (synchronous Bellman-Ford) as a GAS program.

Directed, with optional per-edge weights (unit weights by default).  The
frontier shrinks as distances settle, exercising the engine's
active-vertex cost accounting on a workload whose superstep count equals
the graph's hop eccentricity from the source.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost
from ..runtime import DenseAccumulator, LocalContext, LocalGasRuntime

__all__ = ["SsspProgram", "LocalSsspProgram", "sssp"]


class SsspProgram:
    """Bellman-Ford relaxation from a single source vertex.

    Parameters
    ----------
    source:
        Source vertex id.
    weights:
        Optional per-edge non-negative weights (stream order); defaults to
        unit weights (hop distance).
    """

    def __init__(self, source: int, weights=None) -> None:
        self.source = int(source)
        self.weights = None if weights is None else np.asarray(weights, np.float64)
        if self.weights is not None and (self.weights < 0).any():
            raise ValueError("weights must be non-negative")

    def init(self, engine: GasEngine) -> np.ndarray:
        if not 0 <= self.source < engine.num_vertices:
            raise ValueError(f"source {self.source} out of range")
        if self.weights is not None and self.weights.shape != engine.stream.src.shape:
            raise ValueError("weights must have one entry per edge")
        dist = np.full(engine.num_vertices, np.inf, dtype=np.float64)
        dist[self.source] = 0.0
        return dist

    def superstep(self, engine: GasEngine, values: np.ndarray):
        src, dst = engine.stream.src, engine.stream.dst
        w = self.weights if self.weights is not None else 1.0
        candidate = values[src] + w
        new_values = values.copy()
        np.minimum.at(new_values, dst, candidate)
        changed = new_values < values
        return new_values, changed


class LocalSsspProgram(SsspProgram):
    """Bellman-Ford against the partition-local API.

    Extends :class:`SsspProgram` to share its source/weight validation
    and ``init`` (both engines accept it).  Min-gather over each
    partition's local in-edges of frontier-activated targets; edge
    weights are sliced per partition by stream position
    (``LocalPartition.edge_ids``).  Minimum is order-independent, so the
    distances are bit-identical to the global oracle.
    """

    edge_mode = "directed"
    frontier = "sparse"
    accumulator = DenseAccumulator(np.dtype(np.float64), np.inf, np.minimum)

    _weights_local: list | None = None

    def setup(self, runtime: LocalGasRuntime) -> None:
        self._weights_local = [
            None if self.weights is None else self.weights[p.edge_ids]
            for p in runtime.index.partitions
        ]

    def gather_local(self, ctx: LocalContext) -> np.ndarray:
        part = ctx.part
        partial = np.full(part.num_vertices, np.inf, dtype=np.float64)
        mask = ctx.active[part.dst_local]
        weights = self._weights_local[part.pid]
        w = 1.0 if weights is None else weights[mask]
        np.minimum.at(
            partial, part.dst_local[mask], ctx.values[part.src_local[mask]] + w
        )
        return partial

    def apply(self, runtime, vertex_ids, old_values, acc) -> np.ndarray:
        return np.minimum(old_values, acc)


def sssp(
    engine: GasEngine | LocalGasRuntime,
    source: int,
    weights=None,
    max_supersteps: int = 500,
) -> tuple[np.ndarray, RunCost]:
    """Run SSSP from ``source``; returns (distances, cost).

    Unreached vertices have distance ``inf``.
    """
    if isinstance(engine, LocalGasRuntime):
        program = LocalSsspProgram(source, weights)
    else:
        program = SsspProgram(source, weights)
    return engine.run(program, max_supersteps=max_supersteps)
