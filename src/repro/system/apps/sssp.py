"""Single-source shortest paths (synchronous Bellman-Ford) as a GAS program.

Directed, with optional per-edge weights (unit weights by default).  The
frontier shrinks as distances settle, exercising the engine's
active-vertex cost accounting on a workload whose superstep count equals
the graph's hop eccentricity from the source.
"""

from __future__ import annotations

import numpy as np

from ..engine import GasEngine, RunCost

__all__ = ["SsspProgram", "sssp"]


class SsspProgram:
    """Bellman-Ford relaxation from a single source vertex.

    Parameters
    ----------
    source:
        Source vertex id.
    weights:
        Optional per-edge non-negative weights (stream order); defaults to
        unit weights (hop distance).
    """

    def __init__(self, source: int, weights=None) -> None:
        self.source = int(source)
        self.weights = None if weights is None else np.asarray(weights, np.float64)
        if self.weights is not None and (self.weights < 0).any():
            raise ValueError("weights must be non-negative")

    def init(self, engine: GasEngine) -> np.ndarray:
        if not 0 <= self.source < engine.num_vertices:
            raise ValueError(f"source {self.source} out of range")
        if self.weights is not None and self.weights.shape != engine.stream.src.shape:
            raise ValueError("weights must have one entry per edge")
        dist = np.full(engine.num_vertices, np.inf, dtype=np.float64)
        dist[self.source] = 0.0
        return dist

    def superstep(self, engine: GasEngine, values: np.ndarray):
        src, dst = engine.stream.src, engine.stream.dst
        w = self.weights if self.weights is not None else 1.0
        candidate = values[src] + w
        new_values = values.copy()
        np.minimum.at(new_values, dst, candidate)
        changed = new_values < values
        return new_values, changed


def sssp(
    engine: GasEngine, source: int, weights=None, max_supersteps: int = 500
) -> tuple[np.ndarray, RunCost]:
    """Run SSSP from ``source``; returns (distances, cost).

    Unreached vertices have distance ``inf``.
    """
    return engine.run(SsspProgram(source, weights), max_supersteps=max_supersteps)
