"""Vertex programs for the GAS simulator: the paper's evaluation workloads."""

from .pagerank import PageRankProgram, pagerank
from .connected_components import ConnectedComponentsProgram, connected_components
from .sssp import SsspProgram, sssp
from .label_propagation import LabelPropagationProgram, label_propagation

__all__ = [
    "PageRankProgram",
    "pagerank",
    "ConnectedComponentsProgram",
    "connected_components",
    "SsspProgram",
    "sssp",
    "LabelPropagationProgram",
    "label_propagation",
]
