"""Vertex programs for the GAS system layer: the paper's evaluation
workloads, each in two executable forms — a global-array oracle program
(``*Program``) and a partition-local program (``Local*Program``) against
the :class:`~repro.system.runtime.LocalContext` API.  The public entry
points (``pagerank`` etc.) dispatch on the engine they are handed."""

from .pagerank import LocalPageRankProgram, PageRankProgram, pagerank
from .connected_components import (
    ConnectedComponentsProgram,
    LocalConnectedComponentsProgram,
    connected_components,
)
from .sssp import LocalSsspProgram, SsspProgram, sssp
from .label_propagation import (
    LabelPropagationProgram,
    LocalLabelPropagationProgram,
    label_propagation,
)

#: app name -> public entry point (the CLI ``run-app`` registry)
APPS = {
    "pagerank": pagerank,
    "sssp": sssp,
    "connected_components": connected_components,
    "label_propagation": label_propagation,
}

__all__ = [
    "APPS",
    "PageRankProgram",
    "LocalPageRankProgram",
    "pagerank",
    "ConnectedComponentsProgram",
    "LocalConnectedComponentsProgram",
    "connected_components",
    "SsspProgram",
    "LocalSsspProgram",
    "sssp",
    "LabelPropagationProgram",
    "LocalLabelPropagationProgram",
    "label_propagation",
]
