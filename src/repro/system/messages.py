"""Typed message buffers for the partition-local GAS runtime.

Each BSP superstep exchanges two rounds of messages along the mirror
routing table (:class:`~repro.system.placement.ReplicaRoutes`):

* **gather round** — every mirror of a sync-active vertex sends its local
  gather accumulator to the vertex's master (``mirror_part -> master_part``);
* **apply round** — the master sends the applied value back to every
  mirror (``master_part -> mirror_part``).

A buffer holds one round's messages as flat columns: one row per logical
message, with either a fixed-width :class:`DensePayload` (one accumulator
value per message — PageRank partial sums, SSSP/CC partial minima, apply
values) or a :class:`RaggedPayload` (variable-length label histograms for
label propagation, delimited by an ``indptr``).

``SuperstepCost.messages`` / ``bytes`` are *measured* off these buffers:
``count`` is the number of rows and ``payload_nbytes`` the wire payload
(8-byte vertex id header + payload columns).  With the default 8-byte
dense accumulators this is exactly the 16 bytes/message the
:class:`~repro.system.network.NetworkModel` assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import group_by_bounded

__all__ = ["DensePayload", "RaggedPayload", "MessageBuffer"]

#: wire bytes of the global vertex id carried by every message
VERTEX_HEADER_BYTES = 8


@dataclass
class DensePayload:
    """Fixed-width payload: one accumulator/value per message."""

    values: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)

    def take(self, rows: np.ndarray) -> "DensePayload":
        return DensePayload(self.values[rows])


@dataclass
class RaggedPayload:
    """Variable-width payload: per-message (label, count) histograms.

    Message ``i`` carries the histogram rows
    ``labels[indptr[i]:indptr[i+1]]`` / ``counts[indptr[i]:indptr[i+1]]``.
    """

    indptr: np.ndarray
    labels: np.ndarray
    counts: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.labels.nbytes + self.counts.nbytes)

    def take(self, rows: np.ndarray) -> "RaggedPayload":
        lengths = self.indptr[rows + 1] - self.indptr[rows]
        out_indptr = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=out_indptr[1:])
        flat = ragged_take_indices(self.indptr[rows], lengths, out_indptr)
        return RaggedPayload(out_indptr, self.labels[flat], self.counts[flat])


def ragged_take_indices(
    starts: np.ndarray, lengths: np.ndarray, out_indptr: np.ndarray
) -> np.ndarray:
    """Flat source indices selecting ``[starts[i], starts[i]+lengths[i])``.

    The standard vectorized ragged gather: repeat each slice's offset
    delta and cumulatively sum, so no python loop touches the rows.
    """
    total = int(out_indptr[-1])
    if total == 0:
        return np.empty(0, dtype=np.int64)
    flat = np.ones(total, dtype=np.int64)
    heads = out_indptr[:-1][lengths > 0]
    flat[heads] = starts[lengths > 0] - np.concatenate(
        ([0], (starts + lengths)[lengths > 0][:-1] - 1)
    )
    return np.cumsum(flat)


@dataclass
class MessageBuffer:
    """One sync round's messages, one row per logical message.

    Attributes
    ----------
    round:
        ``"gather"`` (mirror -> master accumulators) or ``"apply"``
        (master -> mirror values).
    vertex:
        Global vertex id each message is about.
    src_part, dst_part:
        Sending and receiving partition per message.
    dst_local:
        The vertex's local id at the *receiving* partition, so delivery
        is a fancy-index into the receiver's local arrays.
    payload:
        :class:`DensePayload` or :class:`RaggedPayload`.
    """

    round: str
    vertex: np.ndarray
    src_part: np.ndarray
    dst_part: np.ndarray
    dst_local: np.ndarray
    payload: DensePayload | RaggedPayload
    _dst_groups: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def count(self) -> int:
        """Number of logical messages (the measured message count)."""
        return int(self.vertex.size)

    @property
    def payload_nbytes(self) -> int:
        """Measured wire bytes: per-message vertex header + payload."""
        return self.count * VERTEX_HEADER_BYTES + self.payload.nbytes

    def for_partition(self, pid: int) -> tuple[np.ndarray, DensePayload | RaggedPayload]:
        """Deliver: (receiver-local vertex ids, payload) for partition ``pid``.

        Rows are grouped by receiver once (stable bounded radix argsort,
        so within-partition message order is buffer order) and sliced per
        call — one O(rows) pass instead of one scan per partition.
        """
        if self._dst_groups is None:
            k = int(self.dst_part.max()) + 1 if self.dst_part.size else 0
            self._dst_groups = group_by_bounded(self.dst_part, k)
        order, indptr = self._dst_groups
        if pid + 1 >= indptr.size:
            rows = np.empty(0, dtype=np.int64)
        else:
            rows = order[indptr[pid] : indptr[pid + 1]]
        return self.dst_local[rows], self.payload.take(rows)
