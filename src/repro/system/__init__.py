"""PowerGraph-style distributed GAS execution simulator.

The paper evaluates partitionings on a real 32-node PowerGraph deployment
(Figure 8).  This package replaces that testbed with a discrete cost-model
simulator that executes the *same* vertex programs (PageRank, connected
components, SSSP, label propagation) over the *same* master/mirror
placement a PowerGraph cluster would derive from a vertex-cut partitioning,
and accounts computation and communication exactly where the real system
pays them:

* per superstep, every partition gathers over its local edges, applies at
  its local masters, and scatters over its local edges (compute cost);
* every mirror sends one accumulator to its master (gather sync) and
  receives one updated value (apply sync) — 2 * #mirrors messages per
  superstep (communication cost);
* wall-clock per superstep = max partition compute time + network time
  (volume / bandwidth + per-superstep RTT rounds), the BSP model.
"""

from .placement import Placement, build_placement
from .network import NetworkModel
from .engine import GasEngine, SuperstepCost, RunCost
from .apps import pagerank, connected_components, sssp, label_propagation

__all__ = [
    "Placement",
    "build_placement",
    "NetworkModel",
    "GasEngine",
    "SuperstepCost",
    "RunCost",
    "pagerank",
    "connected_components",
    "sssp",
    "label_propagation",
]
