"""PowerGraph-style distributed GAS system layer.

The paper evaluates partitionings on a real 32-node PowerGraph deployment
(Figure 8).  This package provides two executable engines over the same
master/mirror placement a PowerGraph cluster would derive from a
vertex-cut partitioning:

* :class:`LocalGasRuntime` (``mode="local"``) — the partition-local
  runtime: per-partition local index spaces and edge sub-graphs, gather/
  apply/scatter as partition-local array kernels, mirror<->master
  synchronization through explicit typed message buffers, and sparse
  per-vertex frontier activation.  ``SuperstepCost.messages``/``bytes``
  are *measured* by counting buffer rows.
* :class:`GasEngine` (``mode="global"``) — the retained oracle: program
  semantics evaluated on global arrays, costs *modeled* per partition
  (``2 * (|P(v)| - 1)`` sync messages per active replicated vertex).

Both charge compute/communication where the real system pays them: per
superstep every partition gathers over its local edges and applies at its
local masters, every mirror exchanges one accumulator and one value with
its master, and wall-clock = slowest partition + network time (BSP).
The apps (PageRank, connected components, SSSP, label propagation) accept
either engine; the parity tests pin local == global results.
"""

from .placement import (
    LocalIndex,
    LocalPartition,
    Placement,
    ReplicaRoutes,
    build_local_index,
    build_placement,
)
from .network import NetworkModel
from .engine import GasEngine, SuperstepCost, RunCost
from .messages import DensePayload, MessageBuffer, RaggedPayload
from .runtime import (
    LABEL_COUNT,
    DenseAccumulator,
    LabelCountAccumulator,
    LocalContext,
    LocalGasRuntime,
    LocalVertexProgram,
)
from .apps import APPS, pagerank, connected_components, sssp, label_propagation

__all__ = [
    "Placement",
    "build_placement",
    "LocalPartition",
    "ReplicaRoutes",
    "LocalIndex",
    "build_local_index",
    "NetworkModel",
    "GasEngine",
    "SuperstepCost",
    "RunCost",
    "MessageBuffer",
    "DensePayload",
    "RaggedPayload",
    "DenseAccumulator",
    "LabelCountAccumulator",
    "LABEL_COUNT",
    "LocalContext",
    "LocalGasRuntime",
    "LocalVertexProgram",
    "make_engine",
    "APPS",
    "pagerank",
    "connected_components",
    "sssp",
    "label_propagation",
]


def make_engine(
    assignment,
    mode: str = "local",
    network: NetworkModel | None = None,
    **throughputs,
) -> "GasEngine | LocalGasRuntime":
    """Deploy an assignment on the requested engine.

    ``mode="local"`` builds the partition-local :class:`LocalGasRuntime`
    (measured costs); ``mode="global"`` the retained global-array
    :class:`GasEngine` oracle (modeled costs).
    """
    if mode == "local":
        return LocalGasRuntime(assignment, network=network, **throughputs)
    if mode == "global":
        return GasEngine(assignment, network=network, **throughputs)
    raise ValueError(f"mode must be 'local' or 'global', got {mode!r}")
