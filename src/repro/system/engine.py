"""The GAS (Gather-Apply-Scatter) BSP execution engine and its cost model.

The engine executes a synchronous vertex program over the partitioned graph
exactly as PowerGraph would:

* **gather/scatter** work is proportional to the *active local edges* of
  each partition (an edge is active when its source vertex changed in the
  previous superstep);
* **apply** work is proportional to active local masters;
* at each superstep barrier, every active replicated vertex synchronizes:
  ``|P(v)| - 1`` gather messages (mirror accumulators to the master) and
  ``|P(v)| - 1`` apply messages (master value to mirrors);
* superstep wall-clock = slowest partition's compute time + network time.

Program *semantics* are evaluated globally with vectorized numpy (the
values are exact, verified against networkx in the tests); only the *cost*
is attributed per partition — which is precisely what Figure 8 measures
(communication volume, computation time, total runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..partitioners.base import PartitionAssignment
from .network import NetworkModel
from .placement import Placement, build_placement

__all__ = ["VertexProgram", "SuperstepCost", "RunCost", "GasEngine"]


class VertexProgram(Protocol):
    """Synchronous vertex-program interface consumed by :class:`GasEngine`.

    ``init`` returns the initial vertex-value array; ``superstep`` returns
    ``(new_values, changed_mask)``.  The engine stops when no vertex
    changed or ``max_supersteps`` is hit.
    """

    def init(self, engine: "GasEngine") -> np.ndarray: ...

    def superstep(self, engine: "GasEngine", values: np.ndarray) -> tuple[
        np.ndarray, np.ndarray
    ]: ...


@dataclass(frozen=True)
class SuperstepCost:
    """Cost accounting of one superstep."""

    superstep: int
    active_vertices: int
    active_edges: int
    messages: int
    bytes: int
    compute_seconds: float
    comm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def to_dict(self) -> dict:
        return {
            "superstep": self.superstep,
            "active_vertices": self.active_vertices,
            "active_edges": self.active_edges,
            "messages": self.messages,
            "bytes": self.bytes,
            "compute_seconds": self.compute_seconds,
            "comm_seconds": self.comm_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass
class RunCost:
    """Aggregate cost of a vertex-program run."""

    supersteps: list[SuperstepCost] = field(default_factory=list)

    def add(self, cost: SuperstepCost) -> None:
        self.supersteps.append(cost)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.supersteps)

    @property
    def total_bytes(self) -> int:
        return sum(s.bytes for s in self.supersteps)

    @property
    def compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self.supersteps)

    @property
    def comm_seconds(self) -> float:
        return sum(s.comm_seconds for s in self.supersteps)

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds

    def to_dict(self, per_superstep: bool = False) -> dict:
        """JSON-ready aggregate (for the ``run_all.py --json`` payload)."""
        out = {
            "supersteps": self.num_supersteps,
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "compute_seconds": self.compute_seconds,
            "comm_seconds": self.comm_seconds,
            "total_seconds": self.total_seconds,
        }
        if per_superstep:
            out["per_superstep"] = [s.to_dict() for s in self.supersteps]
        return out

    def summary(self) -> str:
        """One-line human-readable digest of the run."""
        return (
            f"supersteps={self.num_supersteps} messages={self.total_messages} "
            f"volume={self.total_bytes / 1e6:.2f}MB "
            f"compute={self.compute_seconds:.4f}s comm={self.comm_seconds:.4f}s "
            f"total={self.total_seconds:.4f}s"
        )


class GasEngine:
    """Simulated PowerGraph cluster bound to one partitioning.

    This is the retained ``mode="global"`` *oracle*: program semantics run
    on global arrays and costs are modeled analytically.  The executable
    counterpart is :class:`repro.system.runtime.LocalGasRuntime`, whose
    per-superstep message counts the parity tests pin against this model.

    Parameters
    ----------
    assignment:
        The vertex-cut partitioning to deploy.
    network:
        Network cost model (defaults to a 10GbE/10ms cluster).
    edges_per_second:
        Per-node gather+scatter throughput (edges processed per second per
        partition; each partition is one simulated node with one core, as
        in the paper's docker setup).
    vertices_per_second:
        Per-node apply throughput.
    """

    mode = "global"

    def __init__(
        self,
        assignment: PartitionAssignment,
        network: NetworkModel | None = None,
        edges_per_second: float = 5e6,
        vertices_per_second: float = 2e7,
    ) -> None:
        if edges_per_second <= 0 or vertices_per_second <= 0:
            raise ValueError("throughput parameters must be positive")
        self.assignment = assignment
        self.stream = assignment.stream
        self.network = network or NetworkModel()
        self.edges_per_second = float(edges_per_second)
        self.vertices_per_second = float(vertices_per_second)
        self.placement: Placement = build_placement(assignment)
        self.num_vertices = self.stream.num_vertices
        self.num_partitions = assignment.num_partitions
        # CSR edge layout grouped by partition: endpoint arrays reordered
        # so each partition's edges are one contiguous slice, making the
        # per-superstep active-edge accounting a segmented sum instead of
        # a per-edge scatter
        self._edge_partition = assignment.edge_partition
        order, self._edge_indptr = assignment.grouped_edges()
        self._src_by_partition = self.stream.src[order]
        self._dst_by_partition = self.stream.dst[order]
        self._sync_factor = self.placement.replica_counts - 1
        np.clip(self._sync_factor, 0, None, out=self._sync_factor)

    # ------------------------------------------------------------------ #
    # cost primitives
    # ------------------------------------------------------------------ #

    def _superstep_cost(self, step: int, changed: np.ndarray) -> SuperstepCost:
        k = self.num_partitions
        # an edge is active when either endpoint changed last superstep;
        # evaluated in the partition-grouped CSR layout so per-partition
        # counts are prefix-sum differences over contiguous slices
        edge_active = changed[self._src_by_partition] | changed[self._dst_by_partition]
        active_cumsum = np.zeros(edge_active.size + 1, dtype=np.int64)
        np.cumsum(edge_active, out=active_cumsum[1:])
        active_edge_counts = (
            active_cumsum[self._edge_indptr[1:]] - active_cumsum[self._edge_indptr[:-1]]
        )
        master = self.placement.master
        active_master_counts = np.bincount(
            master[changed & (master >= 0)], minlength=k
        )
        compute_per_partition = (
            active_edge_counts / self.edges_per_second
            + active_master_counts / self.vertices_per_second
        )
        messages = int(
            2 * self._sync_factor[changed].sum()
        )  # gather + apply sync per mirror of each changed vertex
        comm = self.network.superstep_comm_seconds(messages)
        return SuperstepCost(
            superstep=step,
            active_vertices=int(np.count_nonzero(changed)),
            active_edges=int(active_edge_counts.sum()),
            messages=messages,
            bytes=self.network.message_volume_bytes(messages),
            compute_seconds=float(compute_per_partition.max(initial=0.0)),
            comm_seconds=comm,
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self, program: VertexProgram, max_supersteps: int = 100
    ) -> tuple[np.ndarray, RunCost]:
        """Execute ``program`` to convergence; returns (values, cost)."""
        if max_supersteps <= 0:
            raise ValueError("max_supersteps must be positive")
        values = program.init(self)
        cost = RunCost()
        active = np.ones(self.num_vertices, dtype=bool)
        for step in range(max_supersteps):
            new_values, changed = program.superstep(self, values)
            cost.add(self._superstep_cost(step, active))
            values = new_values
            active = changed
            if not changed.any():
                break
        return values, cost
