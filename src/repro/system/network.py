"""Network cost model for the GAS simulator.

The paper's Figure 8(c) varies the inter-node RTT with PUMBA from 10ms to
100ms; bandwidth and message size are properties of their cluster.  We
expose all three as parameters; defaults approximate a 10GbE cluster with
PowerGraph's ~16-byte accumulator messages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model for one BSP superstep.

    Attributes
    ----------
    bandwidth_bytes_per_s:
        Aggregate cluster bisection bandwidth.
    rtt_seconds:
        Round-trip latency between any two nodes.
    bytes_per_message:
        Payload of one mirror<->master sync message.
    seconds_per_message:
        Per-message CPU/RPC overhead (serialization, syscalls); this is
        what actually dominates PowerGraph's sync phase on fast LANs, so it
        is what lets replication-factor differences show up as runtime
        differences (Figure 8 b).
    rounds_per_superstep:
        Synchronous message rounds per superstep; GAS pays one gather round
        (mirror -> master) and one apply round (master -> mirror).
    """

    bandwidth_bytes_per_s: float = 1.25e9  # 10 GbE
    rtt_seconds: float = 0.010
    bytes_per_message: int = 16
    seconds_per_message: float = 2e-6
    rounds_per_superstep: int = 2

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt_seconds < 0:
            raise ValueError("rtt_seconds must be non-negative")
        if self.bytes_per_message <= 0:
            raise ValueError("bytes_per_message must be positive")
        if self.seconds_per_message < 0:
            raise ValueError("seconds_per_message must be non-negative")
        if self.rounds_per_superstep <= 0:
            raise ValueError("rounds_per_superstep must be positive")

    def superstep_comm_seconds(self, num_messages: int) -> float:
        """Wall-clock of one superstep's synchronization phase (modeled
        volume: every message carries ``bytes_per_message``)."""
        return self.comm_seconds(num_messages, num_messages * self.bytes_per_message)

    def comm_seconds(self, num_messages: int, volume_bytes: float) -> float:
        """Wall-clock of one sync phase from a *measured* byte volume.

        The local runtime counts messages and payload bytes off its
        buffers and prices them here; with the default 8-byte dense
        accumulators (8-byte vertex header + 8-byte payload = 16 bytes)
        this agrees exactly with :meth:`superstep_comm_seconds`.
        """
        return (
            volume_bytes / self.bandwidth_bytes_per_s
            + num_messages * self.seconds_per_message
            + self.rounds_per_superstep * self.rtt_seconds
        )

    def message_volume_bytes(self, num_messages: int) -> int:
        """Total bytes moved for ``num_messages`` sync messages."""
        return num_messages * self.bytes_per_message

    def with_rtt(self, rtt_seconds: float) -> "NetworkModel":
        """Copy with a different RTT (the Figure 8(c) sweep)."""
        return replace(self, rtt_seconds=rtt_seconds)

    def with_bandwidth(self, bandwidth_bytes_per_s: float) -> "NetworkModel":
        """Copy with a different bisection bandwidth (Figure 8(c)-style
        bandwidth sweeps)."""
        return replace(self, bandwidth_bytes_per_s=bandwidth_bytes_per_s)
