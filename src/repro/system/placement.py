"""Master/mirror placement derived from a vertex-cut partitioning.

PowerGraph materializes a vertex replica in every partition that holds one
of its edges; one replica is the *master* (holds the authoritative value),
the rest are *mirrors*.  We pick the partition holding the most of the
vertex's edges as master (ties -> lowest partition id), which is what a
locality-aware PowerGraph build does.

Beyond the aggregate tables (:class:`Placement`), this module builds the
*executable* layout the partition-local runtime runs on
(:func:`build_local_index`): per-partition local vertex-id spaces with
global<->local maps (:class:`LocalPartition`), the local edge sub-graphs
sliced from the partition-grouped stream, and the flat mirror<->master
routing table (:class:`ReplicaRoutes`) that message buffers are built
from with one boolean mask per superstep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import group_by_bounded, vertex_partition_pairs
from ..partitioners.base import PartitionAssignment

__all__ = [
    "Placement",
    "build_placement",
    "LocalPartition",
    "ReplicaRoutes",
    "LocalIndex",
    "build_local_index",
]


@dataclass
class Placement:
    """The distributed layout implied by an edge partitioning.

    Attributes
    ----------
    num_partitions:
        ``k``.
    master:
        Partition id of each vertex's master (-1 for edgeless vertices).
    replica_counts:
        ``|P(v)|`` per vertex.
    mirrors_per_partition:
        Number of mirror replicas hosted by each partition.
    masters_per_partition:
        Number of master replicas hosted by each partition.
    edges_per_partition:
        ``|p_i|``.
    """

    num_partitions: int
    master: np.ndarray
    replica_counts: np.ndarray
    mirrors_per_partition: np.ndarray
    masters_per_partition: np.ndarray
    edges_per_partition: np.ndarray

    @property
    def total_mirrors(self) -> int:
        return int(self.mirrors_per_partition.sum())

    @property
    def total_masters(self) -> int:
        return int(self.masters_per_partition.sum())

    def replication_factor(self) -> float:
        active = self.replica_counts[self.replica_counts > 0]
        return float(active.mean()) if active.size else 0.0


def build_placement(assignment: PartitionAssignment) -> Placement:
    """Derive the master/mirror layout from an edge partitioning.

    Works over the sparse (vertex, partition) incidence pairs — O(|E|)
    space — rather than a dense ``n x k`` table, so placements of large
    graphs at high partition counts stay cheap to build.  Master choice is
    the partition with the most incident edges, ties to the lowest
    partition id (same rule as the dense-table ``argmax``).
    """
    stream = assignment.stream
    k = assignment.num_partitions
    n = stream.num_vertices
    # sparse (vertex, partition) incidence counts via flat-key dedup
    verts, parts, counts = vertex_partition_pairs(
        stream.src, stream.dst, assignment.edge_partition, k
    )
    replica_counts = np.bincount(verts, minlength=n).astype(np.int64)
    # per-vertex first maximal count: sort by (vertex, -count, partition)
    # and take each vertex segment's head
    master = np.full(n, -1, dtype=np.int64)
    if verts.size:
        order = np.lexsort((parts, -counts, verts))
        verts_sorted = verts[order]
        heads = order[np.r_[True, verts_sorted[1:] != verts_sorted[:-1]]]
        master[verts[heads]] = parts[heads]
    masters_per_partition = np.bincount(
        master[master >= 0], minlength=k
    ).astype(np.int64)
    replicas_per_partition = np.bincount(parts, minlength=k).astype(np.int64)
    mirrors_per_partition = replicas_per_partition - masters_per_partition
    return Placement(
        num_partitions=k,
        master=master,
        replica_counts=replica_counts,
        mirrors_per_partition=mirrors_per_partition,
        masters_per_partition=masters_per_partition,
        edges_per_partition=assignment.partition_sizes(),
    )


# ---------------------------------------------------------------------- #
# per-partition local index spaces (the executable layout)
# ---------------------------------------------------------------------- #


@dataclass
class LocalPartition:
    """One partition's local index space and edge sub-graph.

    Vertex replicas hosted by the partition get dense *local* ids
    ``0..num_vertices-1`` in ascending global-id order; the partition's
    edges are stored with local endpoints plus their positions in the
    original stream (so per-edge attributes like SSSP weights can be
    sliced without a global array).

    Attributes
    ----------
    pid:
        Partition id.
    vertices:
        Sorted global ids of the replicas hosted here (local -> global).
    is_master:
        Per local vertex: this partition holds the master replica.
    src_local, dst_local:
        The partition's edges with local-id endpoints.
    edge_ids:
        Position of each local edge in the original stream.
    """

    pid: int
    vertices: np.ndarray
    is_master: np.ndarray
    src_local: np.ndarray
    dst_local: np.ndarray
    edge_ids: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)

    @property
    def num_edges(self) -> int:
        return int(self.src_local.size)

    @property
    def num_masters(self) -> int:
        return int(np.count_nonzero(self.is_master))

    def to_local(self, global_ids) -> np.ndarray:
        """Map global vertex ids to this partition's local ids.

        Every id must be hosted here (``KeyError`` otherwise) — the local
        runtime never addresses a replica a partition does not hold.
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if self.vertices.size == 0:
            if global_ids.size:
                raise KeyError(f"partition {self.pid} hosts no replicas")
            return np.empty(0, dtype=np.int64)
        local = np.searchsorted(self.vertices, global_ids)
        in_range = local < self.vertices.size
        valid = in_range & (self.vertices[np.where(in_range, local, 0)] == global_ids)
        if not np.all(valid):
            missing = global_ids[~valid]
            raise KeyError(
                f"partition {self.pid} hosts no replica of vertices {missing[:5]}"
            )
        return local

    def to_global(self, local_ids) -> np.ndarray:
        """Map this partition's local ids back to global vertex ids."""
        return self.vertices[np.asarray(local_ids, dtype=np.int64)]


@dataclass
class ReplicaRoutes:
    """Flat mirror<->master routing table: one row per mirror replica.

    Rows are sorted by ``mirror_part`` (ties by global vertex id), with
    ``mirror_indptr`` delimiting each partition's slice, so a superstep's
    message buffer is one boolean mask over these columns: the rows whose
    vertex is in the sync set *are* the gather messages (mirror -> master)
    and, reversed, the apply broadcasts (master -> mirror).

    Attributes
    ----------
    vertex:
        Global vertex id of the mirrored vertex.
    mirror_part, mirror_local:
        The mirror replica's partition and local id there.
    master_part, master_local:
        The master replica's partition and local id there.
    mirror_indptr:
        ``(k + 1,)`` — rows ``[mirror_indptr[p], mirror_indptr[p+1])``
        belong to mirror partition ``p``.
    """

    vertex: np.ndarray
    mirror_part: np.ndarray
    mirror_local: np.ndarray
    master_part: np.ndarray
    master_local: np.ndarray
    mirror_indptr: np.ndarray

    @property
    def num_mirrors(self) -> int:
        return int(self.vertex.size)


@dataclass
class LocalIndex:
    """The full executable layout: all local partitions plus routing.

    Built once per deployment by :func:`build_local_index`; the runtime
    holds per-partition value arrays indexed by each
    :class:`LocalPartition`'s local ids and exchanges accumulator /
    value messages along :class:`ReplicaRoutes`.
    """

    num_partitions: int
    num_vertices: int
    partitions: list[LocalPartition]
    routes: ReplicaRoutes
    placement: Placement


def build_local_index(
    assignment: PartitionAssignment, placement: Placement | None = None
) -> LocalIndex:
    """Derive the per-partition local index spaces from an assignment.

    Slices the partition-grouped edge layout (one stable bounded radix
    argsort of ``edge_partition``), builds each partition's sorted local
    vertex space from its edge endpoints, and materializes the flat
    mirror routing table from the same sparse (vertex, partition)
    incidence pairs :func:`build_placement` uses — so the routes are
    consistent with ``Placement.replica_counts`` by construction.
    """
    stream = assignment.stream
    k = assignment.num_partitions
    if placement is None:
        placement = build_placement(assignment)
    master = placement.master
    # partition-grouped edge layout (cached on the assignment, shared
    # with the global oracle engine)
    order, indptr = assignment.grouped_edges()
    src_g = stream.src[order]
    dst_g = stream.dst[order]
    partitions: list[LocalPartition] = []
    for pid in range(k):
        lo, hi = indptr[pid], indptr[pid + 1]
        s, d = src_g[lo:hi], dst_g[lo:hi]
        vertices = np.unique(np.concatenate([s, d]))
        partitions.append(
            LocalPartition(
                pid=pid,
                vertices=vertices,
                is_master=master[vertices] == pid,
                src_local=np.searchsorted(vertices, s),
                dst_local=np.searchsorted(vertices, d),
                edge_ids=order[lo:hi],
            )
        )
    # mirror routing table from the sparse replica incidence
    verts, parts, _ = vertex_partition_pairs(
        stream.src, stream.dst, assignment.edge_partition, k
    )
    is_mirror = parts != master[verts]
    m_vertex = verts[is_mirror]
    m_part = parts[is_mirror]
    row_order, mirror_indptr = group_by_bounded(m_part, k)
    m_vertex = m_vertex[row_order]
    m_part = m_part[row_order]
    m_master = master[m_vertex]
    mirror_local = np.empty(m_vertex.size, dtype=np.int64)
    master_local = np.empty(m_vertex.size, dtype=np.int64)
    for pid, part in enumerate(partitions):
        rows = slice(mirror_indptr[pid], mirror_indptr[pid + 1])
        if mirror_indptr[pid + 1] > mirror_indptr[pid]:
            mirror_local[rows] = part.to_local(m_vertex[rows])
        at_master = m_master == pid
        if at_master.any():
            master_local[at_master] = part.to_local(m_vertex[at_master])
    routes = ReplicaRoutes(
        vertex=m_vertex,
        mirror_part=m_part,
        mirror_local=mirror_local,
        master_part=m_master,
        master_local=master_local,
        mirror_indptr=mirror_indptr,
    )
    return LocalIndex(
        num_partitions=k,
        num_vertices=stream.num_vertices,
        partitions=partitions,
        routes=routes,
        placement=placement,
    )
