"""Master/mirror placement derived from a vertex-cut partitioning.

PowerGraph materializes a vertex replica in every partition that holds one
of its edges; one replica is the *master* (holds the authoritative value),
the rest are *mirrors*.  We pick the partition holding the most of the
vertex's edges as master (ties -> lowest partition id), which is what a
locality-aware PowerGraph build does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import vertex_partition_pairs
from ..partitioners.base import PartitionAssignment

__all__ = ["Placement", "build_placement"]


@dataclass
class Placement:
    """The distributed layout implied by an edge partitioning.

    Attributes
    ----------
    num_partitions:
        ``k``.
    master:
        Partition id of each vertex's master (-1 for edgeless vertices).
    replica_counts:
        ``|P(v)|`` per vertex.
    mirrors_per_partition:
        Number of mirror replicas hosted by each partition.
    masters_per_partition:
        Number of master replicas hosted by each partition.
    edges_per_partition:
        ``|p_i|``.
    """

    num_partitions: int
    master: np.ndarray
    replica_counts: np.ndarray
    mirrors_per_partition: np.ndarray
    masters_per_partition: np.ndarray
    edges_per_partition: np.ndarray

    @property
    def total_mirrors(self) -> int:
        return int(self.mirrors_per_partition.sum())

    @property
    def total_masters(self) -> int:
        return int(self.masters_per_partition.sum())

    def replication_factor(self) -> float:
        active = self.replica_counts[self.replica_counts > 0]
        return float(active.mean()) if active.size else 0.0


def build_placement(assignment: PartitionAssignment) -> Placement:
    """Derive the master/mirror layout from an edge partitioning.

    Works over the sparse (vertex, partition) incidence pairs — O(|E|)
    space — rather than a dense ``n x k`` table, so placements of large
    graphs at high partition counts stay cheap to build.  Master choice is
    the partition with the most incident edges, ties to the lowest
    partition id (same rule as the dense-table ``argmax``).
    """
    stream = assignment.stream
    k = assignment.num_partitions
    n = stream.num_vertices
    # sparse (vertex, partition) incidence counts via flat-key dedup
    verts, parts, counts = vertex_partition_pairs(
        stream.src, stream.dst, assignment.edge_partition, k
    )
    replica_counts = np.bincount(verts, minlength=n).astype(np.int64)
    # per-vertex first maximal count: sort by (vertex, -count, partition)
    # and take each vertex segment's head
    master = np.full(n, -1, dtype=np.int64)
    if verts.size:
        order = np.lexsort((parts, -counts, verts))
        verts_sorted = verts[order]
        heads = order[np.r_[True, verts_sorted[1:] != verts_sorted[:-1]]]
        master[verts[heads]] = parts[heads]
    masters_per_partition = np.bincount(
        master[master >= 0], minlength=k
    ).astype(np.int64)
    replicas_per_partition = np.bincount(parts, minlength=k).astype(np.int64)
    mirrors_per_partition = replicas_per_partition - masters_per_partition
    return Placement(
        num_partitions=k,
        master=master,
        replica_counts=replica_counts,
        mirrors_per_partition=mirrors_per_partition,
        masters_per_partition=masters_per_partition,
        edges_per_partition=assignment.partition_sizes(),
    )
