"""Master/mirror placement derived from a vertex-cut partitioning.

PowerGraph materializes a vertex replica in every partition that holds one
of its edges; one replica is the *master* (holds the authoritative value),
the rest are *mirrors*.  We pick the partition holding the most of the
vertex's edges as master (ties -> lowest partition id), which is what a
locality-aware PowerGraph build does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..partitioners.base import PartitionAssignment

__all__ = ["Placement", "build_placement"]


@dataclass
class Placement:
    """The distributed layout implied by an edge partitioning.

    Attributes
    ----------
    num_partitions:
        ``k``.
    master:
        Partition id of each vertex's master (-1 for edgeless vertices).
    replica_counts:
        ``|P(v)|`` per vertex.
    mirrors_per_partition:
        Number of mirror replicas hosted by each partition.
    masters_per_partition:
        Number of master replicas hosted by each partition.
    edges_per_partition:
        ``|p_i|``.
    """

    num_partitions: int
    master: np.ndarray
    replica_counts: np.ndarray
    mirrors_per_partition: np.ndarray
    masters_per_partition: np.ndarray
    edges_per_partition: np.ndarray

    @property
    def total_mirrors(self) -> int:
        return int(self.mirrors_per_partition.sum())

    @property
    def total_masters(self) -> int:
        return int(self.masters_per_partition.sum())

    def replication_factor(self) -> float:
        active = self.replica_counts[self.replica_counts > 0]
        return float(active.mean()) if active.size else 0.0


def build_placement(assignment: PartitionAssignment) -> Placement:
    """Derive the master/mirror layout from an edge partitioning."""
    stream = assignment.stream
    k = assignment.num_partitions
    n = stream.num_vertices
    # (vertex, partition) incidence counts via a flat key bincount
    keys = np.concatenate(
        [
            stream.src * np.int64(k) + assignment.edge_partition,
            stream.dst * np.int64(k) + assignment.edge_partition,
        ]
    )
    pair_counts = np.bincount(keys, minlength=n * k)
    table = pair_counts.reshape(n, k)
    replica_counts = (table > 0).sum(axis=1).astype(np.int64)
    master = np.where(replica_counts > 0, np.argmax(table, axis=1), -1).astype(
        np.int64
    )
    masters_per_partition = np.bincount(
        master[master >= 0], minlength=k
    ).astype(np.int64)
    replicas_per_partition = (table > 0).sum(axis=0).astype(np.int64)
    mirrors_per_partition = replicas_per_partition - masters_per_partition
    return Placement(
        num_partitions=k,
        master=master,
        replica_counts=replica_counts,
        mirrors_per_partition=mirrors_per_partition,
        masters_per_partition=masters_per_partition,
        edges_per_partition=assignment.partition_sizes(),
    )
