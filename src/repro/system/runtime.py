"""The partition-local GAS runtime: executable master/mirror dataflow.

Unlike :class:`~repro.system.engine.GasEngine` (retained as the
``mode="global"`` oracle), this runtime holds **no global compute state**:
every gather/apply/scatter runs as a vectorized array kernel over one
partition's local sub-graph (:class:`~repro.system.placement.LocalPartition`),
and replicas synchronize exclusively through explicit typed message
buffers (:mod:`repro.system.messages`) routed along the mirror table.

One BSP superstep, with ``A`` the sync-active set entering the step
(every vertex at step 0, then the scatter-activated frontier):

1. **local gather** — each partition computes partial accumulators for
   its active local targets from its local edges only;
2. **gather sync** — every mirror of every ``v in A`` sends its partial
   to ``v``'s master: ``sum(|P(v)| - 1 for v in A)`` messages, *measured*
   by counting buffer rows;
3. **apply** — each partition applies at its active masters (plus the
   coordinator for edgeless vertices, which no partition hosts);
4. **apply sync** — masters broadcast applied values back to mirrors:
   another ``sum(|P(v)| - 1 for v in A)`` measured messages;
5. **scatter/frontier** — partitions locally mark the neighbors of
   locally-changed vertices (every edge is co-located with replicas of
   both endpoints, so this needs no messages); the barrier OR-reduces
   the per-partition bits into the next ``A``.

Per superstep the measured message count therefore equals the paper's
replication-cost formula ``2 * sum(|P(v)| - 1)`` over the sync-active
set — the parity test asserts this on every run, and for PageRank
(dense activation, the Figure 8 workload) it coincides superstep-by-
superstep with the global oracle's modeled cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .._util import group_by_bounded
from ..partitioners.base import PartitionAssignment
from .engine import RunCost, SuperstepCost
from .messages import DensePayload, MessageBuffer, RaggedPayload, ragged_take_indices
from .network import NetworkModel
from .placement import LocalIndex, LocalPartition, build_local_index, build_placement

__all__ = [
    "DenseAccumulator",
    "LabelCountAccumulator",
    "LABEL_COUNT",
    "LocalContext",
    "LocalVertexProgram",
    "LocalGasRuntime",
    "group_label_counts",
    "undirected_incidences",
]


def undirected_incidences(index: LocalIndex) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-partition static ``(targets, sources)`` incidence tables over
    both edge directions — built once at program setup so undirected
    gather kernels (connected components, label propagation) do no
    concatenation inside the per-superstep hot loop."""
    return [
        (
            np.concatenate([p.dst_local, p.src_local]),
            np.concatenate([p.src_local, p.dst_local]),
        )
        for p in index.partitions
    ]


def group_label_counts(
    targets: np.ndarray,
    labels: np.ndarray,
    n_labels: int,
    counts: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact (target, label) histogram as key-sorted COO triples.

    With ``counts=None`` each row counts as one occurrence (the local
    gather over raw incidences); with an int64 ``counts`` array the
    pre-counted histograms are summed (the master-side merge).  Both
    sides of the label-count accumulator share this one key encoding,
    so mirror partials and master merges cannot drift apart.
    """
    key = targets * n_labels + labels
    if counts is None:
        uniq, summed = np.unique(key, return_counts=True)
        summed = summed.astype(np.int64)
    else:
        uniq, inverse = np.unique(key, return_inverse=True)
        summed = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(summed, inverse, counts)
    return uniq // n_labels, uniq % n_labels, summed


@dataclass(frozen=True)
class DenseAccumulator:
    """Fixed-width gather accumulator: one value per vertex.

    ``combine`` must be an associative, commutative ufunc with
    ``identity`` as its neutral element (``np.add`` with 0, ``np.minimum``
    with inf/intmax) — mirrors may merge in any order.
    """

    dtype: np.dtype
    identity: object
    combine: np.ufunc

    def empty(self, n: int) -> np.ndarray:
        return np.full(n, self.identity, dtype=self.dtype)


class LabelCountAccumulator:
    """Ragged gather accumulator: per-vertex (label, count) histograms.

    Partials are COO triples ``(target_local, label, count)`` sorted by
    (target, label); merging concatenates and re-groups with exact
    integer sums, so the result is order-independent.
    """


#: the shared label-histogram accumulator spec (stateless)
LABEL_COUNT = LabelCountAccumulator()


@dataclass
class LocalContext:
    """What a vertex program sees inside one partition: local state only.

    Attributes
    ----------
    part:
        The partition's local index space and edge sub-graph.
    values:
        Current values of the partition's replicas, indexed by local id
        (mirrors hold the last value their master broadcast).
    active:
        Sync-active frontier restricted to local ids.
    runtime:
        The owning runtime, for immutable globals (``num_vertices``) and
        static per-vertex tables built in ``setup``.
    """

    part: LocalPartition
    values: np.ndarray
    active: np.ndarray
    runtime: "LocalGasRuntime"


@runtime_checkable
class LocalVertexProgram(Protocol):
    """Partition-local vertex-program interface.

    ``edge_mode`` declares which incidences gather and activate
    (``"directed"``: in-edges; ``"undirected"``: both directions);
    ``frontier`` is ``"sparse"`` (per-vertex ``changed`` masks drive
    scatter activation) or ``"dense"`` (all-or-nothing activation decided
    by ``check_converged``, PageRank-style); ``accumulator`` is a
    :class:`DenseAccumulator` or :data:`LABEL_COUNT`.

    Optional hooks: ``setup(runtime)`` builds static tables after
    ``init``; ``before_apply(runtime, values_global)`` computes global
    aggregates (tree-reductions in a real deployment); and
    ``post_superstep(runtime, step, changed)`` may rewrite the changed
    mask (label propagation's iteration bound).
    """

    edge_mode: str
    frontier: str
    accumulator: DenseAccumulator | LabelCountAccumulator

    def init(self, runtime: "LocalGasRuntime") -> np.ndarray: ...

    def gather_local(self, ctx: LocalContext): ...

    def apply(
        self, runtime: "LocalGasRuntime", vertex_ids: np.ndarray,
        old_values: np.ndarray, acc,
    ) -> np.ndarray: ...


class LocalGasRuntime:
    """Partition-local GAS runtime bound to one vertex-cut deployment.

    Drop-in alternative to :class:`~repro.system.engine.GasEngine` with
    the same cost-model knobs; ``SuperstepCost.messages``/``bytes`` are
    measured from the exchanged buffers instead of modeled.
    """

    mode = "local"

    def __init__(
        self,
        assignment: PartitionAssignment,
        network: NetworkModel | None = None,
        edges_per_second: float = 5e6,
        vertices_per_second: float = 2e7,
    ) -> None:
        if edges_per_second <= 0 or vertices_per_second <= 0:
            raise ValueError("throughput parameters must be positive")
        self.assignment = assignment
        self.stream = assignment.stream
        self.network = network or NetworkModel()
        self.edges_per_second = float(edges_per_second)
        self.vertices_per_second = float(vertices_per_second)
        self.placement = build_placement(assignment)
        self.index: LocalIndex = build_local_index(assignment, self.placement)
        self.num_vertices = self.stream.num_vertices
        self.num_partitions = assignment.num_partitions
        self._unhosted = self.placement.replica_counts == 0
        #: per-partition replica values during a run (program hooks may read)
        self.values_local: list[np.ndarray] | None = None
        #: per-superstep sync masks of the last run (for the parity test)
        self.sync_masks: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(
        self, program: LocalVertexProgram, max_supersteps: int = 100
    ) -> tuple[np.ndarray, RunCost]:
        """Execute ``program`` to convergence; returns (values, cost)."""
        if max_supersteps <= 0:
            raise ValueError("max_supersteps must be positive")
        values_global = np.ascontiguousarray(program.init(self))
        if hasattr(program, "setup"):
            program.setup(self)
        parts = self.index.partitions
        # deterministic replicated init: every worker evaluates init locally,
        # so the initial load crosses no wires (matching the oracle)
        self.values_local = [values_global[p.vertices] for p in parts]
        n = self.num_vertices
        undirected = program.edge_mode == "undirected"
        spec = program.accumulator
        cost = RunCost()
        self.sync_masks = []
        active = np.ones(n, dtype=bool)
        for step in range(max_supersteps):
            self.sync_masks.append(active.copy())
            active_local = [active[p.vertices] for p in parts]
            # (1) partition-local gather kernels
            partials = [
                program.gather_local(
                    LocalContext(
                        part=p,
                        values=self.values_local[i],
                        active=active_local[i],
                        runtime=self,
                    )
                )
                for i, p in enumerate(parts)
            ]
            # (2) gather sync: mirror -> master accumulator messages
            gather_buf = self._build_gather_buffer(active, partials, spec)
            merged = self._deliver_gather(gather_buf, partials, spec)
            # (3) apply at active masters (+ coordinator for edgeless vertices)
            if hasattr(program, "before_apply"):
                program.before_apply(self, values_global)
            new_global = values_global.copy()
            sparse = program.frontier != "dense"
            changed = np.zeros(n, dtype=bool)
            for i, p in enumerate(parts):
                ids = np.nonzero(p.is_master & active_local[i])[0]
                if ids.size == 0:
                    continue
                gids = p.vertices[ids]
                acc = self._extract_accumulator(merged[i], ids, spec, p)
                new_vals = program.apply(self, gids, self.values_local[i][ids], acc)
                self.values_local[i][ids] = new_vals
                new_global[gids] = new_vals
                if sparse:
                    changed[gids] = new_vals != values_global[gids]
            isolated = active & self._unhosted
            if isolated.any():
                gids = np.nonzero(isolated)[0]
                acc = self._identity_accumulator(spec, gids.size)
                new_vals = program.apply(self, gids, values_global[gids], acc)
                new_global[gids] = new_vals
                if sparse:
                    changed[gids] = new_vals != values_global[gids]
            # (4) apply sync: master -> mirror value broadcasts
            apply_buf = self._build_apply_buffer(active)
            self._deliver_apply(apply_buf)
            # frontier policy
            if program.frontier == "dense":
                converged = program.check_converged(self, values_global, new_global)
                changed = np.full(n, not converged, dtype=bool)
            if hasattr(program, "post_superstep"):
                changed = program.post_superstep(self, step, changed)
            # (5) measured superstep cost
            cost.add(
                self._superstep_cost(
                    step, active, active_local, gather_buf, apply_buf
                )
            )
            values_global = new_global
            if program.frontier == "dense":
                active = changed.copy()
            else:
                active = self._scatter_frontier(changed, undirected)
            if not changed.any():
                break
        self.values_local = None
        return values_global, cost

    # ------------------------------------------------------------------ #
    # message buffers
    # ------------------------------------------------------------------ #

    def _build_gather_buffer(
        self, active: np.ndarray, partials: list, spec
    ) -> MessageBuffer:
        """Pack every active mirror's partial accumulator for its master."""
        routes = self.index.routes
        sel = active[routes.vertex]
        if isinstance(spec, DenseAccumulator):
            chunks = []
            for pid in range(self.num_partitions):
                rows = slice(routes.mirror_indptr[pid], routes.mirror_indptr[pid + 1])
                mask = sel[rows]
                chunks.append(partials[pid][routes.mirror_local[rows][mask]])
            values = (
                np.concatenate(chunks)
                if chunks
                else np.empty(0, dtype=spec.dtype)
            )
            payload = DensePayload(values)
        else:
            lengths_all, labels_all, counts_all = [], [], []
            for pid in range(self.num_partitions):
                part = self.index.partitions[pid]
                targets, labels, counts = partials[pid]
                part_indptr = self._histogram_indptr(targets, part)
                rows = slice(routes.mirror_indptr[pid], routes.mirror_indptr[pid + 1])
                mask = sel[rows]
                locals_sel = routes.mirror_local[rows][mask]
                starts = part_indptr[locals_sel]
                lengths = part_indptr[locals_sel + 1] - starts
                sub_indptr = np.zeros(locals_sel.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=sub_indptr[1:])
                flat = ragged_take_indices(starts, lengths, sub_indptr)
                lengths_all.append(lengths)
                labels_all.append(labels[flat])
                counts_all.append(counts[flat])
            lengths = (
                np.concatenate(lengths_all)
                if lengths_all
                else np.empty(0, dtype=np.int64)
            )
            indptr = np.zeros(lengths.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            payload = RaggedPayload(
                indptr,
                np.concatenate(labels_all) if labels_all else np.empty(0, np.int64),
                np.concatenate(counts_all) if counts_all else np.empty(0, np.int64),
            )
        return MessageBuffer(
            round="gather",
            vertex=routes.vertex[sel],
            src_part=routes.mirror_part[sel],
            dst_part=routes.master_part[sel],
            dst_local=routes.master_local[sel],
            payload=payload,
        )

    def _deliver_gather(
        self, buf: MessageBuffer, partials: list, spec
    ) -> list:
        """Merge mirror accumulators into each master partition's partial."""
        if isinstance(spec, DenseAccumulator):
            for pid in range(self.num_partitions):
                locals_recv, payload = buf.for_partition(pid)
                if locals_recv.size:
                    spec.combine.at(partials[pid], locals_recv, payload.values)
            return partials
        merged = []
        n_labels = self.num_vertices
        for pid in range(self.num_partitions):
            own_t, own_lab, own_cnt = partials[pid]
            locals_recv, payload = buf.for_partition(pid)
            if locals_recv.size == 0:
                # nothing received: the own partial is already grouped
                # and key-sorted, so it is its own merge
                merged.append(partials[pid])
                continue
            recv_lengths = np.diff(payload.indptr)
            recv_t = np.repeat(locals_recv, recv_lengths)
            merged.append(
                group_label_counts(
                    np.concatenate([own_t, recv_t]),
                    np.concatenate([own_lab, payload.labels]),
                    n_labels,
                    counts=np.concatenate([own_cnt, payload.counts]),
                )
            )
        return merged

    def _build_apply_buffer(self, active: np.ndarray) -> MessageBuffer:
        """Broadcast every active vertex's applied value master -> mirrors."""
        routes = self.index.routes
        sel = active[routes.vertex]
        master_part = routes.master_part[sel]
        master_local = routes.master_local[sel]
        dtype = (
            self.values_local[0].dtype
            if self.values_local
            else np.float64
        )
        values = np.empty(master_part.size, dtype=dtype)
        # pack grouped by sending master: one bounded radix argsort
        # instead of one full scan per partition
        order, indptr = group_by_bounded(master_part, self.num_partitions)
        for pid in range(self.num_partitions):
            rows = order[indptr[pid] : indptr[pid + 1]]
            if rows.size:
                values[rows] = self.values_local[pid][master_local[rows]]
        return MessageBuffer(
            round="apply",
            vertex=routes.vertex[sel],
            src_part=master_part,
            dst_part=routes.mirror_part[sel],
            dst_local=routes.mirror_local[sel],
            payload=DensePayload(values),
        )

    def _deliver_apply(self, buf: MessageBuffer) -> None:
        for pid in range(self.num_partitions):
            locals_recv, payload = buf.for_partition(pid)
            if locals_recv.size:
                self.values_local[pid][locals_recv] = payload.values

    # ------------------------------------------------------------------ #
    # accumulator plumbing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _histogram_indptr(targets: np.ndarray, part) -> np.ndarray:
        """Per-local-vertex slice bounds of a target-sorted histogram
        (O(V + H) bincount prefix sum)."""
        indptr = np.zeros(part.num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(targets, minlength=part.num_vertices), out=indptr[1:])
        return indptr

    def _extract_accumulator(self, merged, ids: np.ndarray, spec, part):
        if isinstance(spec, DenseAccumulator):
            return merged[ids]
        targets, labels, counts = merged
        part_indptr = self._histogram_indptr(targets, part)
        starts = part_indptr[ids]
        lengths = part_indptr[ids + 1] - starts
        indptr = np.zeros(ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        flat = ragged_take_indices(starts, lengths, indptr)
        return indptr, labels[flat], counts[flat]

    def _identity_accumulator(self, spec, n: int):
        if isinstance(spec, DenseAccumulator):
            return spec.empty(n)
        return (
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # frontier + cost
    # ------------------------------------------------------------------ #

    def _scatter_frontier(self, changed: np.ndarray, undirected: bool) -> np.ndarray:
        """Partition-local scatter: activate neighbors of changed vertices.

        Every edge is co-located with replicas of both endpoints, so the
        marking is message-free; the barrier OR-reduces the bits (the
        control bits piggyback on the sync rounds in a real deployment).
        """
        nxt = np.zeros(self.num_vertices, dtype=bool)
        for p in self.index.partitions:
            changed_local = changed[p.vertices]
            activated = np.zeros(p.num_vertices, dtype=bool)
            activated[p.dst_local[changed_local[p.src_local]]] = True
            if undirected:
                activated[p.src_local[changed_local[p.dst_local]]] = True
            nxt[p.vertices[activated]] = True
        return nxt

    def _superstep_cost(
        self,
        step: int,
        active: np.ndarray,
        active_local: list[np.ndarray],
        gather_buf: MessageBuffer,
        apply_buf: MessageBuffer,
    ) -> SuperstepCost:
        parts = self.index.partitions
        active_edges = np.array(
            [
                np.count_nonzero(al[p.src_local] | al[p.dst_local])
                for p, al in zip(parts, active_local)
            ],
            dtype=np.int64,
        )
        active_masters = np.array(
            [
                np.count_nonzero(p.is_master & al)
                for p, al in zip(parts, active_local)
            ],
            dtype=np.int64,
        )
        compute_per_partition = (
            active_edges / self.edges_per_second
            + active_masters / self.vertices_per_second
        )
        messages = gather_buf.count + apply_buf.count
        volume = gather_buf.payload_nbytes + apply_buf.payload_nbytes
        return SuperstepCost(
            superstep=step,
            active_vertices=int(np.count_nonzero(active)),
            active_edges=int(active_edges.sum()),
            messages=messages,
            bytes=volume,
            compute_seconds=float(compute_per_partition.max(initial=0.0)),
            comm_seconds=self.network.comm_seconds(messages, volume),
        )
