"""Online incremental partition maintenance on top of the CLUGP passes.

``repro.core`` answers the batch question ("partition this stream");
this package answers the serving question ("keep the partition good
while the stream keeps arriving").  :class:`PartitionService` is the
entry point; :class:`MigrationPlan` / :class:`BatchStats` are its
per-batch products.  See docs/service.md for the operator guide and
DESIGN.md §7 for the invariants and the drift/churn analysis.
"""

from .plan import BatchStats, MigrationPlan, plan_migrations
from .service import PartitionService

__all__ = ["PartitionService", "MigrationPlan", "BatchStats", "plan_migrations"]
