"""Migration planning for the incremental service.

A batch of new edges moves the clustering, which moves the game
equilibrium, which would like to move vertices between partitions.  A
serving system cannot afford unbounded reshuffles: every moved vertex
drags its incident edges (replica state, routing entries) with it.  The
planner therefore turns the *ideal* vertex->partition map produced by the
refreshed equilibrium into a bounded :class:`MigrationPlan`:

* vertices seen for the first time in this batch are placed directly
  (initial placement is not a migration and is never capped);
* previously served vertices whose ideal partition changed become
  *candidate* moves; at most ``cap`` of them are applied per batch,
  highest-degree first (a high-degree vertex influences the most edges,
  so applying its move earliest buys the most replication-factor repair
  per unit of churn), ties broken by ascending vertex id so plans are
  deterministic;
* the rest are *deferred* — not queued, simply left in place.  The next
  batch recomputes the ideal map from scratch, so a deferred move that
  is still worth making reappears and one that the equilibrium walked
  back disappears for free.

DESIGN.md §7 discusses the resulting replication-drift vs churn
tradeoff with measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MigrationPlan", "BatchStats", "plan_migrations"]


@dataclass(frozen=True)
class MigrationPlan:
    """A bounded set of vertex->partition moves for one batch.

    Attributes
    ----------
    vertices:
        Vertex ids to move, ascending.
    sources:
        ``sources[i]`` — the partition ``vertices[i]`` is served from now.
    targets:
        ``targets[i]`` — the partition it moves to (``!= sources[i]``).
    candidates:
        Number of vertices whose ideal partition differed before the cap
        was applied; ``candidates - len(vertices)`` moves were deferred.
    cap:
        The per-batch move budget this plan respected (``None`` =
        unbounded).
    """

    vertices: np.ndarray
    sources: np.ndarray
    targets: np.ndarray
    candidates: int
    cap: int | None

    @property
    def applied(self) -> int:
        """Number of moves this plan carries (``<= cap`` when capped)."""
        return int(self.vertices.size)

    @property
    def deferred(self) -> int:
        """Candidate moves left in place for a later batch to revisit."""
        return self.candidates - self.applied


@dataclass
class BatchStats:
    """Per-batch service diagnostics (one row of the incremental bench).

    ``replication_factor`` / ``relative_balance`` are ``None`` on batches
    where quality collection was skipped (``quality_every`` > 1);
    ``rf_oracle`` is filled only when the caller ran the from-scratch
    oracle against this batch's state.
    """

    batch: int
    num_edges: int
    total_edges: int
    seconds: float
    clusters: int
    frontier_clusters: int
    game_rounds: int
    game_moves: int
    candidate_moves: int
    applied_moves: int
    deferred_moves: int
    reassigned_edges: int
    churn_edges: int
    replication_factor: float | None = None
    relative_balance: float | None = None
    rf_oracle: float | None = None
    extras: dict = field(default_factory=dict)

    @property
    def edges_per_second(self) -> float:
        """Batch ingest throughput (maintenance work only, metrics excluded)."""
        return self.num_edges / self.seconds if self.seconds > 0 else 0.0

    @property
    def rf_drift(self) -> float | None:
        """Relative replication-factor excess over the from-scratch oracle.

        ``(RF_service - RF_oracle) / RF_oracle``; ``None`` unless both the
        service RF and the oracle RF were recorded for this batch.
        """
        if self.rf_oracle is None or self.replication_factor is None:
            return None
        if self.rf_oracle <= 0:
            return None
        return (self.replication_factor - self.rf_oracle) / self.rf_oracle

    def to_dict(self) -> dict:
        """Machine-readable row (benchmark JSON, CLI --json)."""
        return {
            "batch": self.batch,
            "num_edges": self.num_edges,
            "total_edges": self.total_edges,
            "seconds": self.seconds,
            "edges_per_second": self.edges_per_second,
            "clusters": self.clusters,
            "frontier_clusters": self.frontier_clusters,
            "game_rounds": self.game_rounds,
            "game_moves": self.game_moves,
            "candidate_moves": self.candidate_moves,
            "applied_moves": self.applied_moves,
            "deferred_moves": self.deferred_moves,
            "reassigned_edges": self.reassigned_edges,
            "churn_edges": self.churn_edges,
            "replication_factor": self.replication_factor,
            "relative_balance": self.relative_balance,
            "rf_oracle": self.rf_oracle,
            "rf_drift": self.rf_drift,
            **self.extras,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchStats":
        """Rebuild a row from :meth:`to_dict` output (checkpoint restore).

        Derived fields (``edges_per_second``, ``rf_drift``) are dropped —
        they recompute from the stored fields; unknown keys land back in
        ``extras`` so custom annotations survive the round trip.
        """
        data = dict(data)
        data.pop("edges_per_second", None)
        data.pop("rf_drift", None)
        known = {
            "batch", "num_edges", "total_edges", "seconds", "clusters",
            "frontier_clusters", "game_rounds", "game_moves",
            "candidate_moves", "applied_moves", "deferred_moves",
            "reassigned_edges", "churn_edges", "replication_factor",
            "relative_balance", "rf_oracle",
        }
        extras = {k: v for k, v in data.items() if k not in known}
        kwargs = {k: v for k, v in data.items() if k in known}
        return cls(extras=extras, **kwargs)


def plan_migrations(
    served: np.ndarray,
    ideal: np.ndarray,
    degree: np.ndarray,
    cap: int | None,
) -> MigrationPlan:
    """Diff the served map against the ideal map into a capped plan.

    Parameters
    ----------
    served:
        Current vertex->partition map (``-1`` = never placed).
    ideal:
        The map the refreshed equilibrium wants (``-1`` = not clustered).
    degree:
        Per-vertex stream degrees; the cap keeps the ``cap``
        highest-degree candidates (ties broken by ascending vertex id).
    cap:
        Per-batch move budget; ``None`` applies every candidate.

    Only vertices placed in *both* maps are candidates — initial
    placements are handled by the caller and never consume budget.  The
    returned plan's ``vertices`` are sorted ascending regardless of the
    selection order, so applying a plan is deterministic.
    """
    served = np.asarray(served)
    ideal = np.asarray(ideal)
    cand = np.flatnonzero((served >= 0) & (ideal >= 0) & (served != ideal))
    if cap is not None and cap < 0:
        raise ValueError(f"cap must be >= 0 or None, got {cap}")
    if cap is not None and cand.size > cap:
        order = np.lexsort((cand, -np.asarray(degree)[cand]))
        keep = np.sort(cand[order[:cap]])
    else:
        keep = cand
    return MigrationPlan(
        vertices=keep,
        sources=served[keep].copy(),
        targets=ideal[keep].copy(),
        candidates=int(cand.size),
        cap=cap,
    )
