"""The long-lived incremental partition maintainer (``clugp serve``).

The batch pipeline answers "partition this graph"; a serving system asks
the harder question "keep this graph partitioned while it grows".  The
:class:`PartitionService` holds the three CLUGP passes warm across an
unbounded sequence of edge batches:

* **pass 1 never restarts** — one :class:`~repro.core.clustering.
  ClusteringState` ingests every batch; :meth:`~repro.core.clustering.
  ClusteringState.snapshot` compacts the live state per batch without
  ending ingestion, so the clustering is always exactly what the batch
  pipeline would have produced on the concatenated stream;
* **pass 2 replays only the dirty frontier** — clusters whose vertex
  neighborhoods changed this batch, clusters born this batch, and their
  cluster-graph neighbors; everything else is frozen at the previous
  equilibrium (warm-started via raw-cluster-id stability).  Because the
  game is an exact potential game, the restricted dynamics still strictly
  descend the same potential and terminate (see
  :meth:`~repro.core.game.ClusterPartitioningGame.run`); with
  ``game.game_impl="jit"`` the frontier-restricted rounds run inside the
  fused :mod:`repro.kernels` game kernel (the ``active`` player list and
  the warm-started assignment cross the kernel boundary unchanged, so
  served partitions stay bit-identical to the numpy engine);
* **pass 3 applies deltas** — the refreshed ideal map is diffed against
  the served map into a bounded :class:`~repro.service.plan.
  MigrationPlan`; only edges incident to moved vertices plus the new
  batch re-stream through a :class:`~repro.core.transform.TransformState`
  seeded with the retained per-partition loads (``initial_loads``) and
  per-partition caps from the PR-5 quota exchange
  (:func:`~repro.core.distributed.balance_quotas`; single-node it
  degenerates to the uniform ``L_max``), so churn is bounded by
  construction and the hard balance cap keeps holding.

The first batch takes the exact batch-pipeline path (no warm start, no
frontier, no migration diff), so a service fed the whole stream as one
batch is **bit-identical** to :meth:`~repro.core.partitioner.
ClugpPartitioner.partition` — the anchor invariant of
``tests/test_service.py``.  DESIGN.md §7 states all the invariants and
the measured drift/churn tradeoff.
"""

from __future__ import annotations

import math
import os

import numpy as np

from .._util import Timer
from ..config import ClugpConfig
from ..core.clustering import ClusteringState
from ..core.cluster_graph import build_cluster_graph
from ..core.distributed import balance_quotas
from ..core.game import ClusterPartitioningGame
from ..core.partitioner import ClugpPartitioner
from ..core.transform import TransformState
from ..graph.stream import EdgeStream
from ..partitioners.base import PartitionAssignment
from ..reliability.checkpoint import BatchJournal, CheckpointError, CheckpointManager
from .plan import BatchStats, MigrationPlan, plan_migrations

__all__ = ["PartitionService"]

#: checkpoint payload format version (bumped on incompatible layout changes)
_CKPT_FORMAT = 1


def _jsonable(obj):
    """Recursively convert numpy scalars so ``meta`` survives ``json.dumps``."""
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {key: _jsonable(val) for key, val in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(val) for val in obj]
    return obj


def _grow(buf: np.ndarray, used: int, extra: int, fill: int | None = None) -> np.ndarray:
    """Return ``buf`` with capacity for ``used + extra`` entries (amortized
    doubling); newly exposed cells are ``fill`` when given."""
    need = used + extra
    if need <= buf.size:
        return buf
    cap = max(need, 2 * buf.size, 1024)
    out = np.empty(cap, dtype=buf.dtype)
    out[:used] = buf[:used]
    if fill is not None:
        out[used:] = fill
    return out


class PartitionService:
    """Maintain a CLUGP partition over a continuously growing edge stream.

    Parameters
    ----------
    num_vertices:
        Size of the vertex-id space.  Fixed for the service lifetime (the
        paper's streams are crawls over a known id space; growing ``|V|``
        online would need growable vertex tables — see docs/service.md).
    config:
        Pipeline configuration; ``config.num_partitions`` is ``k``.  The
        service always runs the sequential vectorized game (the batched
        parallel game produces identical assignments but has no
        frontier-restriction hook) and always uses the game
        (``use_game=False`` has no warm-startable equilibrium).
    migration_cap:
        Per-batch budget of served-vertex moves (``None`` = unbounded).
        Initial placements of new vertices never consume budget.
    expected_edges:
        Resolve ``V_max`` against this count instead of the first batch's
        size.  With neither this nor ``config.max_cluster_volume`` set,
        ``V_max`` locks to ``config.resolve_vmax(first batch size)`` —
        which is exactly what the batch pipeline uses when the whole
        stream arrives as one batch (the bit-identity anchor), but is a
        poor choice when the first batch is a sliver of the eventual
        stream; operators should pass an estimate.
    quality_every:
        Collect replication factor / balance every this many batches
        (they cost a full O(E) pass each; 1 = every batch).

    Usage::

        svc = PartitionService(n, config, migration_cap=64)
        for chunk in feed:                     # (m, 2) int64 arrays
            stats = svc.ingest(chunk)
        assignment = svc.assignment()          # full PartitionAssignment
    """

    def __init__(
        self,
        num_vertices: int,
        config: ClugpConfig | None = None,
        migration_cap: int | None = None,
        expected_edges: int | None = None,
        quality_every: int = 1,
        checkpoint_dir: str | None = None,
    ) -> None:
        self.config = config or ClugpConfig()
        self.num_vertices = int(num_vertices)
        self.k = self.config.num_partitions
        if migration_cap is not None and migration_cap < 0:
            raise ValueError(f"migration_cap must be >= 0 or None, got {migration_cap}")
        self.migration_cap = migration_cap
        self.expected_edges = expected_edges
        if quality_every < 1:
            raise ValueError(f"quality_every must be >= 1, got {quality_every}")
        self.quality_every = int(quality_every)
        n = self.num_vertices
        self._state: ClusteringState | None = None  # created on first batch
        self._src = np.empty(0, dtype=np.int64)
        self._dst = np.empty(0, dtype=np.int64)
        self._edge_part = np.empty(0, dtype=np.int64)
        self._num_edges = 0
        self._vp = np.full(n, -1, dtype=np.int64)  # served vertex->partition
        self._raw_assign = np.full(0, -1, dtype=np.int64)  # raw cluster->partition
        self._loads = np.zeros(self.k, dtype=np.int64)
        self.batch_index = 0
        self.history: list[BatchStats] = []
        self.last_plan: MigrationPlan | None = None
        # -- durability (checkpoint + write-ahead journal); see
        #    docs/reliability.md and DESIGN.md §9
        self.checkpoint_dir = checkpoint_dir
        self._ckpt: CheckpointManager | None = None
        self._journal: BatchJournal | None = None
        self._durability_paused = False  # True while replaying the journal
        # -- resident distributed worker pool (attach_runtime /
        #    distributed_refresh); spawned lazily, survives across batches
        self._runtime = None
        self._owns_runtime = False
        if checkpoint_dir is not None:
            self._ckpt = CheckpointManager(
                checkpoint_dir, keep=self.config.reliability.checkpoint_keep
            )
            self._journal = BatchJournal(
                os.path.join(checkpoint_dir, "journal.wal"),
                sync=self.config.reliability.journal_sync,
            )
            # anchor checkpoint: recovery always has a base to replay onto,
            # even if the process dies before the first cadence checkpoint
            self.checkpoint()

    # ------------------------------------------------------------------ #
    # read-side API
    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        """Edges ingested so far (across all batches)."""
        return self._num_edges

    @property
    def vertex_partition(self) -> np.ndarray:
        """The served vertex->partition map (copy; ``-1`` = never seen)."""
        return self._vp.copy()

    @property
    def edge_partition(self) -> np.ndarray:
        """Partition id of every ingested edge, in arrival order (copy)."""
        return self._edge_part[: self._num_edges].copy()

    @property
    def loads(self) -> np.ndarray:
        """Current per-partition edge counts (copy)."""
        return self._loads.copy()

    def stream(self) -> EdgeStream:
        """The concatenated stream ingested so far (views, zero-copy)."""
        return EdgeStream(
            self._src[: self._num_edges],
            self._dst[: self._num_edges],
            self.num_vertices,
        )

    def assignment(self) -> PartitionAssignment:
        """The served state as a full :class:`PartitionAssignment`."""
        return PartitionAssignment(
            self.stream(), self._edge_part[: self._num_edges], self.k
        )

    def oracle_assignment(self) -> PartitionAssignment:
        """Run the from-scratch batch pipeline on everything ingested.

        The drift oracle: what a cold :class:`~repro.core.partitioner.
        ClugpPartitioner` (same config and ``V_max``) would produce if the
        stream arrived all at once.  O(E) work — benchmarking only.
        """
        cfg = self._locked_config()
        part = ClugpPartitioner(self.k, seed=cfg.game.seed, config=cfg)
        return part.partition(self.stream())

    def _locked_config(self) -> ClugpConfig:
        """The config with ``V_max`` pinned to the service's locked value."""
        if self._state is None:
            raise RuntimeError("no batch ingested yet")
        return self.config.with_(max_cluster_volume=self._state.max_volume)

    def summary(self) -> dict:
        """Aggregate service counters (CLI/bench reporting)."""
        secs = sum(s.seconds for s in self.history)
        return {
            "batches": self.batch_index,
            "num_edges": self._num_edges,
            "num_vertices": self.num_vertices,
            "num_partitions": self.k,
            "migration_cap": self.migration_cap,
            "seconds": secs,
            "edges_per_second": self._num_edges / secs if secs > 0 else 0.0,
            "applied_moves": sum(s.applied_moves for s in self.history),
            "deferred_moves": sum(s.deferred_moves for s in self.history),
            "churn_edges": sum(s.churn_edges for s in self.history),
            "reassigned_edges": sum(s.reassigned_edges for s in self.history),
        }

    # ------------------------------------------------------------------ #
    # durability: checkpoint / restore / write-ahead journal
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> str:
        """Write a checkpoint of the full service state now; returns its path.

        Also truncates the write-ahead journal — every journaled batch is
        contained in the checkpoint, so replaying it would double-count.
        Called automatically every ``config.reliability.checkpoint_every``
        batches when the service was built with a ``checkpoint_dir``.
        """
        if self._ckpt is None:
            raise RuntimeError("service was constructed without checkpoint_dir")
        m = self._num_edges
        arrays = {
            "src": self._src[:m],
            "dst": self._dst[:m],
            "edge_part": self._edge_part[:m],
            "vp": self._vp,
            "raw_assign": self._raw_assign,
            "loads": self._loads,
        }
        state_meta = None
        if self._state is not None:
            state_arrays, state_meta = self._state.state_dict()
            arrays.update({f"state__{k}": a for k, a in state_arrays.items()})
        meta = _jsonable({
            "format": _CKPT_FORMAT,
            "num_vertices": self.num_vertices,
            "k": self.k,
            "migration_cap": self.migration_cap,
            "expected_edges": self.expected_edges,
            "quality_every": self.quality_every,
            "batch_index": self.batch_index,
            "num_edges": m,
            "config": self.config.to_dict(),
            "history": [s.to_dict() for s in self.history],
            "has_state": self._state is not None,
            "state_meta": state_meta,
        })
        path = self._ckpt.save(self.batch_index, arrays, meta)
        if self._journal is not None:
            self._journal.reset()
        return path

    def _maybe_checkpoint(self) -> None:
        """Cadence hook: checkpoint when the batch counter hits the period."""
        if self._ckpt is None or self._durability_paused:
            return
        if self.batch_index % self.config.reliability.checkpoint_every == 0:
            self.checkpoint()

    def _restore(self, arrays: dict, meta: dict) -> None:
        """Load checkpoint payload into this (freshly constructed) service."""
        m = int(meta["num_edges"])
        self._num_edges = m
        self._src = np.ascontiguousarray(arrays["src"], dtype=np.int64)
        self._dst = np.ascontiguousarray(arrays["dst"], dtype=np.int64)
        self._edge_part = np.ascontiguousarray(arrays["edge_part"], dtype=np.int64)
        self._vp = np.ascontiguousarray(arrays["vp"], dtype=np.int64)
        self._raw_assign = np.ascontiguousarray(arrays["raw_assign"], dtype=np.int64)
        self._loads = np.ascontiguousarray(arrays["loads"], dtype=np.int64)
        self.batch_index = int(meta["batch_index"])
        self.history = [BatchStats.from_dict(d) for d in meta["history"]]
        if meta["has_state"]:
            prefix = "state__"
            state_arrays = {
                key[len(prefix):]: a
                for key, a in arrays.items()
                if key.startswith(prefix)
            }
            self._state = ClusteringState.from_state(
                state_arrays,
                meta["state_meta"],
                chunk_impl=self.config.chunk_impl,
                kernel_backend=self.config.kernel_backend,
            )

    @classmethod
    def resume(cls, checkpoint_dir: str) -> "PartitionService":
        """Rebuild a service from ``checkpoint_dir`` and replay its journal.

        Recovery protocol (DESIGN.md §9): load the newest checkpoint that
        verifies (corrupt files are skipped), restore every buffer and the
        live clustering state bit-for-bit, then re-ingest every journaled
        batch whose index is at or past the checkpoint's — the journal is
        written *ahead* of ingestion, so batches the dead process had
        acknowledged but not yet checkpointed are recovered, and batch
        indices make the replay idempotent.  A fresh checkpoint is written
        at the end, so a crash *during* resume just resumes again from the
        same inputs.  Raises :class:`CheckpointError` when no checkpoint
        in the directory verifies.
        """
        mgr = CheckpointManager(checkpoint_dir, keep=2)
        found = mgr.latest()
        if found is None:
            raise CheckpointError(f"no loadable checkpoint in {checkpoint_dir}")
        _, arrays, meta = found
        if meta.get("format") != _CKPT_FORMAT:
            raise CheckpointError(
                f"{checkpoint_dir}: unsupported service checkpoint format "
                f"{meta.get('format')!r}"
            )
        cfg = ClugpConfig.from_dict(meta["config"])
        svc = cls(
            int(meta["num_vertices"]),
            config=cfg,
            migration_cap=meta["migration_cap"],
            expected_edges=meta["expected_edges"],
            quality_every=int(meta["quality_every"]),
        )
        svc._restore(arrays, meta)
        # attach durability only after the restore: constructing with
        # checkpoint_dir would write an empty anchor checkpoint over the
        # directory we are recovering from
        mgr.keep = cfg.reliability.checkpoint_keep
        svc.checkpoint_dir = checkpoint_dir
        svc._ckpt = mgr
        svc._journal = BatchJournal(
            os.path.join(checkpoint_dir, "journal.wal"),
            sync=cfg.reliability.journal_sync,
        )
        records = svc._journal.replay()
        svc._durability_paused = True
        try:
            for batch, u, v in records:
                if batch >= svc.batch_index:
                    svc.ingest_pair(u, v)
        finally:
            svc._durability_paused = False
        svc.checkpoint()
        return svc

    def close(self) -> None:
        """Release the journal handle and any owned worker pool (idempotent)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._runtime is not None and self._owns_runtime:
            self._runtime.close()
        self._runtime = None
        self._owns_runtime = False

    # ------------------------------------------------------------------ #
    # distributed refresh on resident workers
    # ------------------------------------------------------------------ #

    def attach_runtime(self, runtime) -> None:
        """Attach an externally owned persistent worker pool.

        Subsequent :meth:`distributed_refresh` calls reuse its resident
        workers (the service never closes an attached pool — the caller
        owns its lifecycle; pools the service spawns itself are owned and
        closed by :meth:`close`).
        """
        if self._runtime is not None and self._owns_runtime:
            self._runtime.close()
        self._runtime = runtime
        self._owns_runtime = False

    def distributed_refresh(self, num_nodes: int | None = None,
                            merge_mode: str = "merged"):
        """Re-partition everything ingested on the persistent backend.

        The distributed drift oracle: what the ``backend="persistent"``
        deployment would produce from scratch on the accumulated stream,
        with the service's locked ``V_max``.  The worker pool is resident
        — first call spawns it (unless :meth:`attach_runtime` provided
        one), later calls re-feed the grown stream to the *same*
        processes, so periodic refreshes pay no spawn cost.  Returns the
        :class:`~repro.core.distributed.DistributedResult`; the served
        state is not touched.
        """
        from ..core.distributed import distributed_clugp

        cfg = self._locked_config()
        stream = self.stream()
        nodes = num_nodes if num_nodes is not None else (
            self._runtime.num_workers if self._runtime is not None else 4
        )
        nodes = min(int(nodes), max(1, stream.num_edges))
        if self._runtime is None or self._runtime.num_workers != nodes:
            from ..distributed.runtime import PersistentRuntime

            if self._runtime is not None and self._owns_runtime:
                self._runtime.close()
            self._runtime = PersistentRuntime(nodes)
            self._owns_runtime = True
        return distributed_clugp(
            stream, self.k, nodes, config=cfg, seed=cfg.game.seed,
            merge_mode=merge_mode, backend="persistent", runtime=self._runtime,
        )

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #

    def ingest(self, edges: np.ndarray) -> BatchStats:
        """Ingest one ``(m, 2)`` int64 edge batch; returns its stats."""
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        return self.ingest_pair(edges[:, 0], edges[:, 1])

    def ingest_pair(self, u: np.ndarray, v: np.ndarray) -> BatchStats:
        """Ingest one batch given as endpoint column arrays.

        Runs the full maintenance cycle — warm pass 1, frontier game,
        capped migration plan, delta pass 3 — and appends the resulting
        :class:`BatchStats` to :attr:`history`.
        """
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError("endpoint arrays must be 1-D and equal length")
        m_batch = u.shape[0]
        if m_batch and (
            min(int(u.min()), int(v.min())) < 0
            or max(int(u.max()), int(v.max())) >= self.num_vertices
        ):
            raise ValueError("vertex ids out of range")
        # write-ahead: the batch hits the journal before any state mutates,
        # so a crash mid-maintenance replays it instead of losing it
        if self._journal is not None and not self._durability_paused:
            self._journal.append(self.batch_index, u, v)
        if m_batch == 0:
            stats = BatchStats(
                batch=self.batch_index, num_edges=0, total_edges=self._num_edges,
                seconds=0.0, clusters=0, frontier_clusters=0, game_rounds=0,
                game_moves=0, candidate_moves=0, applied_moves=0,
                deferred_moves=0, reassigned_edges=0, churn_edges=0,
            )
            self.batch_index += 1
            self.history.append(stats)
            self._maybe_checkpoint()
            return stats

        with Timer() as t:
            stats = self._maintain(u, v, m_batch)
        stats.seconds = t.elapsed
        if self.batch_index % self.quality_every == 0:
            a = self.assignment()
            stats.replication_factor = a.replication_factor()
            stats.relative_balance = a.relative_balance()
        self.batch_index += 1
        self.history.append(stats)
        self._maybe_checkpoint()
        return stats

    def _maintain(self, u: np.ndarray, v: np.ndarray, m_batch: int) -> BatchStats:
        """One maintenance cycle (the hot path timed by :meth:`ingest_pair`)."""
        cfg = self.config
        k = self.k
        n = self.num_vertices
        first = self._state is None
        if first:
            vmax = cfg.resolve_vmax(
                self.expected_edges if self.expected_edges else m_batch
            )
            self._state = ClusteringState(
                n,
                vmax,
                enable_splitting=cfg.enable_splitting,
                chunk_impl=cfg.chunk_impl,
                kernel_backend=cfg.kernel_backend,
            )
        state = self._state

        # -- pass 1 (warm): dirty raw clusters are those touching batch
        #    endpoints before OR after ingestion (migration/splitting can
        #    move an endpoint's whole neighborhood's cut structure)
        endpoints = np.unique(np.concatenate([u, v]))
        prev_raw = state.raw_clusters(endpoints)
        state.ingest_pair(u, v)
        new_raw = state.raw_clusters(endpoints)
        snap = state.snapshot()
        m_clusters = snap.num_clusters

        old_edges = self._num_edges
        total = old_edges + m_batch
        self._src = _grow(self._src, old_edges, m_batch)
        self._dst = _grow(self._dst, old_edges, m_batch)
        self._edge_part = _grow(self._edge_part, old_edges, m_batch)
        self._src[old_edges:total] = u
        self._dst[old_edges:total] = v
        self._num_edges = total
        stream = self.stream()

        # -- pass 2 (frontier-restricted, warm-started)
        graph = build_cluster_graph(stream, snap)
        raw_to_compact = np.full(state.num_raw, -1, dtype=np.int64)
        raw_to_compact[snap.raw_ids] = np.arange(m_clusters, dtype=np.int64)
        if first:
            init = None
            active = None
            frontier_size = m_clusters
        else:
            init, active = self._warm_start(snap, graph, prev_raw, new_raw,
                                            raw_to_compact, m_clusters)
            frontier_size = int(active.sum())
        game = ClusterPartitioningGame(
            graph, k, cfg.game, vectorized=True, initial_assignment=init
        )
        result = game.run(active=active)

        # persist the equilibrium against stable raw ids for the next batch
        self._raw_assign = _grow(
            self._raw_assign, self._raw_assign.size,
            state.num_raw - self._raw_assign.size, fill=-1,
        )
        self._raw_assign[snap.raw_ids] = result.assignment

        # -- migration plan: diff served map against the refreshed ideal
        ideal = np.full(n, -1, dtype=np.int64)
        seen = snap.cluster_of >= 0
        ideal[seen] = result.assignment[snap.cluster_of[seen]]
        plan = plan_migrations(self._vp, ideal, snap.degree, self.migration_cap)
        self.last_plan = plan
        newly_placed = (self._vp < 0) & (ideal >= 0)
        self._vp[newly_placed] = ideal[newly_placed]
        if plan.vertices.size:
            self._vp[plan.vertices] = plan.targets

        # -- pass 3 (delta): re-route edges incident to moved vertices,
        #    then stream the new batch, against retained loads and the
        #    quota-exchange caps
        if plan.vertices.size and old_edges:
            moved = np.zeros(n, dtype=bool)
            moved[plan.vertices] = True
            affected = np.flatnonzero(
                moved[self._src[:old_edges]] | moved[self._dst[:old_edges]]
            )
        else:
            affected = np.empty(0, dtype=np.int64)
        loads = self._loads
        old_parts = self._edge_part[affected].copy()
        if affected.size:
            loads -= np.bincount(old_parts, minlength=k)
        cap = max(1, math.ceil(cfg.imbalance_factor * total / k))
        caps = balance_quotas(loads.reshape(1, k), cap)[0]
        transform = TransformState(
            snap, None, k,
            num_edges=int(affected.size) + m_batch,
            num_vertices=n,
            imbalance_factor=cfg.imbalance_factor,
            vertex_partition=self._vp,
            load_caps=caps,
            initial_loads=loads,
            chunk_impl=cfg.chunk_impl,
            kernel_backend=cfg.kernel_backend,
        )
        churn = 0
        if affected.size:
            re_parts = transform.ingest_pair(
                self._src[affected], self._dst[affected]
            )
            self._edge_part[affected] = re_parts
            churn = int((re_parts != old_parts).sum())
        self._edge_part[old_edges:total] = transform.ingest_pair(u, v)
        self._loads = transform.loads

        return BatchStats(
            batch=self.batch_index,
            num_edges=m_batch,
            total_edges=total,
            seconds=0.0,  # stamped by ingest_pair
            clusters=m_clusters,
            frontier_clusters=frontier_size,
            game_rounds=result.rounds,
            game_moves=result.moves,
            candidate_moves=plan.candidates,
            applied_moves=plan.applied,
            deferred_moves=plan.deferred,
            reassigned_edges=int(affected.size),
            churn_edges=churn,
        )

    def _warm_start(
        self,
        snap,
        graph,
        prev_raw: np.ndarray,
        new_raw: np.ndarray,
        raw_to_compact: np.ndarray,
        m_clusters: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Build the warm-start assignment and the dirty-frontier mask.

        *Warm start*: every compact cluster whose raw id carried an
        assignment last batch inherits it; a newborn cluster adopts the
        served partition of its highest-degree previously-placed member
        (it probably split or migrated out of that neighborhood), else
        the least-loaded partition.

        *Frontier*: clusters that gained/lost batch endpoints, newborn
        clusters, and their one-hop cluster-graph neighbors (a changed
        cluster shifts its neighbors' cut costs, so they must be allowed
        to respond; anything further is provably cost-unchanged this
        batch and stays frozen).
        """
        dirty = np.zeros(m_clusters, dtype=bool)
        touched_raw = np.concatenate([prev_raw[prev_raw >= 0], new_raw[new_raw >= 0]])
        if touched_raw.size:
            tc = raw_to_compact[np.unique(touched_raw)]
            dirty[tc[tc >= 0]] = True

        init = np.full(m_clusters, -1, dtype=np.int64)
        known_raw = snap.raw_ids[snap.raw_ids < self._raw_assign.size]
        known_compact = raw_to_compact[known_raw]
        init[known_compact] = self._raw_assign[known_raw]
        dirty |= init < 0  # newborn clusters always play

        unknown = init < 0
        if unknown.any():
            cand = np.flatnonzero(
                (snap.cluster_of >= 0)
                & unknown[np.maximum(snap.cluster_of, 0)]
                & (self._vp >= 0)
            )
            if cand.size:
                cl = snap.cluster_of[cand]
                order = np.lexsort((cand, -snap.degree[cand], cl))
                grouped = cand[order]
                labels, firsts = np.unique(cl[order], return_index=True)
                init[labels] = self._vp[grouped[firsts]]
            still = np.flatnonzero(init < 0)
            if still.size:
                filled = init >= 0
                load_init = np.bincount(
                    init[filled], weights=graph.internal[filled].astype(np.float64),
                    minlength=self.k,
                )
                for c in still.tolist():
                    p = int(np.argmin(load_init))
                    init[c] = p
                    load_init[p] += float(graph.internal[c])

        indptr, indices, _ = graph.sym()
        frontier = dirty.copy()
        if indices.size:
            rows = np.repeat(
                np.arange(m_clusters, dtype=np.int64), np.diff(indptr)
            )
            frontier[indices[dirty[rows]]] = True
        return init, frontier
