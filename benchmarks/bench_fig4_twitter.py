"""Figure 4 — behaviour on a social graph (Twitter stand-in).

Paper's claims:
  (a) on social graphs CLUGP's replication factor is close to HDRF's (may
      be slightly higher) — the clustering advantage is a *web graph*
      property;
  (b) the *total task* cost (partitioning + PageRank execution) of CLUGP is
      still much lower than HDRF's, because partitioning time dominates.
"""

from repro.bench.harness import rf_vs_partitions, series_table, run_algorithm
from repro.system import make_engine
from repro.system.apps.pagerank import pagerank

from conftest import run_once

K_VALUES = [4, 16, 64]


def test_fig4a_rf_on_social_graph(benchmark, twitter_stream):
    def sweep():
        return rf_vs_partitions(
            twitter_stream, K_VALUES, algorithms=("hdrf", "clugp"), seed=0
        )

    result = run_once(benchmark, sweep)
    print()
    print(series_table(result, title="Figure 4(a) (twitter): RF vs k"))
    for k in K_VALUES:
        ratio = result.get("clugp", k) / result.get("hdrf", k)
        # close to HDRF: within 2.2x either way (the paper shows CLUGP
        # slightly above HDRF on twitter, far from its web-graph wins)
        assert ratio < 2.2, f"k={k}: clugp/hdrf RF ratio {ratio:.2f}"


def test_fig4b_total_task_runtime(benchmark, twitter_stream):
    k = 32

    def sweep():
        rows = {}
        for name in ("hdrf", "clugp"):
            _, assignment = run_algorithm(name, twitter_stream, k, seed=0)
            _, cost = pagerank(
                make_engine(assignment, mode="local"), max_supersteps=15
            )
            rows[name] = {
                "partition_s": assignment.total_time(),
                "pagerank_s": cost.total_seconds,
            }
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 4(b) (twitter, k={k}): total task runtime")
    print(f"{'algorithm':8s} {'partition(s)':>13s} {'pagerank(s)':>12s} {'total(s)':>9s}")
    for name, row in rows.items():
        total = row["partition_s"] + row["pagerank_s"]
        print(f"{name:8s} {row['partition_s']:13.3f} {row['pagerank_s']:12.3f} {total:9.3f}")

    # The paper's Figure 4(b) claim is that CLUGP's total task time wins
    # because the *partitioning* side dominates at web scale (HDRF spends
    # thousands of seconds partitioning 1.4B edges).  At stand-in scale the
    # simulated PageRank seconds dominate instead, so the testable form of
    # the claim is partitioning-side dominance: CLUGP partitions several
    # times faster, while its PageRank penalty (from the slightly higher
    # social-graph RF, Figure 4 a) stays bounded.
    assert rows["clugp"]["partition_s"] < rows["hdrf"]["partition_s"]
    assert rows["clugp"]["pagerank_s"] < 2.0 * rows["hdrf"]["pagerank_s"]
