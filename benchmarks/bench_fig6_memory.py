"""Figure 6 — partitioner state memory vs number of partitions (IT graph).

Paper's claims:
  * heuristic methods (HDRF/Greedy) occupy the most space — roughly 8-10x
    CLUGP at large k — because they track per-vertex partition sets;
  * Hashing takes 0 bytes (a hash function only);
  * CLUGP sits at O(2|V|), independent of k;
  * Mint is below CLUGP (batch-local state only).
"""

from repro.bench.harness import memory_vs_partitions, series_table

from conftest import run_once

K_VALUES = [4, 16, 64, 256]
ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")


def test_fig6_memory_vs_partitions(benchmark, it_stream):
    def sweep():
        return memory_vs_partitions(it_stream, K_VALUES, algorithms=ALGORITHMS, seed=0)

    result = run_once(benchmark, sweep)
    print()
    print(series_table(result, title="Figure 6 (it): state bytes vs k"))

    # hashing is stateless at every k
    for k in K_VALUES:
        assert result.get("hashing", k) == 0

    # heuristics' state grows with k; CLUGP's does not
    assert result.get("hdrf", 256) > result.get("hdrf", 4)
    assert result.get("clugp", 256) <= 1.05 * result.get("clugp", 4)

    # at large k the heuristics are several times CLUGP
    assert result.get("hdrf", 256) > 3 * result.get("clugp", 256)
    assert result.get("greedy", 256) > 3 * result.get("clugp", 256)
