#!/usr/bin/env python
"""Fault-tolerance cost and recovery: the PR-8 reliability gates.

Standalone script demonstrating that the reliability runtime
(DESIGN.md §9) is cheap when idle and correct when exercised:

* **checkpoint overhead** — a ``PartitionService`` feed with the
  write-ahead journal plus rotated checkpoints enabled must stay within
  ``OVERHEAD_CEILING`` of the same feed with durability off, and the
  final partition must be bit-identical (durability must never perturb
  results), hard gates;
* **retry-harness overhead** — a fault-free merged distributed run with
  summary validation on must stay within ``OVERHEAD_CEILING`` of the
  same run with validation off, bit-identical, hard gates;
* **recovery beats recompute** — a service killed mid-feed and resumed
  from checkpoint + journal must finish the feed faster than replaying
  the whole feed from scratch, and land bit-identical to the
  uninterrupted run, hard gates (the speed gate is advisory in
  ``--quick``: the tiny fixture makes the saved work comparable to the
  resume cost);
* **chaos bit-identity** — ``distributed_clugp`` with deterministic
  fault injection (crash / hang / corrupt / slow, one victim per stage)
  must produce the exact edge partition of the fault-free run on both
  the thread and process backends, hard gate.

The overhead ceilings are relaxed in ``--quick``: the CI fixture is two
orders of magnitude smaller, so constant costs (journal fsync, pool
spin-up) dominate and only the identity gates stay hard.

Usage::

    python benchmarks/bench_reliability.py           # full run
    python benchmarks/bench_reliability.py --quick   # CI smoke

Exit status is non-zero if any gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro._util import Timer
from repro.config import ClugpConfig, GameConfig, ReliabilityConfig
from repro.core.distributed import distributed_clugp
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.service import PartitionService

#: relative wall-clock excess allowed for the always-on reliability
#: machinery (journal + cadenced checkpoints; summary validation) on a
#: fault-free feed.  Measured on the 100k-edge fixture: ~1-3%.
OVERHEAD_CEILING = 0.05
OVERHEAD_CEILING_QUICK = 0.60  # tiny fixture: constant costs dominate

NUM_BATCHES = 50
#: checkpoint cadence — a full snapshot every tenth batch, the journal
#: covering the batches in between (the documented operating point).
CHECKPOINT_EVERY = 10


def _scratch_dir(prefix: str) -> str:
    """A temp dir on tmpfs when available (else the default temp root).

    The overhead gates measure the *apparatus* — serialization, hashing,
    journaling, replay — not the latency of one particular disk's
    ``fsync``, which on shared CI runners varies by an order of
    magnitude with unrelated writeback.  tmpfs removes that noise; the
    device-latency tradeoff is a documented policy knob
    (``journal_sync``), not a regression this benchmark could catch.
    """
    base = "/dev/shm" if os.path.isdir("/dev/shm") else None
    return tempfile.mkdtemp(prefix=prefix, dir=base)


def build_stream(num_edges: int, seed: int = 11) -> EdgeStream:
    """A power-law web-crawl stand-in with ~``num_edges`` edges."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="bfs")


def _service_config(k: int, seed: int, checkpoint_every: int = CHECKPOINT_EVERY):
    return ClugpConfig(
        num_partitions=k,
        game=GameConfig(seed=seed),
        reliability=ReliabilityConfig(checkpoint_every=checkpoint_every),
    )


def _feed_service(stream, k, seed, batch_size, checkpoint_dir=None):
    """Feed the whole stream; return (service, wall seconds)."""
    svc = PartitionService(
        stream.num_vertices,
        _service_config(k, seed),
        migration_cap=256,
        expected_edges=stream.num_edges,
        checkpoint_dir=checkpoint_dir,
    )
    with Timer() as t:
        for src, dst in stream.batches(batch_size):
            svc.ingest_pair(src, dst)
    svc.close()
    return svc, t.elapsed


def run_checkpoint_overhead(stream, k, seed, quick, repeats) -> tuple[dict, list[str]]:
    """Durability on vs off over the same feed: wall ratio + bit-identity."""
    batch_size = max(1, stream.num_edges // NUM_BATCHES)
    t_plain = t_durable = float("inf")
    plain = durable = None
    for _ in range(repeats):
        plain, elapsed = _feed_service(stream, k, seed, batch_size)
        t_plain = min(t_plain, elapsed)
        ckpt_dir = _scratch_dir("bench-rel-ckpt-")
        try:
            durable, elapsed = _feed_service(
                stream, k, seed, batch_size, checkpoint_dir=ckpt_dir
            )
        finally:
            shutil.rmtree(ckpt_dir, ignore_errors=True)
        t_durable = min(t_durable, elapsed)
    overhead = t_durable / max(t_plain, 1e-9) - 1.0
    ceiling = OVERHEAD_CEILING_QUICK if quick else OVERHEAD_CEILING
    identical = bool(
        np.array_equal(plain.edge_partition, durable.edge_partition)
        and np.array_equal(plain.loads, durable.loads)
    )
    report = {
        "num_edges": stream.num_edges,
        "num_batches": NUM_BATCHES,
        "checkpoint_every": CHECKPOINT_EVERY,
        "plain_seconds": t_plain,
        "durable_seconds": t_durable,
        "overhead": overhead,
        "ceiling": ceiling,
        "identical": identical,
    }
    failures = []
    if not identical:
        failures.append(
            "reliability: enabling checkpoints perturbed the partition"
        )
    if overhead > ceiling:
        failures.append(
            f"reliability: checkpoint+journal overhead {overhead:+.1%} "
            f"exceeds the {ceiling:.0%} ceiling"
        )
    print(
        f"reliability/checkpoint: plain {t_plain*1000:.0f}ms, "
        f"durable {t_durable*1000:.0f}ms ({overhead:+.1%}, "
        f"ceiling {ceiling:.0%}), identical={identical}"
    )
    return report, failures


def _distributed(stream, k, validate: bool, spec: str = "", backend="thread",
                 timeout=None):
    rel = ReliabilityConfig(
        validate_summaries=validate, inject_faults=spec,
        task_timeout=timeout, backoff_base=0.0, backoff_max=0.0,
    )
    cfg = ClugpConfig(num_partitions=k, reliability=rel)
    return distributed_clugp(
        stream, k, num_nodes=4, config=cfg, seed=0, merge_mode="merged",
        backend=backend,
    )


def run_retry_overhead(stream, k, quick, repeats) -> tuple[dict, list[str]]:
    """Summary validation on vs off on a fault-free merged run."""
    t_off = t_on = float("inf")
    off = on = None
    for _ in range(repeats):
        with Timer() as t:
            off = _distributed(stream, k, validate=False)
        t_off = min(t_off, t.elapsed)
        with Timer() as t:
            on = _distributed(stream, k, validate=True)
        t_on = min(t_on, t.elapsed)
    overhead = t_on / max(t_off, 1e-9) - 1.0
    ceiling = OVERHEAD_CEILING_QUICK if quick else OVERHEAD_CEILING
    identical = bool(
        np.array_equal(
            off.assignment.edge_partition, on.assignment.edge_partition
        )
    )
    report = {
        "validation_off_seconds": t_off,
        "validation_on_seconds": t_on,
        "overhead": overhead,
        "ceiling": ceiling,
        "identical": identical,
    }
    failures = []
    if not identical:
        failures.append("reliability: summary validation perturbed the partition")
    if overhead > ceiling:
        failures.append(
            f"reliability: validation+retry overhead {overhead:+.1%} "
            f"exceeds the {ceiling:.0%} ceiling"
        )
    print(
        f"reliability/retry: validation off {t_off*1000:.0f}ms, "
        f"on {t_on*1000:.0f}ms ({overhead:+.1%}, ceiling {ceiling:.0%}), "
        f"identical={identical}"
    )
    return report, failures


def run_recovery(stream, k, seed, quick) -> tuple[dict, list[str]]:
    """Kill mid-feed; resume must beat recomputing the whole feed."""
    batch_size = max(1, stream.num_edges // NUM_BATCHES)
    batches = list(stream.batches(batch_size))
    kill_at = (3 * len(batches)) // 4

    ref, t_recompute = _feed_service(stream, k, seed, batch_size)

    ckpt_dir = _scratch_dir("bench-rel-resume-")
    try:
        svc = PartitionService(
            stream.num_vertices, _service_config(k, seed),
            migration_cap=256, expected_edges=stream.num_edges,
            checkpoint_dir=ckpt_dir,
        )
        for src, dst in batches[:kill_at]:
            svc.ingest_pair(src, dst)
        del svc  # simulated crash: no close(), journal left as-is
        with Timer() as t:
            resumed = PartitionService.resume(ckpt_dir)
            for src, dst in batches[resumed.batch_index:]:
                resumed.ingest_pair(src, dst)
        t_recover = t.elapsed
        resumed.close()
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)

    identical = bool(
        np.array_equal(ref.edge_partition, resumed.edge_partition)
        and np.array_equal(ref.vertex_partition, resumed.vertex_partition)
    )
    speedup = t_recompute / max(t_recover, 1e-9)
    report = {
        "killed_after_batches": kill_at,
        "total_batches": len(batches),
        "recompute_seconds": t_recompute,
        "recover_seconds": t_recover,
        "speedup": speedup,
        "identical": identical,
    }
    failures = []
    if not identical:
        failures.append(
            "reliability: resumed service is not bit-identical to the "
            "uninterrupted feed"
        )
    if speedup <= 1.0 and not quick:
        failures.append(
            f"reliability: recovery ({t_recover:.2f}s) is not faster than "
            f"recomputing the feed ({t_recompute:.2f}s)"
        )
    print(
        f"reliability/recovery: killed after {kill_at}/{len(batches)} batches; "
        f"recompute {t_recompute*1000:.0f}ms vs resume+finish "
        f"{t_recover*1000:.0f}ms ({speedup:.2f}x), identical={identical}"
    )
    return report, failures


def run_chaos_gate(stream, k, quick) -> tuple[dict, list[str]]:
    """Injected crash/hang/corrupt/slow leave the partition bit-identical."""
    rows = []
    failures = []
    baseline_thread = _distributed(stream, k, validate=True)
    scenarios = [
        ("thread", "crash,slow,corrupt,seed=0,slow_seconds=0.05", None),
        ("thread", "crash,slow,corrupt,seed=2,slow_seconds=0.05", None),
        ("process", "crash,seed=1", None),
    ]
    if not quick:
        scenarios.append(("process", "hang,seed=0,hang_seconds=30", 5.0))
    baseline_process = None
    for backend, spec, timeout in scenarios:
        if backend == "process" and baseline_process is None:
            baseline_process = _distributed(stream, k, validate=True,
                                            backend="process")
        baseline = baseline_thread if backend == "thread" else baseline_process
        chaotic = _distributed(stream, k, validate=True, spec=spec,
                               backend=backend, timeout=timeout)
        identical = bool(
            np.array_equal(
                baseline.assignment.edge_partition,
                chaotic.assignment.edge_partition,
            )
        )
        counters = chaotic.to_dict().get("reliability", {})
        rows.append(
            {"backend": backend, "spec": spec, "identical": identical,
             "counters": counters}
        )
        if not identical:
            failures.append(
                f"reliability: chaos run ({backend}, {spec!r}) diverged "
                f"from the fault-free partition"
            )
        print(
            f"reliability/chaos: {backend} {spec!r}: identical={identical} "
            f"(retries={counters.get('retries', 0)})"
        )
    return {"rows": rows}, failures


def main(argv=None) -> int:
    """CLI entry point; returns a shell exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small fixture, relaxed ceilings")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the JSON report")
    args = parser.parse_args(argv)

    num_edges = 4_000 if args.quick else 100_000
    repeats = 1 if args.quick else 3
    k = 8
    seed = 0
    stream = build_stream(num_edges)
    chaos_stream = build_stream(3_000 if args.quick else 10_000, seed=3)

    report: dict = {"quick": args.quick, "num_edges": stream.num_edges}
    failures: list[str] = []

    sub, fails = run_checkpoint_overhead(stream, k, seed, args.quick, repeats)
    report["checkpoint_overhead"] = sub
    failures += fails

    sub, fails = run_retry_overhead(chaos_stream, k, args.quick, repeats)
    report["retry_overhead"] = sub
    failures += fails

    sub, fails = run_recovery(stream, k, seed, args.quick)
    report["recovery"] = sub
    failures += fails

    sub, fails = run_chaos_gate(chaos_stream, k, args.quick)
    report["chaos"] = sub
    failures += fails

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")

    if failures:
        print("FAIL:\n  " + "\n  ".join(failures))
        return 1
    print("OK: all reliability gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
