"""Figure 10 — parallelization of the cluster-partitioning game.

Paper's claims:
  (a) CLUGP's 3-pass total runtime beats the 1-pass heuristics even though
      it reads the stream three times; more threads reduce the game's
      computation cost (1091s -> 429s from 8 to 32 threads);
  (b) quality (RF) is insensitive to batch size, runtime rises only
      mildly with it.

Under CPython the thread pool cannot speed up pure-Python best response,
so for (a) we report the *work units* (cost evaluations per thread-round)
that the batching divides, alongside wall time; the batching shape is the
reproducible claim.
"""

from repro.config import GameConfig
from repro.core.distributed import distributed_clugp
from repro.core.partitioner import ClugpPartitioner
from repro.bench.harness import run_algorithm

from conftest import run_once

K = 32


def test_fig10a_threads_and_total_runtime(benchmark, uk_stream):
    def sweep():
        rows = {}
        for name in ("hdrf", "greedy", "mint"):
            _, assignment = run_algorithm(name, uk_stream, K, seed=0)
            rows[name] = {"total_s": assignment.total_time(), "threads": 1}
        for threads in (1, 4, 8):
            p = ClugpPartitioner(
                K,
                parallel=True,
                game=GameConfig(batch_size=64, num_threads=threads, seed=0),
            )
            assignment = p.partition(uk_stream)
            rows[f"clugp-t{threads}"] = {
                "total_s": assignment.total_time(),
                "threads": threads,
                "rf": assignment.replication_factor(),
            }
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 10(a) (uk, k={K}): total runtime")
    for name, row in rows.items():
        print(f"{name:10s} threads={row['threads']:2d} total={row['total_s']:.3f}s")

    # 3-pass CLUGP total beats the 1-pass per-edge-scoring algorithms
    for threads in (1, 4, 8):
        assert rows[f"clugp-t{threads}"]["total_s"] < rows["hdrf"]["total_s"]
        assert rows[f"clugp-t{threads}"]["total_s"] < rows["mint"]["total_s"]


def test_fig10b_batch_size_effect(benchmark, uk_stream):
    batch_sizes = [16, 64, 256, 1024]

    def sweep():
        rows = []
        for b in batch_sizes:
            p = ClugpPartitioner(
                K,
                parallel=True,
                game=GameConfig(batch_size=b, num_threads=4, seed=0),
            )
            assignment = p.partition(uk_stream)
            rows.append(
                {
                    "batch": b,
                    "rf": assignment.replication_factor(),
                    "seconds": assignment.total_time(),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 10(b) (uk, k={K}): batch-size effect")
    for row in rows:
        print(f"batch={row['batch']:5d} RF={row['rf']:.3f} time={row['seconds']:.3f}s")

    # RF is insensitive to batch size (paper: varies within a few percent)
    rfs = [row["rf"] for row in rows]
    assert max(rfs) / min(rfs) < 1.15


def test_fig10c_distributed_critical_path(benchmark, uk_stream):
    """Section III-C deployment: the distributed wall-clock is the slowest
    node (``max_node`` critical path), not the summed node seconds —
    sharding must therefore shrink the reported wall-clock even on one
    machine, while the summed work stays in the same ballpark."""
    node_counts = [1, 2, 4, 8]

    def sweep():
        rows = []
        for nodes in node_counts:
            result = distributed_clugp(uk_stream, K, num_nodes=nodes, seed=0)
            times = result.assignment.stage_times
            rows.append(
                {
                    "nodes": nodes,
                    "summed_s": times.total,
                    "critical_path_s": result.assignment.wall_time(),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 10(c) (uk, k={K}): distributed stage accounting")
    for row in rows:
        print(
            f"nodes={row['nodes']:2d} summed={row['summed_s']:.3f}s "
            f"critical_path={row['critical_path_s']:.3f}s"
        )

    for row in rows:
        assert 0.0 < row["critical_path_s"] <= row["summed_s"] + 1e-9
    # with >= 4 shards the critical path must sit well below the summed
    # work (near-equal shards; allow generous slack for shard skew)
    four = next(r for r in rows if r["nodes"] == 4)
    assert four["critical_path_s"] < 0.75 * four["summed_s"]
