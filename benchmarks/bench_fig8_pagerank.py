"""Figure 8 — PageRank on the (simulated) PowerGraph cluster.

Paper's claims:
  (a) CLUGP has the lowest PageRank communication volume on every dataset
      (~40% of the second-best method on IT);
  (b) CLUGP has the lowest total PageRank runtime; hashing methods are the
      worst; heuristics and Mint are in between;
  (c) the ordering is stable as network latency (RTT) grows from 10ms to
      100ms, and CLUGP stays the most efficient.
"""

import pytest

from repro.bench.harness import pagerank_costs, run_algorithm
from repro.system.engine import GasEngine
from repro.system.network import NetworkModel
from repro.system.apps.pagerank import pagerank

from conftest import run_once

ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")


@pytest.mark.parametrize("alias", ["uk", "it", "arabic", "webbase"])
def test_fig8ab_communication_and_runtime(benchmark, web_streams, alias):
    stream = web_streams[alias]
    k = 32

    def sweep():
        return pagerank_costs(
            stream, k, algorithms=ALGORITHMS, max_supersteps=15, seed=0
        )

    costs = run_once(benchmark, sweep)
    print()
    print(f"Figure 8(a,b) ({alias}, k={k}): PageRank costs")
    print(f"{'algorithm':9s} {'volume(MB)':>11s} {'compute(s)':>11s} {'comm(s)':>9s} {'total(s)':>9s}")
    for name, cost in costs.items():
        print(
            f"{name:9s} {cost.total_bytes / 1e6:11.2f} {cost.compute_seconds:11.4f} "
            f"{cost.comm_seconds:9.3f} {cost.total_seconds:9.3f}"
        )

    volume = {n: c.total_bytes for n, c in costs.items()}
    total = {n: c.total_seconds for n, c in costs.items()}
    # (a) CLUGP lowest volume, hashing highest
    assert min(volume, key=volume.get) == "clugp"
    assert max(volume, key=volume.get) == "hashing"
    # (b) CLUGP lowest total runtime
    assert min(total, key=total.get) == "clugp"


def test_fig8c_runtime_vs_latency(benchmark, it_stream):
    k = 32
    rtts_ms = [10, 50, 100]

    def sweep():
        rows: dict[str, list[float]] = {}
        assignments = {
            name: run_algorithm(name, it_stream, k, seed=0)[1]
            for name in ("hashing", "hdrf", "clugp")
        }
        for name, assignment in assignments.items():
            rows[name] = []
            for rtt in rtts_ms:
                network = NetworkModel().with_rtt(rtt / 1000.0)
                _, cost = pagerank(
                    GasEngine(assignment, network=network), max_supersteps=15
                )
                rows[name].append(cost.total_seconds)
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 8(c) (it, k={k}): PageRank seconds vs RTT")
    print(f"{'algorithm':9s}" + "".join(f" {r:>7d}ms" for r in rtts_ms))
    for name, values in rows.items():
        print(f"{name:9s}" + "".join(f" {v:9.3f}" for v in values))

    for idx, rtt in enumerate(rtts_ms):
        assert rows["clugp"][idx] < rows["hdrf"][idx] < rows["hashing"][idx]
    # runtime grows with RTT for everyone
    for values in rows.values():
        assert values[0] < values[-1]
