"""Figure 8 — PageRank on the (simulated) PowerGraph cluster.

Paper's claims:
  (a) CLUGP has the lowest PageRank communication volume on every dataset
      (~40% of the second-best method on IT);
  (b) CLUGP has the lowest total PageRank runtime; hashing methods are the
      worst; heuristics and Mint are in between;
  (c) the ordering is stable as network latency (RTT) grows from 10ms to
      100ms, and CLUGP stays the most efficient.

Since the partition-local runtime landed, the sweeps execute PageRank on
it (``mode="local"``), so the communication volumes are *measured* off
the mirror-sync message buffers; the retained global-array oracle is run
side by side in :func:`main` (the ``run_all.py`` section) to assert the
measured == modeled parity and export both cost profiles as JSON.

Usage::

    python benchmarks/bench_fig8_pagerank.py --json fig8.json
    python benchmarks/bench_fig8_pagerank.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np
import pytest

from repro.bench.harness import pagerank_costs, run_algorithm
from repro.graph.datasets import load_dataset
from repro.graph.stream import EdgeStream
from repro.system import make_engine
from repro.system.network import NetworkModel
from repro.system.apps.pagerank import pagerank

from conftest import run_once

ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")
PARITY_ALGORITHMS = ("hashing", "hdrf", "clugp")


@pytest.mark.parametrize("alias", ["uk", "it", "arabic", "webbase"])
def test_fig8ab_communication_and_runtime(benchmark, web_streams, alias):
    stream = web_streams[alias]
    k = 32

    def sweep():
        return pagerank_costs(
            stream, k, algorithms=ALGORITHMS, max_supersteps=15, seed=0,
            mode="local",
        )

    costs = run_once(benchmark, sweep)
    print()
    print(f"Figure 8(a,b) ({alias}, k={k}): measured PageRank costs")
    print(f"{'algorithm':9s} {'volume(MB)':>11s} {'compute(s)':>11s} {'comm(s)':>9s} {'total(s)':>9s}")
    for name, cost in costs.items():
        print(
            f"{name:9s} {cost.total_bytes / 1e6:11.2f} {cost.compute_seconds:11.4f} "
            f"{cost.comm_seconds:9.3f} {cost.total_seconds:9.3f}"
        )

    volume = {n: c.total_bytes for n, c in costs.items()}
    total = {n: c.total_seconds for n, c in costs.items()}
    # (a) CLUGP lowest volume, hashing highest
    assert min(volume, key=volume.get) == "clugp"
    assert max(volume, key=volume.get) == "hashing"
    # (b) CLUGP lowest total runtime
    assert min(total, key=total.get) == "clugp"


def test_fig8c_runtime_vs_latency(benchmark, it_stream):
    k = 32
    rtts_ms = [10, 50, 100]

    def sweep():
        rows: dict[str, list[float]] = {}
        assignments = {
            name: run_algorithm(name, it_stream, k, seed=0)[1]
            for name in PARITY_ALGORITHMS
        }
        for name, assignment in assignments.items():
            rows[name] = []
            for rtt in rtts_ms:
                network = NetworkModel().with_rtt(rtt / 1000.0)
                engine = make_engine(assignment, mode="local", network=network)
                _, cost = pagerank(engine, max_supersteps=15)
                rows[name].append(cost.total_seconds)
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 8(c) (it, k={k}): PageRank seconds vs RTT")
    print(f"{'algorithm':9s}" + "".join(f" {r:>7d}ms" for r in rtts_ms))
    for name, values in rows.items():
        print(f"{name:9s}" + "".join(f" {v:9.3f}" for v in values))

    for idx, rtt in enumerate(rtts_ms):
        assert rows["clugp"][idx] < rows["hdrf"][idx] < rows["hashing"][idx]
    # runtime grows with RTT for everyone
    for values in rows.values():
        assert values[0] < values[-1]


# ---------------------------------------------------------------------- #
# standalone parity + JSON section (the run_all.py entry point)
# ---------------------------------------------------------------------- #


def check_parity(assignment, max_supersteps: int = 15) -> tuple[dict, list[str]]:
    """Run local + global PageRank on one assignment; verify the contract.

    Checks (per the local-runtime acceptance criteria):

    * values allclose (atol 1e-12) with identical superstep counts;
    * per-superstep *measured* messages == the oracle's modeled
      ``2 * sum(|P(v)| - 1)`` (dense activation makes these coincide);
    * measured messages == the replication formula evaluated on the
      runtime's own recorded sync masks, on every superstep.
    """
    failures: list[str] = []
    local = make_engine(assignment, mode="local")
    oracle = make_engine(assignment, mode="global")
    values_local, cost_local = pagerank(local, max_supersteps=max_supersteps)
    values_oracle, cost_oracle = pagerank(oracle, max_supersteps=max_supersteps)
    if cost_local.num_supersteps != cost_oracle.num_supersteps:
        failures.append(
            f"superstep counts diverged: local {cost_local.num_supersteps} "
            f"vs oracle {cost_oracle.num_supersteps}"
        )
    if not np.allclose(values_local, values_oracle, atol=1e-12, rtol=0.0):
        failures.append("pagerank values diverged beyond 1e-12")
    per_step = [
        (s_local.messages, s_oracle.messages)
        for s_local, s_oracle in zip(cost_local.supersteps, cost_oracle.supersteps)
    ]
    if any(measured != modeled for measured, modeled in per_step):
        failures.append("measured sync messages != oracle-modeled messages")
    sync_factor = np.clip(local.placement.replica_counts - 1, 0, None)
    formula = [
        2 * int(sync_factor[mask].sum()) for mask in local.sync_masks
    ]
    measured = [s.messages for s in cost_local.supersteps]
    if formula != measured:
        failures.append("measured messages != 2*sum(|P(v)|-1) over the sync set")
    report = {
        "replication_factor": assignment.replication_factor(),
        "local": cost_local.to_dict(),
        "global": cost_oracle.to_dict(),
        "parity_ok": not failures,
    }
    return report, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller graph and partition count",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)

    scale = 0.1 if args.quick else 0.35
    k = 8 if args.quick else 32
    graph = load_dataset("it", scale=scale, seed=7)
    stream = EdgeStream.from_graph(graph, order="natural")
    report: dict = {
        "dataset": "it",
        "scale": scale,
        "partitions": k,
        "num_edges": stream.num_edges,
        "algorithms": {},
    }
    failures: list[str] = []
    print(f"fig8 parity (it scale={scale}, k={k}, |E|={stream.num_edges}):")
    print(f"{'algorithm':9s} {'RF':>6s} {'steps':>6s} {'messages':>10s} {'parity':>7s}")
    for name in PARITY_ALGORITHMS:
        _, assignment = run_algorithm(name, stream, k, seed=0)
        algo_report, algo_failures = check_parity(assignment)
        report["algorithms"][name] = algo_report
        failures += [f"{name}: {f}" for f in algo_failures]
        print(
            f"{name:9s} {algo_report['replication_factor']:6.2f} "
            f"{algo_report['local']['supersteps']:6d} "
            f"{algo_report['local']['messages']:10d} "
            f"{'ok' if algo_report['parity_ok'] else 'FAIL':>7s}"
        )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    if failures:
        print("FAIL:\n  " + "\n  ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
