#!/usr/bin/env python
"""CLUGP chunked pipeline vs per-edge reference, per pass.

Standalone script demonstrating the engineering claim of the vectorized
chunked CLUGP core:

* the chunked three-pass pipeline (array-backed ``ClusteringState``, CSR
  cluster graph + adjacency-table game, masked-join ``TransformState``) is
  >= 4x faster end-to-end than the faithful per-edge reference path on a
  100k-edge graph, for CLUGP and both ablations, and
* both paths produce **bit-identical** assignments (asserted per variant
  before any timing is reported).

Per-pass timings are printed so regressions are attributable to a stage.

Usage::

    python benchmarks/bench_clugp_stages.py             # full run
    python benchmarks/bench_clugp_stages.py --quick     # CI smoke
    python benchmarks/bench_clugp_stages.py --json out.json

Exit status is non-zero if the end-to-end speedup floor fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# allow running straight from a checkout without `pip install -e .`
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

from repro.bench.harness import clugp_stage_times
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream

VARIANTS = ("clugp", "clugp-s", "clugp-g")
SPEEDUP_FLOOR = 4.0
STAGES = ("clustering", "game", "transform", "total")


def build_stream(num_edges: int, seed: int = 7) -> EdgeStream:
    """The same power-law web-crawl stand-in bench_chunked_throughput uses."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="random", seed=seed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=100_000, help="stream size")
    parser.add_argument("-k", "--partitions", type=int, default=8)
    parser.add_argument("--chunk-size", type=int, default=1 << 16)
    parser.add_argument("--repeats", type=int, default=5, help="best-of timing repeats")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small graph, single repeat, relaxed speedup floor",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)
    if args.edges <= 0 or args.partitions <= 0 or args.chunk_size <= 0 or args.repeats <= 0:
        parser.error("--edges, --partitions, --chunk-size, and --repeats must be positive")

    if args.quick:
        args.edges = min(args.edges, 20_000)
        args.repeats = 1
    floor = 1.5 if args.quick else SPEEDUP_FLOOR

    stream = build_stream(args.edges)
    print(
        f"stream: |V|={stream.num_vertices} |E|={stream.num_edges}, "
        f"k={args.partitions}, chunk_size={args.chunk_size}, floor={floor:.1f}x"
    )

    report = {
        "edges": stream.num_edges,
        "vertices": stream.num_vertices,
        "partitions": args.partitions,
        "chunk_size": args.chunk_size,
        "floor": floor,
        "variants": {},
    }
    failures = []
    for variant in VARIANTS:
        times = clugp_stage_times(
            stream,
            args.partitions,
            variant=variant,
            seed=1,
            chunk_size=args.chunk_size,
            repeats=args.repeats,
        )
        per_edge = times["per-edge"]
        chunked = times["chunked"]
        speedups = {s: per_edge[s] / max(chunked[s], 1e-9) for s in STAGES}
        report["variants"][variant] = {
            "per_edge_seconds": per_edge,
            "chunked_seconds": chunked,
            "speedup": speedups,
            "bit_identical": True,  # asserted inside clugp_stage_times
        }
        print(f"\n{variant} (bit-identical: yes)")
        print(f"  {'pass':12s} {'per-edge':>10s} {'chunked':>10s} {'speedup':>9s}")
        for stage in STAGES:
            print(
                f"  {stage:12s} {per_edge[stage]*1000:9.1f}ms "
                f"{chunked[stage]*1000:9.1f}ms {speedups[stage]:8.2f}x"
            )
        if speedups["total"] < floor:
            failures.append(
                f"{variant}: end-to-end speedup {speedups['total']:.2f}x "
                f"below the {floor:.1f}x floor"
            )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"\nwrote {args.json}")

    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures))
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
