"""Figure 3 — replication factor vs number of partitions on four web graphs.

Paper's claims we assert:
  * CLUGP has the lowest RF of all competitors at every k on web graphs;
  * CLUGP's RF grows far more slowly with k than Hashing's (the paper
    quotes ~1.5x for CLUGP vs ~10x for Hashing on arabic-2005, k=4->256);
  * the heuristics (Greedy/HDRF) sit between CLUGP and the hashes.
"""

import pytest

from repro.bench.harness import rf_vs_partitions, series_table

from conftest import run_once

K_VALUES = [4, 16, 64, 256]
ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")


@pytest.mark.parametrize("alias", ["uk", "arabic", "webbase", "it"])
def test_fig3_rf_vs_partitions(benchmark, web_streams, alias):
    stream = web_streams[alias]

    def sweep():
        return rf_vs_partitions(stream, K_VALUES, algorithms=ALGORITHMS, seed=0)

    result = run_once(benchmark, sweep)
    print()
    print(series_table(result, title=f"Figure 3 ({alias}): RF vs k"))

    # CLUGP wins at every k >= 16; at k=4 the dense stand-ins can produce a
    # near-tie with Greedy (granularity effect, see EXPERIMENTS.md), so we
    # require CLUGP within 5% of the best there
    for k in K_VALUES:
        best = result.winner_at(k)
        if k >= 16:
            assert best == "clugp", f"k={k}: {best}"
        else:
            assert result.get("clugp", k) <= 1.05 * result.get(best, k), f"k={k}"

    # CLUGP scales in k far better than hashing
    clugp_growth = result.get("clugp", 256) / result.get("clugp", 4)
    hashing_growth = result.get("hashing", 256) / result.get("hashing", 4)
    assert clugp_growth < 0.7 * hashing_growth

    # heuristics sit between CLUGP and the hashes at large k
    assert result.get("clugp", 256) <= result.get("hdrf", 256)
    assert result.get("hdrf", 256) < result.get("hashing", 256)
