#!/usr/bin/env python
"""Run the engineering benchmarks and write one consolidated JSON report.

This is the perf-trajectory entry point: each PR that touches a hot path
runs ``python benchmarks/run_all.py --json BENCH_pr10.json`` and CI runs
the ``--quick`` variant on every push, so regressions in any of the
enforced floors fail loudly and the JSON artifacts accumulate a
machine-readable history of the repo's throughput claims.

Sections (each with its own floors; exit status is non-zero if any fails):

* ``chunked_throughput`` — bench_chunked_throughput: stateless >= 5x
  chunked-vs-per-edge floors, hdrf/greedy >= 5x vs their retained
  reference chunk loop plus a vs-per-edge floor, full-registry
  bit-identity sweep.
* ``kernels`` — bench_kernels: the compiled ``chunk_impl="jit"`` /
  ``game_impl="jit"`` backends — hdrf/greedy >= 5x vs the fast scalar
  core and >= 10x vs per-edge, the fused pass-2 game kernel >= 5x vs
  the numpy adjacency-table engine (with three-way identity on move
  sequences and potential traces), CLUGP end-to-end >= 20x vs
  per-edge, jit-vs-per-edge bit-identity incl. the k=100 multiword
  corner; warm-up (numba/cc compile) excluded from every timing
  region.  Skipped (not failed) when no compiled backend resolves.
* ``clugp_stages`` — bench_clugp_stages: per-pass timings and the >= 4x
  end-to-end CLUGP chunked floor.
* ``parallel_game`` — batched vs sequential-reference best response:
  proposed moves / rounds / assignment must be identical, and the batched
  path must be faster (floor relaxed in --quick for noisy CI runners).
* ``distributed_stages`` — stage-accounting smoke: the ``max_node``
  critical-path wall must be positive and strictly below the summed node
  total on a multi-node run.
* ``distributed_merge`` — merged vs independent distributed CLUGP across
  ``num_nodes in {1, 2, 4, 8}``: merged with one node must be
  bit-identical to the single-machine pipeline, merged replication
  factor must never exceed independent (strictly lower at 8 nodes),
  merged balance must hold the global tau cap, and the per-run rows
  record stage walls plus measured merge/broadcast/quota wire bytes.
* ``incremental`` — bench_incremental_service: the PartitionService
  serving path — single-batch bit-identity vs the batch pipeline,
  sustained edges/sec over >= 50 batches, per-batch migration cap and
  hard balance cap respected, and end-of-feed RF drift vs the
  from-scratch oracle under the documented ceiling.
* ``fig8_pagerank`` — bench_fig8_pagerank: the partition-local runtime
  parity gate (local PageRank values/supersteps/per-superstep messages
  vs the retained global oracle, and measured messages vs the
  ``2*sum(|P(v)|-1)`` replication formula) plus both engines'
  ``RunCost.to_dict()`` profiles, so app runtime enters the perf
  trajectory.
* ``reliability`` — bench_reliability: the fault-tolerance runtime —
  checkpoint+journal and summary-validation overhead on fault-free runs
  under the <= 5% ceiling (relaxed in --quick), resume-from-checkpoint
  beating a full recompute, and the chaos bit-identity gates
  (deterministic crash/hang/corrupt/slow injection leaves the partition
  bit-identical on the thread and process backends).
* ``persistent_workers`` — bench_persistent: the persistent
  shared-memory worker runtime — ``backend="persistent"`` bit-identical
  to the process oracle for both merge modes at num_nodes in {1, 4, 8},
  resident-pool per-call wall >= 2x faster than fork-per-call at 8
  nodes on the ~100k-edge fixture (floor relaxed in --quick), exactly 0
  pickled ndarray bytes on the shared-memory ingest plane, and no
  leaked ``/dev/shm`` segments after pool teardown.

Usage::

    python benchmarks/run_all.py --json BENCH_pr8.json     # full run
    python benchmarks/run_all.py --quick --json out.json   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

import bench_chunked_throughput
import bench_clugp_stages
import bench_fig8_pagerank
import bench_incremental_service
import bench_kernels
import bench_persistent
import bench_reliability
from repro._util import Timer
from repro.config import ClugpConfig, GameConfig
from repro.core.cluster_graph import build_cluster_graph
from repro.core.clustering import streaming_clustering
from repro.core.distributed import distributed_clugp
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream

PARALLEL_SPEEDUP_FLOOR = 1.15
PARALLEL_SPEEDUP_FLOOR_QUICK = 0.85  # identity is the hard gate on CI


def _run_sub_bench(module, label: str, quick: bool) -> tuple[dict, list[str]]:
    """Run a standalone bench module, returning its JSON report + failures."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        path = tmp.name
    try:
        argv = ["--json", path] + (["--quick"] if quick else [])
        status = module.main(argv)
        with open(path) as fh:
            report = json.load(fh)
    finally:
        os.unlink(path)
    failures = [] if status == 0 else [f"{label}: floors failed (see output above)"]
    return report, failures


def run_parallel_game_bench(quick: bool) -> tuple[dict, list[str]]:
    """Batched vs reference best response: identity + wall-clock floor."""
    import repro.core.parallel as parallel_mod
    from repro.core.parallel import (
        _batch_best_response,
        _batch_best_response_reference,
        parallel_game,
    )

    num_pages = 8_000 if quick else 40_000
    graph = web_crawl_graph(num_pages, avg_out_degree=8, host_size=25, seed=8)
    stream = EdgeStream.from_graph(graph)
    clustering = streaming_clustering(stream, max_volume=stream.num_edges // 64)
    cluster_graph = build_cluster_graph(stream, clustering)
    k = 32
    config = GameConfig(seed=0, batch_size=64, num_threads=4)
    repeats = 1 if quick else 3

    def timed(run):
        best = float("inf")
        result = None
        for _ in range(repeats):
            with Timer() as t:
                result = run()
            best = min(best, t.elapsed)
        return result, best

    batched, t_batched = timed(lambda: parallel_game(cluster_graph, k, config))
    parallel_mod._batch_best_response = _batch_best_response_reference
    try:
        reference, t_reference = timed(lambda: parallel_game(cluster_graph, k, config))
    finally:
        parallel_mod._batch_best_response = _batch_best_response

    identical = (
        np.array_equal(batched.assignment, reference.assignment)
        and batched.moves == reference.moves
        and batched.rounds == reference.rounds
        and batched.potential_trace == reference.potential_trace
    )
    speedup = t_reference / max(t_batched, 1e-9)
    floor = PARALLEL_SPEEDUP_FLOOR_QUICK if quick else PARALLEL_SPEEDUP_FLOOR
    report = {
        "clusters": cluster_graph.num_clusters,
        "partitions": k,
        "batch_size": config.batch_size,
        "rounds": batched.rounds,
        "moves": batched.moves,
        "reference_seconds": t_reference,
        "batched_seconds": t_batched,
        "speedup": speedup,
        "floor": floor,
        "identical": identical,
    }
    failures = []
    if not identical:
        failures.append("parallel_game: batched path proposed different moves")
    if speedup < floor:
        failures.append(
            f"parallel_game: batched speedup {speedup:.2f}x below the {floor:.2f}x floor"
        )
    print(
        f"parallel_game: {cluster_graph.num_clusters} clusters, k={k}: "
        f"reference {t_reference*1000:.0f}ms, batched {t_batched*1000:.0f}ms "
        f"({speedup:.2f}x, floor {floor:.2f}x), identical={identical}"
    )
    return report, failures


def run_distributed_stage_smoke(quick: bool) -> tuple[dict, list[str]]:
    """Check the max_node critical-path wall is recorded and sane."""
    num_pages = 2_000 if quick else 10_000
    graph = web_crawl_graph(num_pages, avg_out_degree=8, host_size=25, seed=3)
    stream = EdgeStream.from_graph(graph)
    num_nodes = 4
    result = distributed_clugp(
        stream,
        num_partitions=8,
        num_nodes=num_nodes,
        config=ClugpConfig(num_partitions=8),
        parallel_nodes=False,
    )
    times = result.assignment.stage_times
    total = times.total
    max_node = times.walls.get("max_node", 0.0)
    report = {
        "num_nodes": num_nodes,
        "summed_node_seconds": total,
        "max_node_seconds": max_node,
        "wall_time": result.assignment.wall_time(),
    }
    failures = []
    if not 0.0 < max_node < total:
        failures.append(
            f"distributed_stages: max_node wall {max_node:.4f}s not within "
            f"(0, summed total {total:.4f}s) on a {num_nodes}-node run"
        )
    if result.assignment.wall_time() != max_node:
        failures.append("distributed_stages: wall_time() does not report the max_node wall")
    print(
        f"distributed_stages: {num_nodes} nodes: summed {total*1000:.0f}ms, "
        f"critical path {max_node*1000:.0f}ms"
    )
    return report, failures


def run_distributed_merge_bench(quick: bool) -> tuple[dict, list[str]]:
    """Merged vs independent quality/wall across node counts (PR 5)."""
    import math

    from repro.bench.harness import distributed_merge_sweep
    from repro.core.partitioner import ClugpPartitioner

    num_pages = 2_000 if quick else 10_000
    k = 8
    tau = 1.05
    graph = web_crawl_graph(num_pages, avg_out_degree=8, host_size=25, seed=3)
    stream = EdgeStream.from_graph(graph)
    node_counts = (1, 2, 4, 8)
    rows = distributed_merge_sweep(stream, k, node_counts=node_counts, seed=0)
    by_mode: dict[tuple[str, int], dict] = {
        (r["merge_mode"], r["num_nodes"]): r for r in rows
    }

    failures = []
    # gate 1: merged single-node == single-machine, bit for bit
    single = ClugpPartitioner(k, seed=0).partition(stream)
    merged_one = distributed_clugp(stream, k, num_nodes=1, seed=0, merge_mode="merged")
    identical = bool(
        np.array_equal(
            single.edge_partition, merged_one.assignment.edge_partition
        )
    )
    if not identical:
        failures.append(
            "distributed_merge: merged num_nodes=1 is not bit-identical "
            "to the single-machine pipeline"
        )
    # gate 2: merged RF <= independent everywhere, strictly lower at 8
    cap = math.ceil(tau * stream.num_edges / k)
    for nodes in node_counts:
        rf_ind = by_mode[("independent", nodes)]["replication_factor"]
        rf_mer = by_mode[("merged", nodes)]["replication_factor"]
        if rf_mer > rf_ind:
            failures.append(
                f"distributed_merge: merged RF {rf_mer:.4f} exceeds "
                f"independent {rf_ind:.4f} at {nodes} nodes"
            )
        # gate 3: the quota exchange holds the *global* tau cap
        bal = by_mode[("merged", nodes)]["relative_balance"]
        if bal * stream.num_edges / k > cap + 1e-9:
            failures.append(
                f"distributed_merge: merged balance {bal:.4f} violates the "
                f"global cap at {nodes} nodes"
            )
        print(
            f"distributed_merge: {nodes} nodes: RF independent={rf_ind:.4f} "
            f"merged={rf_mer:.4f} "
            f"(sync {by_mode[('merged', nodes)]['merge']['merge_bytes'] / 1024:.0f}KB up)"
        )
    rf_ind8 = by_mode[("independent", 8)]["replication_factor"]
    rf_mer8 = by_mode[("merged", 8)]["replication_factor"]
    if not rf_mer8 < rf_ind8:
        failures.append(
            f"distributed_merge: merged RF {rf_mer8:.4f} not strictly below "
            f"independent {rf_ind8:.4f} at 8 nodes"
        )
    # gate 4: the persistent resident-worker backend reproduces the merged
    # protocol bit for bit at 4 nodes (the full {1,4,8} x {merged,
    # independent} matrix lives in the persistent_workers section)
    merged_ref = distributed_clugp(stream, k, num_nodes=4, seed=0, merge_mode="merged")
    merged_persistent = distributed_clugp(
        stream, k, num_nodes=4, seed=0, merge_mode="merged", backend="persistent"
    )
    persistent_identical = bool(
        np.array_equal(
            merged_ref.assignment.edge_partition,
            merged_persistent.assignment.edge_partition,
        )
    )
    if not persistent_identical:
        failures.append(
            "distributed_merge: backend='persistent' merged run is not "
            "bit-identical at 4 nodes"
        )
    print(
        "distributed_merge: persistent backend merged 4 nodes "
        f"bit-identical={persistent_identical}"
    )
    report = {
        "num_edges": stream.num_edges,
        "num_partitions": k,
        "single_node_identical": identical,
        "persistent_identical": persistent_identical,
        "rf_independent_8": rf_ind8,
        "rf_merged_8": rf_mer8,
        "rows": rows,
    }
    return report, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: small graphs, relaxed floors"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the consolidated report"
    )
    args = parser.parse_args(argv)

    consolidated: dict = {"quick": args.quick}
    failures: list[str] = []

    print("=== chunked throughput ===")
    report, fails = _run_sub_bench(bench_chunked_throughput, "chunked_throughput", args.quick)
    consolidated["chunked_throughput"] = report
    failures += fails

    print("\n=== compiled kernels (chunk_impl=jit) ===")
    report, fails = _run_sub_bench(bench_kernels, "kernels", args.quick)
    consolidated["kernels"] = report
    failures += fails

    print("\n=== CLUGP stages ===")
    report, fails = _run_sub_bench(bench_clugp_stages, "clugp_stages", args.quick)
    consolidated["clugp_stages"] = report
    failures += fails

    print("\n=== parallel game ===")
    report, fails = run_parallel_game_bench(args.quick)
    consolidated["parallel_game"] = report
    failures += fails

    print("\n=== distributed stage accounting ===")
    report, fails = run_distributed_stage_smoke(args.quick)
    consolidated["distributed_stages"] = report
    failures += fails

    print("\n=== distributed merge: merged vs independent ===")
    report, fails = run_distributed_merge_bench(args.quick)
    consolidated["distributed_merge"] = report
    failures += fails

    print("\n=== incremental service ===")
    report, fails = _run_sub_bench(bench_incremental_service, "incremental", args.quick)
    consolidated["incremental"] = report
    failures += fails

    print("\n=== fig8 pagerank: local-runtime parity ===")
    report, fails = _run_sub_bench(bench_fig8_pagerank, "fig8_pagerank", args.quick)
    consolidated["fig8_pagerank"] = report
    failures += fails

    print("\n=== reliability: overhead, recovery, chaos ===")
    report, fails = _run_sub_bench(bench_reliability, "reliability", args.quick)
    consolidated["reliability"] = report
    failures += fails

    print("\n=== persistent workers: identity, speedup, zero-copy ===")
    report, fails = _run_sub_bench(bench_persistent, "persistent_workers", args.quick)
    consolidated["persistent_workers"] = report
    failures += fails

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(consolidated, fh, indent=2)
        print(f"\nwrote {args.json}")

    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures))
        return 1
    print("\nOK: all benchmark floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
