#!/usr/bin/env python
"""Chunked vs per-edge ingestion throughput on a synthetic web graph.

Standalone script (not a pytest-benchmark figure): it demonstrates the
core engineering claims of the chunked streaming refactor —

* the vectorized chunked path is >= 5x faster (edges/second) than the
  faithful per-edge streaming loop for the stateless/near-stateless
  partitioners (hashing, DBH, grid) on a 100k-edge graph,
* the sequential-state heuristics (hdrf, greedy) ingest chunks >= 5x
  faster than the numpy-per-edge chunk loop they previously shipped with
  (retained as ``chunk_impl="reference"``) while also beating the
  per-edge streaming reference — their decision recurrences are
  order-chaotic (DESIGN.md §4), so the win comes from vectorized exact
  precomputation plus a lean scalar decision core, not bulk commits, and
* chunked and per-edge ingestion produce **bit-identical** assignments
  for every registered partitioner, including both stateful chunk
  implementations.

Usage::

    python benchmarks/bench_chunked_throughput.py           # full run
    python benchmarks/bench_chunked_throughput.py --quick   # CI smoke

Exit status is non-zero if any claim fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# allow running straight from a checkout without `pip install -e .`
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro._util import Timer, human_bytes
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.registry import PARTITIONERS, make_partitioner

#: partitioners whose chunked path must clear the speedup bar
SPEEDUP_ALGORITHMS = ("hashing", "dbh", "grid")
SPEEDUP_FLOOR = 5.0

#: sequential-state heuristics: the fast chunk core must beat both the
#: numpy-per-edge chunk loop it replaced (>= 5x) and the per-edge
#: streaming reference (floors are conservative vs the ~10x/16x and
#: ~2.0x/2.7x measured on the 100k bench graph, to absorb machine noise;
#: the compiled-kernel jit path has its own >= 5x/10x floors in
#: bench_kernels.py)
STATEFUL_ALGORITHMS = ("hdrf", "greedy")
STATEFUL_VS_REFERENCE_FLOOR = 5.0
STATEFUL_VS_PER_EDGE_FLOOR = 1.5

#: multi-pass variants that must be exercised by the bit-identity sweep
#: (their chunked path is the buffering begin/partition_chunk/finish
#: protocol, not a trivial fallback — see benchmarks/bench_clugp_stages.py
#: for their dedicated speedup figures)
REQUIRED_IDENTITY = ("clugp", "clugp-s", "clugp-g")


def build_stream(num_edges: int, seed: int = 7) -> EdgeStream:
    """A power-law web-crawl stand-in with ~``num_edges`` edges."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="random", seed=seed)


def measure_speedups(stream: EdgeStream, k: int, chunk_size: int, repeats: int) -> dict:
    """Best-of-``repeats`` edges/sec for both paths, per algorithm."""
    rows = {}
    for name in SPEEDUP_ALGORITHMS:
        timings = {}
        for ingest in ("per-edge", "chunked"):
            best = float("inf")
            for _ in range(repeats):
                partitioner = make_partitioner(name, k, seed=0)
                with Timer() as t:
                    if ingest == "chunked":
                        partitioner.partition_chunked(stream, chunk_size=chunk_size)
                    else:
                        partitioner.partition_per_edge(stream)
                best = min(best, t.elapsed)
            timings[ingest] = max(best, 1e-9)
        rows[name] = {
            "per_edge_eps": stream.num_edges / timings["per-edge"],
            "chunked_eps": stream.num_edges / timings["chunked"],
            "speedup": timings["per-edge"] / timings["chunked"],
        }
    return rows


def measure_stateful(stream, k: int, chunk_size: int, repeats: int) -> dict:
    """Best-of-``repeats`` timings for the three hdrf/greedy paths."""
    rows = {}
    for name in STATEFUL_ALGORITHMS:
        timings = {}
        for path in ("per-edge", "chunked", "chunked-reference"):
            best = float("inf")
            for _ in range(repeats):
                if path == "chunked-reference":
                    partitioner = make_partitioner(name, k, seed=0, chunk_impl="reference")
                else:
                    partitioner = make_partitioner(name, k, seed=0)
                with Timer() as t:
                    if path == "per-edge":
                        partitioner.partition_per_edge(stream)
                    else:
                        partitioner.partition_chunked(stream, chunk_size=chunk_size)
                best = min(best, t.elapsed)
            timings[path] = max(best, 1e-9)
        rows[name] = {
            "per_edge_eps": stream.num_edges / timings["per-edge"],
            "chunked_eps": stream.num_edges / timings["chunked"],
            "reference_loop_eps": stream.num_edges / timings["chunked-reference"],
            "speedup_vs_reference_loop": timings["chunked-reference"] / timings["chunked"],
            "speedup_vs_per_edge": timings["per-edge"] / timings["chunked"],
        }
    return rows


def check_bit_identical(num_edges: int, k: int, chunk_size: int) -> list[str]:
    """Names of registered partitioners whose paths disagree (want: none)."""
    stream = build_stream(num_edges, seed=11)
    mismatches = []
    for name in sorted(PARTITIONERS):
        reference = make_partitioner(name, k, seed=1).partition_per_edge(stream)
        chunked = make_partitioner(name, k, seed=1).partition_chunked(
            stream, chunk_size=chunk_size
        )
        if not np.array_equal(reference.edge_partition, chunked.edge_partition):
            mismatches.append(name)
        if name in STATEFUL_ALGORITHMS:
            ref_loop = make_partitioner(
                name, k, seed=1, chunk_impl="reference"
            ).partition_chunked(stream, chunk_size=chunk_size)
            if not np.array_equal(reference.edge_partition, ref_loop.edge_partition):
                mismatches.append(f"{name}[reference-loop]")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=100_000, help="stream size")
    parser.add_argument("-k", "--partitions", type=int, default=8)
    parser.add_argument("--chunk-size", type=int, default=1 << 16)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small graph, single repeat, relaxed speedup floor",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)
    if args.edges <= 0 or args.partitions <= 0 or args.chunk_size <= 0 or args.repeats <= 0:
        parser.error("--edges, --partitions, --chunk-size, and --repeats must be positive")

    if args.quick:
        args.edges = min(args.edges, 20_000)
        args.repeats = 1
    floor = 2.0 if args.quick else SPEEDUP_FLOOR
    # quick mode runs a small warm-up-dominated graph on noisy CI runners
    stateful_ref_floor = 2.5 if args.quick else STATEFUL_VS_REFERENCE_FLOOR
    stateful_pe_floor = 0.9 if args.quick else STATEFUL_VS_PER_EDGE_FLOOR

    stream = build_stream(args.edges)
    print(
        f"stream: |V|={stream.num_vertices} |E|={stream.num_edges} "
        f"({human_bytes(stream.num_edges * 16)} of endpoints), "
        f"k={args.partitions}, chunk_size={args.chunk_size}"
    )

    rows = measure_speedups(stream, args.partitions, args.chunk_size, args.repeats)
    print(f"\n{'algorithm':10s} {'per-edge e/s':>14s} {'chunked e/s':>14s} {'speedup':>9s}")
    failures = []
    for name, row in rows.items():
        print(
            f"{name:10s} {row['per_edge_eps']:14.0f} {row['chunked_eps']:14.0f} "
            f"{row['speedup']:8.1f}x"
        )
        if row["speedup"] < floor:
            failures.append(
                f"{name}: speedup {row['speedup']:.1f}x below the {floor:.0f}x floor"
            )

    stateful = measure_stateful(stream, args.partitions, args.chunk_size, args.repeats)
    print(
        f"\n{'stateful':10s} {'per-edge e/s':>14s} {'chunked e/s':>14s} "
        f"{'vs ref-loop':>12s} {'vs per-edge':>12s}"
    )
    for name, row in stateful.items():
        print(
            f"{name:10s} {row['per_edge_eps']:14.0f} {row['chunked_eps']:14.0f} "
            f"{row['speedup_vs_reference_loop']:11.1f}x {row['speedup_vs_per_edge']:11.2f}x"
        )
        if row["speedup_vs_reference_loop"] < stateful_ref_floor:
            failures.append(
                f"{name}: {row['speedup_vs_reference_loop']:.1f}x vs the reference "
                f"chunk loop, below the {stateful_ref_floor:.1f}x floor"
            )
        if row["speedup_vs_per_edge"] < stateful_pe_floor:
            failures.append(
                f"{name}: {row['speedup_vs_per_edge']:.2f}x vs per-edge, "
                f"below the {stateful_pe_floor:.2f}x floor"
            )

    missing = [name for name in REQUIRED_IDENTITY if name not in PARTITIONERS]
    if missing:
        failures.append(f"identity sweep is missing required variants: {missing}")
    identity_edges = min(args.edges, 20_000)
    mismatches = check_bit_identical(identity_edges, args.partitions, chunk_size=1013)
    if mismatches:
        failures.append(f"chunked != per-edge for: {', '.join(mismatches)}")
    else:
        print(
            f"\nbit-identity: chunked == per-edge for all {len(PARTITIONERS)} "
            f"registered partitioners incl. {'/'.join(REQUIRED_IDENTITY)} "
            f"({identity_edges} edges, chunk_size=1013)"
        )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                {
                    "edges": stream.num_edges,
                    "vertices": stream.num_vertices,
                    "partitions": args.partitions,
                    "chunk_size": args.chunk_size,
                    "floor": floor,
                    "speedups": rows,
                    "stateful_floors": {
                        "vs_reference_loop": stateful_ref_floor,
                        "vs_per_edge": stateful_pe_floor,
                    },
                    "stateful": stateful,
                    "identity_mismatches": mismatches,
                },
                fh,
                indent=2,
            )
        print(f"wrote {args.json}")

    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures))
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
