"""Figure 5 — replication factor vs sampled graph size.

The paper randomly samples uk-2002 into a series of graphs (10K..60M
edges) and shows CLUGP's RF is both the lowest and the most stable as the
graph grows (+20% for CLUGP vs +80% for HDRF over the sweep).

We sample the uk stand-in at four sizes and assert:
  * CLUGP has the lowest RF at every size;
  * CLUGP's relative RF growth across the sweep is smaller than HDRF's.
"""

from repro.bench.harness import rf_vs_partitions, run_algorithm
from repro.graph.sampling import sample_edges
from repro.graph.stream import EdgeStream

from conftest import run_once

ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")
FRACTIONS = [0.1, 0.3, 0.6, 1.0]


def test_fig5_rf_vs_sample_size(benchmark, uk_stream):
    k = 16
    graph = uk_stream.to_graph()

    def sweep():
        rows = {name: [] for name in ALGORITHMS}
        sizes = []
        for frac in FRACTIONS:
            if frac == 1.0:
                sub_stream = uk_stream
            else:
                sub = sample_edges(graph, int(frac * graph.num_edges), seed=3)
                sub_stream = EdgeStream.from_graph(sub, order="natural")
            sizes.append(sub_stream.num_edges)
            for name in ALGORITHMS:
                _, assignment = run_algorithm(name, sub_stream, k, seed=0)
                rows[name].append(assignment.replication_factor())
        return sizes, rows

    sizes, rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 5: RF vs sampled |E| at k={k}")
    header = f"{'algorithm':9s}" + "".join(f" {s:>9d}" for s in sizes)
    print(header)
    for name, values in rows.items():
        print(f"{name:9s}" + "".join(f" {v:9.3f}" for v in values))

    for idx in range(len(FRACTIONS)):
        best = min(rows, key=lambda n: rows[n][idx])
        assert best == "clugp", f"size index {idx}: best={best}"

    # stability: uniform edge sampling thins the graph, so everyone's RF
    # rises with size; CLUGP's relative growth must be the smallest of the
    # quality-relevant competitors and well below the hashes'
    growth = {n: rows[n][-1] / rows[n][0] for n in rows}
    assert growth["clugp"] < growth["hashing"]
    assert growth["clugp"] < growth["dbh"]
    assert growth["clugp"] <= 1.35 * min(growth["hdrf"], growth["greedy"])
