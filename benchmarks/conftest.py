"""Shared fixtures and helpers for the per-figure benchmarks.

Every benchmark prints the same rows/series its paper figure plots, and
asserts the *shape* claims (who wins, monotonicity, crossovers) that are
robust at laptop scale.  Absolute numbers differ from the paper — the
substrate is a simulator and the corpora are synthetic stand-ins (see
DESIGN.md section 4).

All benchmark bodies run exactly once (``rounds=1``) via
``benchmark.pedantic``: the interesting measurements are the sweeps inside,
not the harness overhead.
"""

from __future__ import annotations

import pytest

from repro.graph.datasets import load_dataset
from repro.graph.stream import EdgeStream

#: one shared scale so the whole suite stays within a laptop time budget
BENCH_SCALE = 0.35
BENCH_SEED = 7


@pytest.fixture(scope="session")
def web_streams():
    """Crawl-order streams of the four web stand-ins (session cached)."""
    streams = {}
    for alias in ("uk", "arabic", "webbase", "it"):
        graph = load_dataset(alias, scale=BENCH_SCALE, seed=BENCH_SEED)
        streams[alias] = EdgeStream.from_graph(graph, order="natural")
    return streams


@pytest.fixture(scope="session")
def uk_stream(web_streams):
    return web_streams["uk"]


@pytest.fixture(scope="session")
def it_stream(web_streams):
    return web_streams["it"]


@pytest.fixture(scope="session")
def twitter_stream():
    graph = load_dataset("twitter", scale=BENCH_SCALE, seed=BENCH_SEED)
    return EdgeStream.from_graph(graph, order="natural")


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
