#!/usr/bin/env python
"""Persistent worker runtime: the PR-10 pipeline and zero-copy gates.

Standalone script pinning the three claims of the persistent backend
(DESIGN.md §11):

* **bit-identity** — ``backend="persistent"`` must reproduce the
  ``process`` oracle's edge partition exactly, for both merge modes at
  num_nodes in {1, 4, 8}, hard gate in every mode;
* **amortized speedup** — with the pool resident, a distributed call
  must be at least ``SPEEDUP_FLOOR``x faster than the fork-per-call
  process backend at 8 nodes on the ~100k-edge fixture (the pool spawn
  is excluded from the per-call time and reported separately: it is
  paid once per service lifetime, not per call).  The floor is relaxed
  in ``--quick``: the CI fixture is tiny and runs on 2-core machines,
  so identity and zero-copy stay the hard gates there;
* **zero-copy ingest** — the measured pickled-ndarray bytes on the edge
  plane (``PersistentRuntime.edge_pickle_bytes``) must be exactly 0:
  edge data reaches the workers only through shared-memory rings, hard
  gate in every mode.

The report also surfaces the pipeline accounting: how many seconds of
coordinator merge were hidden behind still-running shards
(``pipeline_overlap``) and the per-worker busy fractions.

Usage::

    python benchmarks/bench_persistent.py           # full run
    python benchmarks/bench_persistent.py --quick   # CI smoke

Exit status is non-zero if any gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro._util import Timer
from repro.core.distributed import distributed_clugp
from repro.distributed import PersistentRuntime, leaked_segments
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream

#: resident-pool speedup over fork-per-call at 8 nodes (full fixture);
#: measured ~2.5-4x — the spawn/pickle cost the resident pool amortizes
SPEEDUP_FLOOR = 2.0
SPEEDUP_FLOOR_QUICK = 0.8  # identity + zero-copy are the hard gates on CI

NUM_NODES = 8
IDENTITY_NODES = (1, 4, 8)
REPEATS = 3


def build_stream(num_edges: int, seed: int = 11) -> EdgeStream:
    """A power-law web-crawl stand-in with ~``num_edges`` edges."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="bfs")


def run_identity_gate(stream, k, quick) -> tuple[dict, list[str]]:
    """persistent == process, bit for bit, across the node/mode matrix."""
    rows = []
    failures = []
    for merge_mode in ("merged", "independent"):
        for num_nodes in IDENTITY_NODES:
            reference = distributed_clugp(
                stream, k, num_nodes=num_nodes, seed=0,
                merge_mode=merge_mode, backend="process",
            )
            result = distributed_clugp(
                stream, k, num_nodes=num_nodes, seed=0,
                merge_mode=merge_mode, backend="persistent",
            )
            identical = bool(
                np.array_equal(
                    reference.assignment.edge_partition,
                    result.assignment.edge_partition,
                )
            )
            rows.append(
                {"merge_mode": merge_mode, "num_nodes": num_nodes,
                 "identical": identical}
            )
            if not identical:
                failures.append(
                    f"persistent: {merge_mode}@{num_nodes} nodes diverges "
                    f"from the process oracle"
                )
            print(
                f"persistent/identity: {merge_mode}@{num_nodes} "
                f"identical={identical}"
            )
    return {"rows": rows}, failures


def run_speedup_gate(stream, k, quick) -> tuple[dict, list[str]]:
    """Resident-pool per-call wall vs fork-per-call at 8 nodes."""
    floor = SPEEDUP_FLOOR_QUICK if quick else SPEEDUP_FLOOR
    t_process = float("inf")
    for _ in range(REPEATS):
        with Timer() as t:
            process_result = distributed_clugp(
                stream, k, num_nodes=NUM_NODES, seed=0, merge_mode="merged",
                backend="process",
            )
        t_process = min(t_process, t.elapsed)

    with Timer() as t_spawn:
        runtime = PersistentRuntime(NUM_NODES)
    t_persistent = float("inf")
    overlap = 0.0
    busy = []
    try:
        for _ in range(REPEATS):
            with Timer() as t:
                persistent_result = distributed_clugp(
                    stream, k, num_nodes=NUM_NODES, seed=0,
                    merge_mode="merged", backend="persistent", runtime=runtime,
                )
            t_persistent = min(t_persistent, t.elapsed)
        overlaps = persistent_result.assignment.stage_times.overlaps
        overlap = overlaps.get("pipeline_overlap", 0.0)
        busy = [
            overlaps.get(f"node{i}_busy", 0.0) for i in range(NUM_NODES)
        ]
        pickle_bytes = runtime.edge_pickle_bytes
    finally:
        runtime.close()

    speedup = t_process / max(t_persistent, 1e-9)
    identical = bool(
        np.array_equal(
            process_result.assignment.edge_partition,
            persistent_result.assignment.edge_partition,
        )
    )
    report = {
        "num_edges": stream.num_edges,
        "num_nodes": NUM_NODES,
        "process_seconds": t_process,
        "persistent_seconds": t_persistent,
        "spawn_seconds": t_spawn.elapsed,
        "speedup": speedup,
        "floor": floor,
        "identical": identical,
        "edge_pickle_bytes": pickle_bytes,
        "pipeline_overlap_seconds": overlap,
        "worker_busy_seconds": busy,
    }
    failures = []
    if not identical:
        failures.append("persistent: speedup fixture diverged from process")
    if speedup < floor:
        failures.append(
            f"persistent: {speedup:.2f}x over fork-per-call is below the "
            f"{floor:.1f}x floor"
        )
    if pickle_bytes != 0:
        failures.append(
            f"persistent: {pickle_bytes} pickled ndarray bytes crossed the "
            f"ingest plane (must be 0)"
        )
    print(
        f"persistent/speedup: process {t_process*1000:.0f}ms, resident "
        f"{t_persistent*1000:.0f}ms -> {speedup:.2f}x (floor {floor:.1f}x), "
        f"spawn {t_spawn.elapsed*1000:.0f}ms, overlap {overlap*1000:.1f}ms, "
        f"edge_pickle_bytes={pickle_bytes}"
    )
    return report, failures


def run_hygiene_gate() -> tuple[dict, list[str]]:
    """Every shared-memory segment is gone once the pools are closed."""
    leaked = leaked_segments()
    report = {"leaked_segments": leaked}
    failures = (
        [f"persistent: leaked shared-memory segments: {leaked}"] if leaked else []
    )
    print(f"persistent/hygiene: leaked_segments={leaked}")
    return report, failures


def main(argv=None) -> int:
    """CLI entry point; returns a shell exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small fixture, relaxed floor")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the JSON report")
    args = parser.parse_args(argv)

    k = 8
    num_edges = 8_000 if args.quick else 100_000
    stream = build_stream(num_edges)
    ident_stream = build_stream(4_000 if args.quick else 12_000, seed=7)

    report: dict = {"quick": args.quick, "num_edges": stream.num_edges}
    failures: list[str] = []

    sub, fails = run_identity_gate(ident_stream, k, args.quick)
    report["identity"] = sub
    failures += fails

    sub, fails = run_speedup_gate(stream, k, args.quick)
    report["speedup"] = sub
    failures += fails

    sub, fails = run_hygiene_gate()
    report["hygiene"] = sub
    failures += fails

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    if failures:
        print("FAIL:\n  " + "\n  ".join(failures))
        return 1
    print("OK: all persistent-runtime gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
