"""Figure 9 — ablation study: CLUGP vs CLUGP-S (no splitting) vs CLUGP-G
(greedy placement instead of the game), on the IT stand-in across k.

Paper's claims:
  * CLUGP-G (no game) is clearly worse than CLUGP at every k — the
    game-based cluster placement is the dominant quality ingredient
    (the paper quotes 60-70% lower RF with the game);
  * CLUGP's RF curve is more stable in k than CLUGP-S's.

Reproduction note (see EXPERIMENTS.md): at laptop scale the splitting
benefit only materializes at large k, where oversized clusters would
otherwise starve partitions; at small k the synthetic stand-ins do not
trigger the paper's deep-crawl splitting pattern, so CLUGP-S can tie or
slightly beat CLUGP there.  We assert the game claim strictly and the
splitting claim in its large-k/stability form.
"""

from repro.bench.harness import rf_vs_partitions, series_table

from conftest import run_once

K_VALUES = [4, 16, 64, 256]


def test_fig9_ablation(benchmark, it_stream):
    def sweep():
        return rf_vs_partitions(
            it_stream, K_VALUES, algorithms=("clugp", "clugp-s", "clugp-g"), seed=0
        )

    result = run_once(benchmark, sweep)
    print()
    print(series_table(result, title="Figure 9 (it): ablation RF vs k"))

    # the game beats greedy placement at every k
    for k in K_VALUES:
        assert result.get("clugp", k) <= result.get("clugp-g", k) * 1.02, f"k={k}"

    # relative growth of CLUGP across the k sweep is no worse than CLUGP-S
    growth_full = result.get("clugp", 256) / result.get("clugp", 4)
    growth_nosplit = result.get("clugp-s", 256) / result.get("clugp-s", 4)
    assert growth_full <= 1.25 * growth_nosplit
