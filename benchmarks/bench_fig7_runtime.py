"""Figure 7 — partitioning runtime vs number of partitions.

Paper's claims:
  * heuristic methods (HDRF/Greedy) and Mint slow down sharply as k grows
    (every edge scores all k partitions against a global table);
  * CLUGP and the hashing methods are insensitive to k (the paper quotes
    1162s -> 1869s for CLUGP from k=4 to 256, vs 35000s for HDRF at 256);
  * at large k CLUGP is an order of magnitude faster than the heuristics.
"""

from repro.bench.harness import runtime_vs_partitions, series_table

from conftest import run_once

K_VALUES = [4, 16, 64, 256]
ALGORITHMS = ("hdrf", "greedy", "hashing", "dbh", "mint", "clugp")


def test_fig7_runtime_vs_partitions(benchmark, uk_stream):
    def sweep():
        return runtime_vs_partitions(uk_stream, K_VALUES, algorithms=ALGORITHMS, seed=0)

    result = run_once(benchmark, sweep)
    print()
    print(series_table(result, title="Figure 7 (uk): partitioning seconds vs k"))

    # heuristics grow with k much faster than CLUGP does
    hdrf_growth = result.get("hdrf", 256) / result.get("hdrf", 4)
    clugp_growth = result.get("clugp", 256) / result.get("clugp", 4)
    assert clugp_growth < hdrf_growth

    # at k=256 CLUGP decisively beats the per-edge-scoring heuristics
    assert result.get("clugp", 256) < 0.5 * result.get("hdrf", 256)
    assert result.get("clugp", 256) < 0.5 * result.get("mint", 256)
