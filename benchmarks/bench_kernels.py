#!/usr/bin/env python
"""Compiled-kernel (``chunk_impl="jit"``) throughput and identity floors.

Standalone script in the run_all.py family: it demonstrates the PR 7
engineering claims for the :mod:`repro.kernels` backends —

* the hdrf/greedy jit chunk path is >= 5x faster than the ``"fast"``
  scalar core it bypasses and >= 10x faster than per-edge streaming on
  the 100k-edge bench graph,
* the pass-2 game stage with ``game_impl="jit"`` (PR 9: fused
  best-response rounds, incremental delta-scoring, O(1) potential)
  is >= 5x faster than the numpy adjacency-table engine,
* CLUGP end-to-end (pass 1 + game + pass 3) with ``chunk_impl="jit"``
  + ``game_impl="jit"`` is >= 20x faster than the per-edge reference
  pipeline (up from ~13x with the chunk kernels alone), and
* every jit assignment is **bit-identical** to the fast and per-edge
  paths (``identity_mismatches`` must be empty in the JSON artifact,
  both top-level and in the ``game`` section — the game identity also
  covers move sequences and full potential traces).

Kernel compilation (numba nopython build or the one-off ``cc`` call) is
excluded from every timing region via :func:`repro.kernels.warmup`.
When no compiled backend is available the floors are skipped — the
section then only records ``backend: null`` so CI without a compiler
still passes.

Usage::

    python benchmarks/bench_kernels.py           # full run
    python benchmarks/bench_kernels.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# allow running straight from a checkout without `pip install -e .`
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro import kernels
from repro._util import Timer
from repro.bench.harness import clugp_stage_times
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.registry import make_partitioner

#: scalar-core heuristics the kernels accelerate
JIT_ALGORITHMS = ("hdrf", "greedy")
JIT_VS_FAST_FLOOR = 5.0
JIT_VS_PER_EDGE_FLOOR = 10.0
CLUGP_E2E_FLOOR = 20.0
GAME_VS_FAST_FLOOR = 5.0

#: jit assignments that must match the fast path bit for bit
IDENTITY_ALGORITHMS = ("hdrf", "greedy", "clugp", "clugp-s", "clugp-g")


def build_stream(num_edges: int, seed: int = 7) -> EdgeStream:
    """The same power-law web-crawl fixture bench_chunked_throughput uses."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="random", seed=seed)


def measure_jit(stream: EdgeStream, k: int, chunk_size: int, repeats: int) -> dict:
    """Best-of-``repeats`` timings for per-edge / fast / jit per algorithm."""
    rows = {}
    for name in JIT_ALGORITHMS:
        timings = {}
        for path in ("per-edge", "fast", "jit"):
            best = float("inf")
            for _ in range(repeats):
                kwargs = {"chunk_impl": "jit"} if path == "jit" else {}
                partitioner = make_partitioner(name, k, seed=0, **kwargs)
                with Timer() as t:
                    if path == "per-edge":
                        partitioner.partition_per_edge(stream)
                    else:
                        partitioner.partition_chunked(stream, chunk_size=chunk_size)
                best = min(best, t.elapsed)
            timings[path] = max(best, 1e-9)
        rows[name] = {
            "per_edge_eps": stream.num_edges / timings["per-edge"],
            "fast_eps": stream.num_edges / timings["fast"],
            "jit_eps": stream.num_edges / timings["jit"],
            "speedup_vs_fast": timings["fast"] / timings["jit"],
            "speedup_vs_per_edge": timings["per-edge"] / timings["jit"],
        }
    return rows


def measure_clugp(stream: EdgeStream, k: int, repeats: int) -> dict:
    """End-to-end CLUGP per-pass timings: fast engines vs jit chunk
    kernels + the fused jit game."""
    fast = clugp_stage_times(stream, k, repeats=repeats)
    jit = clugp_stage_times(
        stream, k, repeats=repeats, chunk_impl="jit", game_impl="jit"
    )
    per_edge = fast["per-edge"]["total"]
    return {
        "per_edge": fast["per-edge"],
        "fast": fast["chunked"],
        "jit": jit["chunked"],
        "speedup_fast_vs_per_edge": per_edge / max(fast["chunked"]["total"], 1e-9),
        "speedup_jit_vs_per_edge": per_edge / max(jit["chunked"]["total"], 1e-9),
    }


def measure_game(stream: EdgeStream, k: int, repeats: int) -> dict:
    """Pass-2 game engine timings + three-way identity on one cluster graph.

    Isolates the game from the pipeline: pass 1 runs once, then each
    engine (per-neighbor ``reference``, numpy adjacency-table ``fast``,
    fused-kernel ``jit``) replays the identical potential-game descent
    from the same random initial assignment.  Identity covers the final
    assignment, the committed move sequence ``(cluster, from, to)``,
    round/move counts, and the full per-round potential trace — the
    jit trace comes from the kernel's O(1) maintained potential, so
    trace equality also certifies the incremental (S, C) bookkeeping.
    """
    from repro.config import GameConfig
    from repro.core.cluster_graph import build_cluster_graph
    from repro.core.clustering import streaming_clustering
    from repro.core.game import ClusterPartitioningGame

    cfg = make_partitioner("clugp", k, seed=0).config
    clustering = streaming_clustering(
        stream, cfg.resolve_vmax(stream.num_edges),
        enable_splitting=cfg.enable_splitting,
    )
    cluster_graph = build_cluster_graph(stream, clustering)

    def run(impl):
        game = ClusterPartitioningGame(
            cluster_graph, k, GameConfig(seed=0, game_impl=impl)
        )
        with Timer() as t:
            result = game.run(record_moves=True)
        return game, result, t.elapsed

    timings = {}
    results = {}
    for impl in ("reference", "fast", "jit"):
        best = float("inf")
        for _ in range(repeats):
            game, result, elapsed = run(impl)
            best = min(best, elapsed)
        timings[impl] = max(best, 1e-9)
        results[impl] = (game, result)

    mismatches = []
    _, fast_res = results["fast"]
    for impl in ("reference", "jit"):
        _, res = results[impl]
        same = (
            np.array_equal(res.assignment, fast_res.assignment)
            and res.move_log == fast_res.move_log
            and res.rounds == fast_res.rounds
            and res.potential_trace == fast_res.potential_trace
        )
        if not same:
            mismatches.append(f"game[{impl}]")
    jit_game, jit_res = results["jit"]
    # the O(1) maintained potential must equal the from-scratch recompute
    if jit_res.potential_trace[-1] != jit_game.potential():
        mismatches.append("game[jit-potential]")

    return {
        "clusters": cluster_graph.num_clusters,
        "rounds": fast_res.rounds,
        "moves": fast_res.moves,
        "reference_ms": timings["reference"] * 1000,
        "fast_ms": timings["fast"] * 1000,
        "jit_ms": timings["jit"] * 1000,
        "speedup_jit_vs_fast": timings["fast"] / timings["jit"],
        "speedup_jit_vs_reference": timings["reference"] / timings["jit"],
        "identity_mismatches": mismatches,
    }


def check_bit_identical(num_edges: int, k: int, chunk_size: int) -> list[str]:
    """Names whose jit assignment differs from fast/per-edge (want: none)."""
    stream = build_stream(num_edges, seed=11)
    mismatches = []
    for name in IDENTITY_ALGORITHMS:
        kwargs = {"chunk_impl": "jit"}
        if name.startswith("clugp"):
            kwargs["game_impl"] = "jit"  # both compiled seams at once
        per_edge = make_partitioner(name, k, seed=1).partition_per_edge(stream)
        jit = make_partitioner(name, k, seed=1, **kwargs).partition_chunked(
            stream, chunk_size=chunk_size
        )
        if not np.array_equal(per_edge.edge_partition, jit.edge_partition):
            mismatches.append(name)
    # the multiword-bitmask corner: k > 64 needs two words per vertex row
    for name in JIT_ALGORITHMS:
        per_edge = make_partitioner(name, 100, seed=1).partition_per_edge(stream)
        jit = make_partitioner(name, 100, seed=1, chunk_impl="jit").partition_chunked(
            stream, chunk_size=chunk_size
        )
        if not np.array_equal(per_edge.edge_partition, jit.edge_partition):
            mismatches.append(f"{name}[k=100]")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=100_000, help="stream size")
    parser.add_argument("-k", "--partitions", type=int, default=8)
    parser.add_argument("--chunk-size", type=int, default=1 << 16)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small graph, single repeat, relaxed floors",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)
    if args.edges <= 0 or args.partitions <= 0 or args.chunk_size <= 0 or args.repeats <= 0:
        parser.error("--edges, --partitions, --chunk-size, and --repeats must be positive")

    if args.quick:
        args.edges = min(args.edges, 20_000)
        args.repeats = 1

    # one-shot compile, outside every timing region
    backend = kernels.warmup()
    if backend is None:
        print("kernels: no compiled backend available (numba or cc) — skipping floors")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump({"backend": None, "skipped": True}, fh, indent=2)
            print(f"wrote {args.json}")
        return 0
    print(f"kernels: backend={backend} (warm-up excluded from timings)")

    # quick mode runs a warm-up-dominated graph on noisy CI runners
    vs_fast_floor = 2.0 if args.quick else JIT_VS_FAST_FLOOR
    vs_pe_floor = 3.0 if args.quick else JIT_VS_PER_EDGE_FLOOR
    e2e_floor = 3.0 if args.quick else CLUGP_E2E_FLOOR
    game_floor = 1.5 if args.quick else GAME_VS_FAST_FLOOR

    stream = build_stream(args.edges)
    print(
        f"stream: |V|={stream.num_vertices} |E|={stream.num_edges}, "
        f"k={args.partitions}, chunk_size={args.chunk_size}"
    )

    failures = []
    rows = measure_jit(stream, args.partitions, args.chunk_size, args.repeats)
    print(
        f"\n{'algorithm':10s} {'per-edge e/s':>14s} {'fast e/s':>14s} "
        f"{'jit e/s':>14s} {'vs fast':>9s} {'vs per-edge':>12s}"
    )
    for name, row in rows.items():
        print(
            f"{name:10s} {row['per_edge_eps']:14.0f} {row['fast_eps']:14.0f} "
            f"{row['jit_eps']:14.0f} {row['speedup_vs_fast']:8.1f}x "
            f"{row['speedup_vs_per_edge']:11.1f}x"
        )
        if row["speedup_vs_fast"] < vs_fast_floor:
            failures.append(
                f"{name}: jit {row['speedup_vs_fast']:.1f}x vs the fast core, "
                f"below the {vs_fast_floor:.0f}x floor"
            )
        if row["speedup_vs_per_edge"] < vs_pe_floor:
            failures.append(
                f"{name}: jit {row['speedup_vs_per_edge']:.1f}x vs per-edge, "
                f"below the {vs_pe_floor:.0f}x floor"
            )

    clugp = measure_clugp(stream, args.partitions, args.repeats)
    print(
        f"\nclugp e2e: per-edge {clugp['per_edge']['total']*1000:.0f}ms, "
        f"fast {clugp['fast']['total']*1000:.0f}ms "
        f"({clugp['speedup_fast_vs_per_edge']:.1f}x), "
        f"jit {clugp['jit']['total']*1000:.0f}ms "
        f"({clugp['speedup_jit_vs_per_edge']:.1f}x, floor {e2e_floor:.0f}x)"
    )
    print(
        "  jit stages: "
        + " ".join(
            f"{stage}={clugp['jit'][stage]*1000:.1f}ms"
            for stage in ("clustering", "game", "transform")
        )
    )
    if clugp["speedup_jit_vs_per_edge"] < e2e_floor:
        failures.append(
            f"clugp: jit end-to-end {clugp['speedup_jit_vs_per_edge']:.1f}x "
            f"vs per-edge, below the {e2e_floor:.0f}x floor"
        )

    game = measure_game(stream, args.partitions, args.repeats)
    print(
        f"\ngame stage ({game['clusters']} clusters, {game['rounds']} rounds, "
        f"{game['moves']} moves): reference {game['reference_ms']:.1f}ms, "
        f"fast {game['fast_ms']:.1f}ms, jit {game['jit_ms']:.1f}ms "
        f"({game['speedup_jit_vs_fast']:.1f}x vs fast, floor {game_floor:.1f}x; "
        f"{game['speedup_jit_vs_reference']:.1f}x vs reference)"
    )
    if game["speedup_jit_vs_fast"] < game_floor:
        failures.append(
            f"game: jit {game['speedup_jit_vs_fast']:.1f}x vs the numpy "
            f"adjacency-table engine, below the {game_floor:.1f}x floor"
        )
    if game["identity_mismatches"]:
        failures.append(
            "game: engines diverged for: "
            + ", ".join(game["identity_mismatches"])
        )
    else:
        print(
            "  game identity: reference == fast == jit on assignment, "
            "move sequence, rounds, and full potential trace "
            "(incl. maintained == recomputed potential)"
        )

    identity_edges = min(args.edges, 20_000)
    mismatches = check_bit_identical(identity_edges, args.partitions, chunk_size=1013)
    if mismatches:
        failures.append(f"jit != per-edge for: {', '.join(mismatches)}")
    else:
        print(
            f"\nbit-identity: jit == per-edge for "
            f"{'/'.join(IDENTITY_ALGORITHMS)} incl. the k=100 multiword "
            f"corner ({identity_edges} edges, chunk_size=1013)"
        )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                {
                    "backend": backend,
                    "edges": stream.num_edges,
                    "vertices": stream.num_vertices,
                    "partitions": args.partitions,
                    "chunk_size": args.chunk_size,
                    "floors": {
                        "jit_vs_fast": vs_fast_floor,
                        "jit_vs_per_edge": vs_pe_floor,
                        "clugp_e2e_vs_per_edge": e2e_floor,
                        "game_jit_vs_fast": game_floor,
                    },
                    "jit": rows,
                    "clugp": clugp,
                    "game": game,
                    "identity_mismatches": mismatches,
                },
                fh,
                indent=2,
            )
        print(f"wrote {args.json}")

    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures))
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
