#!/usr/bin/env python
"""Compiled-kernel (``chunk_impl="jit"``) throughput and identity floors.

Standalone script in the run_all.py family: it demonstrates the PR 7
engineering claims for the :mod:`repro.kernels` backends —

* the hdrf/greedy jit chunk path is >= 5x faster than the ``"fast"``
  scalar core it bypasses and >= 10x faster than per-edge streaming on
  the 100k-edge bench graph,
* CLUGP end-to-end (pass 1 + game + pass 3) with ``chunk_impl="jit"``
  is >= 10x faster than the per-edge reference pipeline (up from ~4x
  for the numpy chunk engines alone), and
* every jit assignment is **bit-identical** to the fast and per-edge
  paths (``identity_mismatches`` must be empty in the JSON artifact).

Kernel compilation (numba nopython build or the one-off ``cc`` call) is
excluded from every timing region via :func:`repro.kernels.warmup`.
When no compiled backend is available the floors are skipped — the
section then only records ``backend: null`` so CI without a compiler
still passes.

Usage::

    python benchmarks/bench_kernels.py           # full run
    python benchmarks/bench_kernels.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# allow running straight from a checkout without `pip install -e .`
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro import kernels
from repro._util import Timer
from repro.bench.harness import clugp_stage_times
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.partitioners.registry import make_partitioner

#: scalar-core heuristics the kernels accelerate
JIT_ALGORITHMS = ("hdrf", "greedy")
JIT_VS_FAST_FLOOR = 5.0
JIT_VS_PER_EDGE_FLOOR = 10.0
CLUGP_E2E_FLOOR = 10.0

#: jit assignments that must match the fast path bit for bit
IDENTITY_ALGORITHMS = ("hdrf", "greedy", "clugp", "clugp-s", "clugp-g")


def build_stream(num_edges: int, seed: int = 7) -> EdgeStream:
    """The same power-law web-crawl fixture bench_chunked_throughput uses."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="random", seed=seed)


def measure_jit(stream: EdgeStream, k: int, chunk_size: int, repeats: int) -> dict:
    """Best-of-``repeats`` timings for per-edge / fast / jit per algorithm."""
    rows = {}
    for name in JIT_ALGORITHMS:
        timings = {}
        for path in ("per-edge", "fast", "jit"):
            best = float("inf")
            for _ in range(repeats):
                kwargs = {"chunk_impl": "jit"} if path == "jit" else {}
                partitioner = make_partitioner(name, k, seed=0, **kwargs)
                with Timer() as t:
                    if path == "per-edge":
                        partitioner.partition_per_edge(stream)
                    else:
                        partitioner.partition_chunked(stream, chunk_size=chunk_size)
                best = min(best, t.elapsed)
            timings[path] = max(best, 1e-9)
        rows[name] = {
            "per_edge_eps": stream.num_edges / timings["per-edge"],
            "fast_eps": stream.num_edges / timings["fast"],
            "jit_eps": stream.num_edges / timings["jit"],
            "speedup_vs_fast": timings["fast"] / timings["jit"],
            "speedup_vs_per_edge": timings["per-edge"] / timings["jit"],
        }
    return rows


def measure_clugp(stream: EdgeStream, k: int, repeats: int) -> dict:
    """End-to-end CLUGP per-pass timings, fast vs jit chunk engines."""
    fast = clugp_stage_times(stream, k, repeats=repeats)
    jit = clugp_stage_times(stream, k, repeats=repeats, chunk_impl="jit")
    per_edge = fast["per-edge"]["total"]
    return {
        "per_edge": fast["per-edge"],
        "fast": fast["chunked"],
        "jit": jit["chunked"],
        "speedup_fast_vs_per_edge": per_edge / max(fast["chunked"]["total"], 1e-9),
        "speedup_jit_vs_per_edge": per_edge / max(jit["chunked"]["total"], 1e-9),
    }


def check_bit_identical(num_edges: int, k: int, chunk_size: int) -> list[str]:
    """Names whose jit assignment differs from fast/per-edge (want: none)."""
    stream = build_stream(num_edges, seed=11)
    mismatches = []
    for name in IDENTITY_ALGORITHMS:
        per_edge = make_partitioner(name, k, seed=1).partition_per_edge(stream)
        jit = make_partitioner(name, k, seed=1, chunk_impl="jit").partition_chunked(
            stream, chunk_size=chunk_size
        )
        if not np.array_equal(per_edge.edge_partition, jit.edge_partition):
            mismatches.append(name)
    # the multiword-bitmask corner: k > 64 needs two words per vertex row
    for name in JIT_ALGORITHMS:
        per_edge = make_partitioner(name, 100, seed=1).partition_per_edge(stream)
        jit = make_partitioner(name, 100, seed=1, chunk_impl="jit").partition_chunked(
            stream, chunk_size=chunk_size
        )
        if not np.array_equal(per_edge.edge_partition, jit.edge_partition):
            mismatches.append(f"{name}[k=100]")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=100_000, help="stream size")
    parser.add_argument("-k", "--partitions", type=int, default=8)
    parser.add_argument("--chunk-size", type=int, default=1 << 16)
    parser.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small graph, single repeat, relaxed floors",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)
    if args.edges <= 0 or args.partitions <= 0 or args.chunk_size <= 0 or args.repeats <= 0:
        parser.error("--edges, --partitions, --chunk-size, and --repeats must be positive")

    if args.quick:
        args.edges = min(args.edges, 20_000)
        args.repeats = 1

    # one-shot compile, outside every timing region
    backend = kernels.warmup()
    if backend is None:
        print("kernels: no compiled backend available (numba or cc) — skipping floors")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump({"backend": None, "skipped": True}, fh, indent=2)
            print(f"wrote {args.json}")
        return 0
    print(f"kernels: backend={backend} (warm-up excluded from timings)")

    # quick mode runs a warm-up-dominated graph on noisy CI runners
    vs_fast_floor = 2.0 if args.quick else JIT_VS_FAST_FLOOR
    vs_pe_floor = 3.0 if args.quick else JIT_VS_PER_EDGE_FLOOR
    e2e_floor = 3.0 if args.quick else CLUGP_E2E_FLOOR

    stream = build_stream(args.edges)
    print(
        f"stream: |V|={stream.num_vertices} |E|={stream.num_edges}, "
        f"k={args.partitions}, chunk_size={args.chunk_size}"
    )

    failures = []
    rows = measure_jit(stream, args.partitions, args.chunk_size, args.repeats)
    print(
        f"\n{'algorithm':10s} {'per-edge e/s':>14s} {'fast e/s':>14s} "
        f"{'jit e/s':>14s} {'vs fast':>9s} {'vs per-edge':>12s}"
    )
    for name, row in rows.items():
        print(
            f"{name:10s} {row['per_edge_eps']:14.0f} {row['fast_eps']:14.0f} "
            f"{row['jit_eps']:14.0f} {row['speedup_vs_fast']:8.1f}x "
            f"{row['speedup_vs_per_edge']:11.1f}x"
        )
        if row["speedup_vs_fast"] < vs_fast_floor:
            failures.append(
                f"{name}: jit {row['speedup_vs_fast']:.1f}x vs the fast core, "
                f"below the {vs_fast_floor:.0f}x floor"
            )
        if row["speedup_vs_per_edge"] < vs_pe_floor:
            failures.append(
                f"{name}: jit {row['speedup_vs_per_edge']:.1f}x vs per-edge, "
                f"below the {vs_pe_floor:.0f}x floor"
            )

    clugp = measure_clugp(stream, args.partitions, args.repeats)
    print(
        f"\nclugp e2e: per-edge {clugp['per_edge']['total']*1000:.0f}ms, "
        f"fast {clugp['fast']['total']*1000:.0f}ms "
        f"({clugp['speedup_fast_vs_per_edge']:.1f}x), "
        f"jit {clugp['jit']['total']*1000:.0f}ms "
        f"({clugp['speedup_jit_vs_per_edge']:.1f}x, floor {e2e_floor:.0f}x)"
    )
    print(
        "  jit stages: "
        + " ".join(
            f"{stage}={clugp['jit'][stage]*1000:.1f}ms"
            for stage in ("clustering", "game", "transform")
        )
    )
    if clugp["speedup_jit_vs_per_edge"] < e2e_floor:
        failures.append(
            f"clugp: jit end-to-end {clugp['speedup_jit_vs_per_edge']:.1f}x "
            f"vs per-edge, below the {e2e_floor:.0f}x floor"
        )

    identity_edges = min(args.edges, 20_000)
    mismatches = check_bit_identical(identity_edges, args.partitions, chunk_size=1013)
    if mismatches:
        failures.append(f"jit != per-edge for: {', '.join(mismatches)}")
    else:
        print(
            f"\nbit-identity: jit == per-edge for "
            f"{'/'.join(IDENTITY_ALGORITHMS)} incl. the k=100 multiword "
            f"corner ({identity_edges} edges, chunk_size=1013)"
        )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(
                {
                    "backend": backend,
                    "edges": stream.num_edges,
                    "vertices": stream.num_vertices,
                    "partitions": args.partitions,
                    "chunk_size": args.chunk_size,
                    "floors": {
                        "jit_vs_fast": vs_fast_floor,
                        "jit_vs_per_edge": vs_pe_floor,
                        "clugp_e2e_vs_per_edge": e2e_floor,
                    },
                    "jit": rows,
                    "clugp": clugp,
                    "identity_mismatches": mismatches,
                },
                fh,
                indent=2,
            )
        print(f"wrote {args.json}")

    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures))
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
