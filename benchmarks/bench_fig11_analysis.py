"""Figure 11 — sensitivity analysis: imbalance factor tau and relative
weight of the two game cost terms.

Paper's claims:
  (a) RF decreases slightly as tau grows from 1.0 to 1.1 (looser balance
      lets more edges follow their endpoints), and the trend is mild;
  (b) RF vs relative weight is U-shaped with a wide flat valley: extremes
      (0.1: almost no balance pressure; 0.9: balance only) are worse than
      the middle, and within [0.3, 0.7] the variation is small.
"""

from repro.config import GameConfig
from repro.core.partitioner import ClugpPartitioner

from conftest import run_once

K = 32


def test_fig11a_imbalance_factor(benchmark, web_streams):
    taus = [1.0, 1.02, 1.05, 1.1]

    def sweep():
        rows = {}
        for alias in ("uk", "it"):
            stream = web_streams[alias]
            rows[alias] = []
            for tau in taus:
                p = ClugpPartitioner(K, imbalance_factor=tau, seed=0)
                assignment = p.partition(stream)
                rows[alias].append(
                    (tau, assignment.replication_factor(), assignment.relative_balance())
                )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 11(a): RF vs imbalance factor tau (k={K})")
    for alias, series in rows.items():
        print(f"  {alias}: " + "  ".join(f"tau={t}: RF={rf:.3f}" for t, rf, _ in series))

    for alias, series in rows.items():
        # the balance cap is honored for every tau
        for tau, _, balance in series:
            assert balance <= tau + K / web_streams[alias].num_edges
        # loosening tau does not hurt RF much (mild, monotone-ish trend)
        assert series[-1][1] <= series[0][1] * 1.05


def test_fig11b_relative_weight(benchmark, uk_stream):
    weights = [0.1, 0.3, 0.5, 0.7, 0.9]

    def sweep():
        rows = []
        for w in weights:
            p = ClugpPartitioner(
                K, game=GameConfig(relative_weight=w, seed=0), imbalance_factor=1.1
            )
            assignment = p.partition(uk_stream)
            rows.append((w, assignment.replication_factor()))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"Figure 11(b) (uk, k={K}): RF vs relative weight")
    print("  " + "  ".join(f"w={w}: RF={rf:.3f}" for w, rf in rows))

    rf = dict(rows)
    middle = min(rf[0.3], rf[0.5], rf[0.7])
    # the valley [0.3, 0.7] is flat: within ~12%
    assert max(rf[0.3], rf[0.5], rf[0.7]) <= 1.12 * middle
