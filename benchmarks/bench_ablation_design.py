"""Design-choice ablations beyond the paper's Figure 9 (DESIGN.md §6).

Three implementation decisions the paper leaves implicit are isolated
here:

1. **stream order** — CLUGP's clustering pass assumes crawl (BFS) order;
   how much quality does a random order cost?  (Section II footnote 1
   justifies the BFS assumption; this quantifies it.)
2. **lambda mode** — Theorem-5 maximum (paper default) vs the Equation-15
   balanced value vs a fixed constant.
3. **sequential vs batched-parallel game** — the parallel mechanism must
   not degrade equilibrium quality.
"""

import pytest

from repro.config import GameConfig
from repro.core.partitioner import ClugpPartitioner

from conftest import run_once

K = 32


def test_ablation_stream_order(benchmark, uk_stream):
    def sweep():
        rows = {}
        for order in ("natural", "random", "bfs"):
            stream = uk_stream if order == "natural" else uk_stream.reordered(
                order, seed=1
            )
            assignment = ClugpPartitioner(K, seed=0).partition(stream)
            rows[order] = assignment.replication_factor()
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"ablation (uk, k={K}): CLUGP RF by stream order: "
          + "  ".join(f"{o}={rf:.3f}" for o, rf in rows.items()))
    # crawl order is the assumption the clustering pass relies on: a random
    # order must hurt quality noticeably
    assert rows["natural"] < rows["random"]


def test_ablation_lambda_mode(benchmark, uk_stream):
    def sweep():
        rows = {}
        for mode in ("max", "balanced", "fixed"):
            cfg = GameConfig(lambda_mode=mode, lambda_value=1.0, seed=0)
            assignment = ClugpPartitioner(K, game=cfg).partition(uk_stream)
            rows[mode] = {
                "rf": assignment.replication_factor(),
                "balance": assignment.relative_balance(),
            }
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"ablation (uk, k={K}): lambda mode: "
          + "  ".join(f"{m}: RF={r['rf']:.3f}" for m, r in rows.items()))
    # every mode must respect the tau cap (pass 3 enforces it regardless)
    for row in rows.values():
        assert row["balance"] <= 1.06
    # the paper-default maximum is competitive with the alternatives
    best = min(r["rf"] for r in rows.values())
    assert rows["max"]["rf"] <= 1.15 * best


def test_ablation_parallel_vs_sequential_game(benchmark, uk_stream):
    def sweep():
        seq = ClugpPartitioner(K, seed=0).partition(uk_stream)
        par = ClugpPartitioner(
            K,
            seed=0,
            parallel=True,
            game=GameConfig(batch_size=64, num_threads=4, seed=0),
        ).partition(uk_stream)
        return {
            "sequential": seq.replication_factor(),
            "parallel": par.replication_factor(),
        }

    rows = run_once(benchmark, sweep)
    print()
    print(f"ablation (uk, k={K}): game RF sequential={rows['sequential']:.3f} "
          f"parallel={rows['parallel']:.3f}")
    # batching must not cost more than 10% quality
    assert rows["parallel"] <= 1.10 * rows["sequential"]
