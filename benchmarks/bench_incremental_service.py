#!/usr/bin/env python
"""Incremental PartitionService: sustained throughput, churn, and RF drift.

Standalone script demonstrating the serving-path claims of the
incremental service (DESIGN.md §7):

* **single-batch bit-identity** — a service fed the whole stream as one
  batch produces the exact edge partition of the batch pipeline
  (``ClugpPartitioner.partition``), hard gate;
* **sustained ingest** over >= 50 batches with per-batch stats (edges/sec,
  frontier fraction, applied/deferred moves, churned edges);
* **migration cap** — no batch applies more than ``--migration-cap``
  served-vertex moves, hard gate;
* **balance** — the served loads never exceed the Algorithm-1 hard cap
  ``ceil(tau * |E| / k)`` at any batch boundary, hard gate;
* **bounded RF drift** — the served replication factor at the end of the
  feed stays within ``DRIFT_CEILING`` (relative) of the from-scratch
  oracle on the same edges, hard gate.  The ceiling is deliberately loose
  against the measured drift (see DESIGN.md §7 for the measured numbers
  and the churn tradeoff) to absorb fixture noise, but tight enough to
  catch a broken warm start or frontier.

Usage::

    python benchmarks/bench_incremental_service.py           # full run
    python benchmarks/bench_incremental_service.py --quick   # CI smoke

Exit status is non-zero if any gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np

from repro.config import ClugpConfig, GameConfig
from repro.core.partitioner import ClugpPartitioner
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream
from repro.service import PartitionService

#: relative RF excess over the from-scratch oracle allowed at feed end.
#: Measured on this fixture: +27.9% (cap 256), +24.8% (cap 1024) — the
#: residual is the price of never re-placing retained edges whose
#: endpoints did not move; see DESIGN.md §7 for the full tradeoff.
DRIFT_CEILING = 0.35
DRIFT_CEILING_QUICK = 0.45  # tiny quick fixture is noisier

NUM_BATCHES = 50


def build_stream(num_edges: int, seed: int = 7) -> EdgeStream:
    """A power-law web-crawl stand-in with ~``num_edges`` edges."""
    avg_out = 10.0
    graph = web_crawl_graph(
        max(64, int(num_edges / avg_out)),
        avg_out_degree=avg_out,
        host_size=30,
        intra_host_prob=0.88,
        seed=seed,
    )
    return EdgeStream.from_graph(graph, order="bfs")


def check_single_batch_identity(stream: EdgeStream, k: int, seed: int) -> bool:
    """Whole stream as one service batch == the batch pipeline, bit for bit."""
    cfg = ClugpConfig(num_partitions=k, game=GameConfig(seed=seed))
    reference = ClugpPartitioner(k, seed=seed, config=cfg).partition(stream)
    service = PartitionService(stream.num_vertices, cfg)
    service.ingest_pair(stream.src, stream.dst)
    return bool(
        np.array_equal(service.edge_partition, reference.edge_partition)
    )


def run_feed(
    stream: EdgeStream,
    k: int,
    seed: int,
    num_batches: int,
    migration_cap: int,
    oracle_checkpoints: tuple[int, ...],
) -> dict:
    """Replay ``stream`` as ``num_batches`` batches; collect the stats rows."""
    cfg = ClugpConfig(num_partitions=k, game=GameConfig(seed=seed))
    service = PartitionService(
        stream.num_vertices,
        cfg,
        migration_cap=migration_cap,
        expected_edges=stream.num_edges,
        quality_every=max(1, num_batches // 10),
    )
    batch_size = max(1, stream.num_edges // num_batches)
    drift_curve = []
    for src, dst in stream.batches(batch_size):
        stats = service.ingest_pair(src, dst)
        if stats.batch + 1 in oracle_checkpoints:
            rf = service.assignment().replication_factor()
            oracle_rf = service.oracle_assignment().replication_factor()
            stats.replication_factor = rf
            stats.rf_oracle = oracle_rf
            drift_curve.append(
                {"batch": stats.batch, "rf": rf, "rf_oracle": oracle_rf,
                 "drift": stats.rf_drift}
            )
    summary = service.summary()
    final = service.assignment()
    summary["replication_factor"] = final.replication_factor()
    summary["relative_balance"] = final.relative_balance()
    rows = [s.to_dict() for s in service.history]
    active = [s for s in service.history if s.num_edges]
    return {
        "summary": summary,
        "drift_curve": drift_curve,
        "batches": rows,
        "num_batches": len(service.history),
        "sustained_eps": summary["edges_per_second"],
        "median_batch_eps": float(np.median([s.edges_per_second for s in active])),
        "mean_frontier_fraction": float(
            np.mean([s.frontier_clusters / max(s.clusters, 1) for s in active])
        ),
        "max_applied_moves": max(s.applied_moves for s in active),
        "mean_churn_edges": float(np.mean([s.churn_edges for s in active])),
        "max_loads": int(service.loads.max()),
        "load_cap": int(
            np.ceil(cfg.imbalance_factor * stream.num_edges / k)
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--edges", type=int, default=100_000, help="stream size")
    parser.add_argument("-k", "--partitions", type=int, default=16)
    parser.add_argument("--num-batches", type=int, default=NUM_BATCHES)
    parser.add_argument("--migration-cap", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: small graph, relaxed drift ceiling",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write results as JSON"
    )
    args = parser.parse_args(argv)
    if args.edges <= 0 or args.partitions <= 0 or args.num_batches <= 0:
        parser.error("--edges, --partitions, and --num-batches must be positive")
    if args.migration_cap < 0:
        parser.error("--migration-cap must be >= 0")

    if args.quick:
        args.edges = min(args.edges, 20_000)
        args.partitions = min(args.partitions, 8)
        args.migration_cap = min(args.migration_cap, 128)
    ceiling = DRIFT_CEILING_QUICK if args.quick else DRIFT_CEILING

    stream = build_stream(args.edges, seed=7)
    print(
        f"stream: |V|={stream.num_vertices} |E|={stream.num_edges} "
        f"k={args.partitions} batches={args.num_batches} "
        f"migration_cap={args.migration_cap}"
    )

    failures = []

    identical = check_single_batch_identity(stream, args.partitions, args.seed)
    print(f"single-batch bit-identity vs batch pipeline: {identical}")
    if not identical:
        failures.append(
            "incremental: single-batch service != ClugpPartitioner.partition"
        )

    checkpoints = (args.num_batches // 2, args.num_batches)
    feed = run_feed(
        stream, args.partitions, args.seed, args.num_batches,
        args.migration_cap, checkpoints,
    )
    s = feed["summary"]
    print(
        f"feed: {s['num_edges']} edges / {feed['num_batches']} batches, "
        f"sustained {feed['sustained_eps']:,.0f} e/s "
        f"(median batch {feed['median_batch_eps']:,.0f} e/s)\n"
        f"frontier fraction mean={feed['mean_frontier_fraction']:.3f}, "
        f"moves applied={s['applied_moves']} deferred={s['deferred_moves']}, "
        f"churn mean={feed['mean_churn_edges']:.0f} edges/batch"
    )

    if feed["max_applied_moves"] > args.migration_cap:
        failures.append(
            f"incremental: a batch applied {feed['max_applied_moves']} moves, "
            f"above the cap {args.migration_cap}"
        )
    if feed["max_loads"] > feed["load_cap"]:
        failures.append(
            f"incremental: served load {feed['max_loads']} exceeds the hard "
            f"cap {feed['load_cap']}"
        )
    final_drift = feed["drift_curve"][-1]["drift"] if feed["drift_curve"] else None
    for point in feed["drift_curve"]:
        print(
            f"  batch {point['batch']:3d}: rf={point['rf']:.4f} "
            f"oracle={point['rf_oracle']:.4f} drift={point['drift']:+.2%}"
        )
    if final_drift is None:
        failures.append("incremental: no oracle checkpoint was recorded")
    elif final_drift > ceiling:
        failures.append(
            f"incremental: final RF drift {final_drift:+.2%} above the "
            f"{ceiling:.0%} ceiling"
        )
    else:
        print(f"final drift {final_drift:+.2%} within the {ceiling:.0%} ceiling")

    if args.json:
        report = {
            "edges": stream.num_edges,
            "vertices": stream.num_vertices,
            "partitions": args.partitions,
            "num_batches": args.num_batches,
            "migration_cap": args.migration_cap,
            "drift_ceiling": ceiling,
            "single_batch_identical": identical,
            "summary": feed["summary"],
            "drift_curve": feed["drift_curve"],
            "sustained_eps": feed["sustained_eps"],
            "median_batch_eps": feed["median_batch_eps"],
            "mean_frontier_fraction": feed["mean_frontier_fraction"],
            "mean_churn_edges": feed["mean_churn_edges"],
            "max_applied_moves": feed["max_applied_moves"],
            "max_loads": feed["max_loads"],
            "load_cap": feed["load_cap"],
            "per_batch": feed["batches"],
        }
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")

    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures))
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
