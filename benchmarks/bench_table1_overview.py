"""Table I — qualitative time/quality classes of the six algorithms.

Paper's table:

    Algorithm   Time Cost   Quality
    Hashing     Low         Low
    DBH         Low         Low
    Mint        Medium      Medium
    Greedy      High        High
    HDRF        High        High
    CLUGP       Low         High

We regenerate the quantitative version at k=32 on the uk stand-in and
assert the class structure: CLUGP's quality matches the heuristics while
its runtime sits with the cheap algorithms.
"""

from repro.analysis.report import compare_partitioners
from repro.partitioners.registry import make_partitioner

from conftest import run_once

ALGORITHMS = ("hashing", "dbh", "mint", "greedy", "hdrf", "clugp")


def test_table1_time_quality_classes(benchmark, uk_stream):
    k = 32

    def sweep():
        parts = [make_partitioner(name, k, seed=0) for name in ALGORITHMS]
        return compare_partitioners(parts, uk_stream, title=f"Table I @ k={k}")

    table = run_once(benchmark, sweep)
    print()
    print(table)

    rf = {r.algorithm: r.replication_factor for r in table.reports}
    time = {r.algorithm: r.runtime_seconds for r in table.reports}

    # quality classes: {greedy, hdrf, clugp} << {mint} << {hashing, dbh}-ish
    assert rf["clugp"] < rf["mint"] < rf["hashing"]
    assert rf["hdrf"] < rf["mint"]
    assert rf["greedy"] < rf["mint"]
    assert rf["dbh"] < rf["hashing"]
    # CLUGP quality is in the high class: within 20% of the best heuristic
    best_heuristic = min(rf["greedy"], rf["hdrf"])
    assert rf["clugp"] <= 1.2 * best_heuristic
    # time classes: CLUGP is cheaper than both per-edge-scoring heuristics
    assert time["clugp"] < time["hdrf"]
    assert time["clugp"] < time["mint"]
