"""Tests for the partitioner registry."""

import pytest

from repro.core.partitioner import ClugpPartitioner
from repro.partitioners.registry import PARTITIONERS, make_partitioner


class TestRegistry:
    def test_all_table1_algorithms_registered(self):
        for name in ("hashing", "dbh", "greedy", "hdrf", "mint", "clugp"):
            assert name in PARTITIONERS

    def test_ablations_registered(self):
        assert "clugp-s" in PARTITIONERS and "clugp-g" in PARTITIONERS

    def test_offline_comparator_registered(self):
        assert "minimetis" in PARTITIONERS

    def test_make_basic(self):
        p = make_partitioner("hashing", 8)
        assert p.num_partitions == 8
        assert p.name == "hashing"

    def test_make_lazy_clugp(self):
        p = make_partitioner("clugp", 4, seed=2)
        assert isinstance(p, ClugpPartitioner)
        assert p.config.game.seed == 2

    def test_make_case_insensitive(self):
        assert make_partitioner("HDRF", 4).name == "hdrf"

    def test_make_forwards_kwargs(self):
        p = make_partitioner("hdrf", 4, lambda_bal=3.0)
        assert p.lambda_bal == 3.0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown partitioner"):
            make_partitioner("nope", 4)

    def test_lazy_entry_cached_after_first_use(self):
        make_partitioner("clugp-s", 2)
        assert not isinstance(PARTITIONERS["clugp-s"], str)
