"""Tests for ClugpConfig / GameConfig validation and defaults."""

import pytest

from repro.config import ClugpConfig, GameConfig


class TestGameConfig:
    def test_defaults_match_paper(self):
        cfg = GameConfig()
        assert cfg.lambda_mode == "max"  # Section VI-A: lambda at maximum
        assert cfg.relative_weight == 0.5  # equal importance
        assert cfg.batch_size == 6400  # paper default batch size

    def test_invalid_lambda_mode(self):
        with pytest.raises(ValueError, match="lambda_mode"):
            GameConfig(lambda_mode="bogus")

    @pytest.mark.parametrize("w", [0.0, 1.0, -0.2, 1.5])
    def test_invalid_relative_weight(self, w):
        with pytest.raises(ValueError, match="relative_weight"):
            GameConfig(relative_weight=w)

    @pytest.mark.parametrize("field", ["max_rounds", "batch_size", "num_threads"])
    def test_positive_int_fields(self, field):
        with pytest.raises(ValueError):
            GameConfig(**{field: 0})

    def test_with_returns_new_instance(self):
        cfg = GameConfig()
        cfg2 = cfg.with_(batch_size=128)
        assert cfg2.batch_size == 128
        assert cfg.batch_size == 6400
        assert cfg2.lambda_mode == cfg.lambda_mode


class TestClugpConfig:
    def test_defaults(self):
        cfg = ClugpConfig()
        assert cfg.enable_splitting is True
        assert cfg.use_game is True
        assert cfg.imbalance_factor >= 1.0

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            ClugpConfig(num_partitions=0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError, match="imbalance_factor"):
            ClugpConfig(imbalance_factor=0.9)

    def test_invalid_vmax(self):
        with pytest.raises(ValueError):
            ClugpConfig(max_cluster_volume=-5)

    def test_resolve_vmax_default_is_edges_over_k(self):
        cfg = ClugpConfig(num_partitions=16)
        assert cfg.resolve_vmax(16_000) == 1000  # |E| / k, Section VI-A

    def test_resolve_vmax_explicit_wins(self):
        cfg = ClugpConfig(num_partitions=16, max_cluster_volume=77)
        assert cfg.resolve_vmax(10**6) == 77

    def test_resolve_vmax_floors_at_one(self):
        cfg = ClugpConfig(num_partitions=64)
        assert cfg.resolve_vmax(10) == 1

    def test_with_nested_game(self):
        cfg = ClugpConfig().with_(game=GameConfig(seed=9))
        assert cfg.game.seed == 9
