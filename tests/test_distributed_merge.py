"""Property tests for the distributed merge protocol (PR 5).

Covers the three exactness/quality claims of DESIGN.md §6:

* the coordinator's merged cluster graph equals the oracle built from the
  full stream and the assembled global clustering (cut attribution is
  exact, never modeled);
* merged-mode replication factor does not exceed independent-mode on
  community-structured streams (power-law web crawls, natural and random
  order) — the quality cliff the merge removes;
* the :class:`ClusterSummary` stays shard-local: resolved + unresolved
  edges account for exactly the shard, and its wire size is the measured
  sum of the shipped arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClugpConfig
from repro.core.cluster_graph import build_cluster_graph
from repro.core.clustering import ClusteringResult
from repro.core.distributed import (
    _boundary_mask,
    _cluster_stage_worker,
    _merge_summaries,
    _shard_ranges,
    distributed_clugp,
)
from repro.core.partitioner import ClugpPartitioner
from repro.graph.generators import web_crawl_graph
from repro.graph.stream import EdgeStream


def _run_cluster_stage(stream, num_nodes, k, seed):
    """Serial stage-1 run: per-node summaries + clusterings + ranges."""
    ranges = _shard_ranges(stream.num_edges, num_nodes)
    boundary = _boundary_mask(stream, ranges)
    summaries, clusterings = [], []
    for node, (start, stop) in enumerate(ranges):
        _, summary, clustering, _ = _cluster_stage_worker(
            (
                node,
                stream.src[start:stop],
                stream.dst[start:stop],
                stream.num_vertices,
                boundary,
                k,
                ClugpConfig(num_partitions=k),
                seed,
                1 << 16,
            )
        )
        summaries.append(summary)
        clusterings.append(clustering)
    return ranges, boundary, summaries, clusterings


class TestMergedGraphExactness:
    @pytest.mark.parametrize("num_nodes", [1, 2, 3, 5])
    def test_merged_graph_equals_full_stream_oracle(self, crawl_stream, num_nodes):
        """ClusterGraph.merge + unresolved attribution == build_cluster_graph
        over the full stream under the assembled global clustering."""
        k = 8
        ranges, boundary, summaries, clusterings = _run_cluster_stage(
            crawl_stream, num_nodes, k, seed=0
        )
        decision = _merge_summaries(summaries, crawl_stream.num_vertices)

        # assemble the global vertex->cluster map the protocol implies
        n = crawl_stream.num_vertices
        global_of = np.full(n, -1, dtype=np.int64)
        for node, clustering in enumerate(clusterings):
            seen = clustering.active_mask()
            global_of[seen] = clustering.cluster_of[seen] + decision.offsets[node]
        global_of[decision.boundary_vertices] = decision.boundary_global_cluster
        m = decision.merged_graph.num_clusters
        oracle_clustering = ClusteringResult(
            cluster_of=global_of,
            degree=crawl_stream.degrees(),
            volume=np.zeros(m, dtype=np.int64),
            divided=np.zeros(n, dtype=bool),
            mirror_source={},
            num_clusters=m,
            max_volume=1,
        )
        oracle = build_cluster_graph(crawl_stream, oracle_clustering)

        merged = decision.merged_graph
        assert np.array_equal(merged.internal, oracle.internal)
        assert np.array_equal(merged.indptr, oracle.indptr)
        assert np.array_equal(merged.indices, oracle.indices)
        assert np.array_equal(merged.weights, oracle.weights)
        assert np.array_equal(merged.in_indptr, oracle.in_indptr)
        assert np.array_equal(merged.in_indices, oracle.in_indices)
        assert np.array_equal(merged.in_weights, oracle.in_weights)

    def test_merged_graph_accounts_every_edge(self, crawl_stream):
        _, _, summaries, _ = _run_cluster_stage(crawl_stream, 4, 8, seed=1)
        decision = _merge_summaries(summaries, crawl_stream.num_vertices)
        merged = decision.merged_graph
        assert (
            merged.total_internal() + merged.total_cut() == crawl_stream.num_edges
        )
        assert merged.edge_count_check(crawl_stream.num_edges)


class TestClusterSummary:
    def test_shard_local_split_is_exact(self, crawl_stream):
        """resolved + unresolved edges partition the shard: no edge is
        double-counted and no edge escapes the summary."""
        ranges, boundary, summaries, _ = _run_cluster_stage(crawl_stream, 4, 8, seed=0)
        for (start, stop), s in zip(ranges, summaries):
            shard_edges = stop - start
            resolved_edges = s.resolved.total_internal() + s.resolved.total_cut()
            assert resolved_edges + s.unresolved_src.size == shard_edges
            # unresolved edges are exactly those touching a boundary vertex
            src = crawl_stream.src[start:stop]
            dst = crawl_stream.dst[start:stop]
            expected = int((boundary[src] | boundary[dst]).sum())
            assert s.unresolved_src.size == expected

    def test_wire_bytes_measured(self, crawl_stream):
        _, _, summaries, _ = _run_cluster_stage(crawl_stream, 2, 8, seed=0)
        s = summaries[0]
        expected = sum(
            a.nbytes
            for a in (
                s.volume,
                s.resolved.internal,
                s.resolved.indptr,
                s.resolved.indices,
                s.resolved.weights,
                s.boundary_vertices,
                s.boundary_clusters,
                s.boundary_degrees,
                s.unresolved_src,
                s.unresolved_dst,
                s.unresolved_src_cluster,
                s.unresolved_dst_cluster,
                s.local_assignment,
            )
        )
        assert s.wire_bytes() == expected

    def test_no_boundary_means_full_local_graph(self, crawl_stream):
        """Without a boundary mask the summary's resolved graph is the
        node's full cluster graph — the single-node degenerate case."""
        partitioner = ClugpPartitioner(8, seed=0)
        summary = partitioner.cluster_summary(crawl_stream)
        full = partitioner.last_cluster_graph
        assert summary.unresolved_src.size == 0
        assert np.array_equal(summary.resolved.internal, full.internal)
        assert np.array_equal(summary.resolved.indices, full.indices)
        assert np.array_equal(summary.resolved.weights, full.weights)


class TestStagedApi:
    def test_summary_plus_transform_equals_partition(self, crawl_stream):
        """The staged API composed over one 'shard' (the whole stream)
        reproduces the monolithic pipeline bit for bit."""
        reference = ClugpPartitioner(8, seed=4).partition(crawl_stream)
        staged = ClugpPartitioner(8, seed=4)
        summary = staged.cluster_summary(crawl_stream)
        clustering = staged.last_clustering
        vp = np.full(crawl_stream.num_vertices, -1, dtype=np.int64)
        seen = clustering.active_mask()
        vp[seen] = summary.local_assignment[clustering.cluster_of[seen]]
        edge_partition = staged.transform_with_mapping(crawl_stream, vp)
        assert np.array_equal(edge_partition, reference.edge_partition)
        assert staged.last_transform_stats.total() == crawl_stream.num_edges

    def test_transform_with_mapping_requires_clustering(self, crawl_stream):
        partitioner = ClugpPartitioner(8)
        vp = np.zeros(crawl_stream.num_vertices, dtype=np.int64)
        with pytest.raises(RuntimeError, match="cluster_summary first"):
            partitioner.transform_with_mapping(crawl_stream, vp)

    def test_uncovered_streamed_vertex_raises(self, crawl_stream):
        staged = ClugpPartitioner(8, seed=4)
        staged.cluster_summary(crawl_stream)
        vp = np.full(crawl_stream.num_vertices, -1, dtype=np.int64)  # covers nothing
        with pytest.raises(ValueError, match="does not cover"):
            staged.transform_with_mapping(crawl_stream, vp)

    def test_merge_report_granularity_diagnostic(self, crawl_stream):
        result = distributed_clugp(crawl_stream, 8, num_nodes=4, merge_mode="merged")
        m = result.merge
        assert m.max_cluster_volume > 0
        assert m.total_wire_bytes() == (
            m.merge_bytes + m.broadcast_bytes + m.quota_bytes
        )
        assert result.to_dict()["merge"]["total_wire_bytes"] == m.total_wire_bytes()


class TestMergedQualityProperties:
    """Hypothesis sweeps of the merged <= independent RF property.

    The claim targets the quality cliff the merge removes: replication
    inflating with the node count on community-structured power-law
    crawl streams (the paper's setting).  The strategy therefore draws
    the inflation regime — k=8, 4-8 nodes, non-trivial size — in natural
    (BFS-crawl) and random stream order.  Outside it the property decays
    into equilibrium noise: at 2 nodes or k=4 both modes land within a
    couple of RF percent of each other and either can win a given draw
    (measured: 0/100 violations with min margin 0.115 RF inside the
    regime vs occasional <1% inversions at num_nodes=2 or k=4; the same
    happens on structureless uniform streams, see DESIGN.md §6).
    """

    @settings(max_examples=8, deadline=None)
    @given(
        pages=st.integers(min_value=800, max_value=1300),
        avg_degree=st.floats(min_value=6.0, max_value=10.0),
        host_size=st.integers(min_value=20, max_value=40),
        graph_seed=st.integers(min_value=0, max_value=10_000),
        num_nodes=st.sampled_from([4, 8]),
        seed=st.integers(min_value=0, max_value=16),
    )
    def test_merged_rf_le_independent_powerlaw(
        self, pages, avg_degree, host_size, graph_seed, num_nodes, seed
    ):
        graph = web_crawl_graph(
            pages, avg_out_degree=avg_degree, host_size=host_size, seed=graph_seed
        )
        stream = EdgeStream.from_graph(graph, order="natural")
        ind = distributed_clugp(
            stream, 8, num_nodes=num_nodes, seed=seed, merge_mode="independent"
        )
        mer = distributed_clugp(
            stream, 8, num_nodes=num_nodes, seed=seed, merge_mode="merged"
        )
        assert (
            mer.assignment.replication_factor()
            <= ind.assignment.replication_factor()
        )

    @settings(max_examples=6, deadline=None)
    @given(
        pages=st.integers(min_value=800, max_value=1300),
        graph_seed=st.integers(min_value=0, max_value=10_000),
        order_seed=st.integers(min_value=0, max_value=100),
        num_nodes=st.sampled_from([4, 8]),
    )
    def test_merged_rf_le_independent_random_order(
        self, pages, graph_seed, order_seed, num_nodes
    ):
        graph = web_crawl_graph(
            pages, avg_out_degree=8.0, host_size=30, seed=graph_seed
        )
        stream = EdgeStream.from_graph(graph, order="random", seed=order_seed)
        ind = distributed_clugp(
            stream, 8, num_nodes=num_nodes, seed=0, merge_mode="independent"
        )
        mer = distributed_clugp(
            stream, 8, num_nodes=num_nodes, seed=0, merge_mode="merged"
        )
        assert (
            mer.assignment.replication_factor()
            <= ind.assignment.replication_factor()
        )

    def test_merged_strictly_better_at_eight_nodes(self, crawl_stream):
        """The acceptance-criterion fixture: at 8 nodes the merge must
        strictly beat independent concatenation."""
        ind = distributed_clugp(crawl_stream, 8, num_nodes=8, merge_mode="independent")
        mer = distributed_clugp(crawl_stream, 8, num_nodes=8, merge_mode="merged")
        assert (
            mer.assignment.replication_factor()
            < ind.assignment.replication_factor()
        )
