"""Adversarial and failure-injection inputs across the public API.

Every algorithm must either produce a valid result or raise a clear
ValueError — never crash, hang, or silently emit out-of-range ids — on
degenerate streams: empty, single-edge, all-self-loops, all-parallel,
hub-only, k larger than the edge count, and disconnected dust.
"""

import numpy as np
import pytest

from repro.config import ClugpConfig, GameConfig
from repro.core.partitioner import ClugpPartitioner
from repro.core.distributed import distributed_clugp
from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream
from repro.partitioners.registry import make_partitioner
from repro.system.engine import GasEngine
from repro.system.apps.pagerank import pagerank

ALGORITHMS = [
    "hashing",
    "dbh",
    "greedy",
    "hdrf",
    "mint",
    "grid",
    "ldg",
    "fennel",
    "clugp",
    "minimetis",
]


def adversarial_streams():
    return {
        "single_edge": EdgeStream([0], [1], num_vertices=2),
        "self_loops": EdgeStream([0, 1, 2] * 4, [0, 1, 2] * 4, num_vertices=3),
        "parallel_edges": EdgeStream([0] * 20, [1] * 20, num_vertices=2),
        "hub_only": EdgeStream([0] * 30, list(range(1, 31)), num_vertices=31),
        "dust": EdgeStream(
            list(range(0, 40, 2)), list(range(1, 40, 2)), num_vertices=40
        ),
        "two_cliques": EdgeStream.from_graph(
            DiGraph.from_edges(
                [(i, j) for i in range(5) for j in range(5) if i != j]
                + [(i, j) for i in range(5, 10) for j in range(5, 10) if i != j]
            )
        ),
    }


@pytest.mark.parametrize("name", sorted(adversarial_streams()))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_degenerate_streams(name, algorithm):
    stream = adversarial_streams()[name]
    k = 4
    assignment = make_partitioner(algorithm, k, seed=0).partition(stream)
    assert assignment.edge_partition.shape == (stream.num_edges,)
    assert assignment.edge_partition.min() >= 0
    assert assignment.edge_partition.max() < k
    assert assignment.replication_factor() >= 1.0


@pytest.mark.parametrize("algorithm", ["hashing", "greedy", "hdrf", "clugp"])
def test_k_exceeds_edge_count(algorithm):
    stream = EdgeStream([0, 1, 2], [1, 2, 0], num_vertices=3)
    assignment = make_partitioner(algorithm, 16, seed=0).partition(stream)
    assert assignment.partition_sizes().sum() == 3


def test_clugp_empty_stream():
    stream = EdgeStream([], [], num_vertices=0)
    assignment = ClugpPartitioner(4).partition(stream)
    assert assignment.edge_partition.size == 0
    assert assignment.replication_factor() == 0.0


def test_clugp_extreme_tau():
    stream = EdgeStream([0] * 10, list(range(1, 11)), num_vertices=11)
    a_tight = ClugpPartitioner(2, imbalance_factor=1.0).partition(stream)
    a_loose = ClugpPartitioner(2, imbalance_factor=10.0).partition(stream)
    assert a_tight.partition_sizes().max() <= 5
    assert a_loose.partition_sizes().sum() == 10


def test_clugp_vmax_one():
    # minimum legal cluster capacity: every vertex isolated in its own
    # cluster; the pipeline must still terminate with a valid result
    stream = EdgeStream([0, 1, 2, 3], [1, 2, 3, 0], num_vertices=4)
    p = ClugpPartitioner(2, max_cluster_volume=1)
    assignment = p.partition(stream)
    assert assignment.edge_partition.max() < 2


def test_game_with_more_partitions_than_clusters():
    stream = EdgeStream([0, 1], [1, 0], num_vertices=2)
    cfg = ClugpConfig(num_partitions=8, game=GameConfig(seed=0))
    assignment = ClugpPartitioner(8, config=cfg).partition(stream)
    assert assignment.edge_partition.max() < 8


def test_distributed_on_tiny_stream():
    stream = EdgeStream([0, 1, 2], [1, 2, 0], num_vertices=3)
    result = distributed_clugp(stream, 2, num_nodes=3)
    assert result.assignment.partition_sizes().sum() == 3


def test_engine_on_single_vertex_loop():
    stream = EdgeStream([0, 0], [0, 0], num_vertices=1)
    from repro.partitioners.base import PartitionAssignment

    a = PartitionAssignment(stream, [0, 0], num_partitions=1)
    ranks, cost = pagerank(GasEngine(a), max_supersteps=10)
    assert ranks[0] == pytest.approx(1.0)
    assert cost.total_messages == 0  # one replica -> nothing to sync


def test_stream_orders_on_disconnected_dust():
    g = DiGraph(list(range(0, 20, 2)), list(range(1, 20, 2)), num_vertices=20)
    for order in ("natural", "random", "bfs", "dfs"):
        s = EdgeStream.from_graph(g, order=order, seed=0)
        assert s.num_edges == 10
