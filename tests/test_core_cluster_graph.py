"""Tests for the cluster multigraph builder (pass 2 input)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream
from repro.core.clustering import streaming_clustering
from repro.core.cluster_graph import build_cluster_graph


def clustered_stream(edges, vmax=1000):
    s = EdgeStream.from_graph(DiGraph.from_edges(edges))
    return s, streaming_clustering(s, max_volume=vmax)


class TestBuild:
    def test_intra_cluster_edges_internal(self):
        s, clustering = clustered_stream([(0, 1), (1, 0)])
        cg = build_cluster_graph(s, clustering)
        assert cg.total_internal() == 2
        assert cg.total_cut() == 0

    def test_cross_cluster_edges_weighted(self):
        # two triangles + one bridge; vmax large so triangles merge cleanly
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        assert cg.total_internal() + cg.total_cut() == s.num_edges

    def test_self_loop_is_internal(self):
        s, clustering = clustered_stream([(0, 0), (0, 1)])
        cg = build_cluster_graph(s, clustering)
        assert cg.total_internal() >= 1

    def test_in_out_mirror_each_other(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (4, 1)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        for c in range(cg.num_clusters):
            for nbr, w in cg.out_dict(c).items():
                assert cg.in_dict(nbr)[c] == w

    def test_csr_rows_sorted_and_consistent(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (4, 1)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        assert cg.indptr.shape == (cg.num_clusters + 1,)
        assert cg.indptr[0] == 0 and cg.indptr[-1] == cg.indices.size
        assert cg.indices.size == cg.weights.size
        for c in range(cg.num_clusters):
            row = cg.indices[cg.indptr[c] : cg.indptr[c + 1]]
            assert np.all(np.diff(row) > 0)  # sorted, no duplicates
        assert (cg.weights > 0).all()
        assert int(cg.in_weights.sum()) == int(cg.weights.sum())

    def test_undirected_neighbors_sums_directions(self):
        s, clustering = clustered_stream([(0, 1), (2, 0), (0, 2)], vmax=2)
        cg = build_cluster_graph(s, clustering)
        for c in range(cg.num_clusters):
            merged = cg.undirected_neighbors(c)
            for nbr, w in merged.items():
                expected = cg.out_dict(c).get(nbr, 0) + cg.in_dict(c).get(nbr, 0)
                assert w == expected

    def test_sym_matches_undirected_neighbors(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (4, 1)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        indptr, indices, weights = cg.sym()
        for c in range(cg.num_clusters):
            row = dict(
                zip(
                    indices[indptr[c] : indptr[c + 1]].tolist(),
                    weights[indptr[c] : indptr[c + 1]].tolist(),
                )
            )
            assert row == cg.undirected_neighbors(c)

    def test_cut_degree(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        total_cut_degree = sum(cg.cut_degree(c) for c in range(cg.num_clusters))
        assert total_cut_degree == 2 * cg.total_cut()

    def test_rejects_unclustered_vertices(self):
        s = EdgeStream([0], [1], num_vertices=2)
        clustering = streaming_clustering(
            EdgeStream([0], [1], num_vertices=2), max_volume=5
        )
        bigger = EdgeStream([0, 1], [1, 0], num_vertices=2)
        # same clustering works for a permuted stream over the same vertices
        cg = build_cluster_graph(bigger, clustering)
        assert cg.total_internal() + cg.total_cut() == 2

    def test_empty_stream(self):
        s = EdgeStream([], [], num_vertices=0)
        clustering = streaming_clustering(s, max_volume=5)
        cg = build_cluster_graph(s, clustering)
        assert cg.num_clusters == 0
        assert cg.total_internal() == 0


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=80
    ),
    vmax=st.integers(1, 30),
)
def test_property_every_edge_accounted(edges, vmax):
    s, clustering = clustered_stream(edges, vmax=vmax)
    cg = build_cluster_graph(s, clustering)
    assert cg.total_internal() + cg.total_cut() == s.num_edges
    # internal counts are non-negative and bounded by the stream
    assert (cg.internal >= 0).all()
    assert cg.internal.sum() <= s.num_edges
