"""Tests for the cluster multigraph builder (pass 2 input)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.stream import EdgeStream
from repro.core.clustering import streaming_clustering
from repro.core.cluster_graph import ClusterGraph, build_cluster_graph


def clustered_stream(edges, vmax=1000):
    s = EdgeStream.from_graph(DiGraph.from_edges(edges))
    return s, streaming_clustering(s, max_volume=vmax)


class TestBuild:
    def test_intra_cluster_edges_internal(self):
        s, clustering = clustered_stream([(0, 1), (1, 0)])
        cg = build_cluster_graph(s, clustering)
        assert cg.total_internal() == 2
        assert cg.total_cut() == 0

    def test_cross_cluster_edges_weighted(self):
        # two triangles + one bridge; vmax large so triangles merge cleanly
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        assert cg.total_internal() + cg.total_cut() == s.num_edges

    def test_self_loop_is_internal(self):
        s, clustering = clustered_stream([(0, 0), (0, 1)])
        cg = build_cluster_graph(s, clustering)
        assert cg.total_internal() >= 1

    def test_in_out_mirror_each_other(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (4, 1)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        for c in range(cg.num_clusters):
            for nbr, w in cg.out_dict(c).items():
                assert cg.in_dict(nbr)[c] == w

    def test_csr_rows_sorted_and_consistent(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (4, 1)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        assert cg.indptr.shape == (cg.num_clusters + 1,)
        assert cg.indptr[0] == 0 and cg.indptr[-1] == cg.indices.size
        assert cg.indices.size == cg.weights.size
        for c in range(cg.num_clusters):
            row = cg.indices[cg.indptr[c] : cg.indptr[c + 1]]
            assert np.all(np.diff(row) > 0)  # sorted, no duplicates
        assert (cg.weights > 0).all()
        assert int(cg.in_weights.sum()) == int(cg.weights.sum())

    def test_undirected_neighbors_sums_directions(self):
        s, clustering = clustered_stream([(0, 1), (2, 0), (0, 2)], vmax=2)
        cg = build_cluster_graph(s, clustering)
        for c in range(cg.num_clusters):
            merged = cg.undirected_neighbors(c)
            for nbr, w in merged.items():
                expected = cg.out_dict(c).get(nbr, 0) + cg.in_dict(c).get(nbr, 0)
                assert w == expected

    def test_sym_matches_undirected_neighbors(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (4, 1)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        indptr, indices, weights = cg.sym()
        for c in range(cg.num_clusters):
            row = dict(
                zip(
                    indices[indptr[c] : indptr[c + 1]].tolist(),
                    weights[indptr[c] : indptr[c + 1]].tolist(),
                )
            )
            assert row == cg.undirected_neighbors(c)

    def test_cut_degree(self):
        s, clustering = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)], vmax=6
        )
        cg = build_cluster_graph(s, clustering)
        total_cut_degree = sum(cg.cut_degree(c) for c in range(cg.num_clusters))
        assert total_cut_degree == 2 * cg.total_cut()

    def test_rejects_unclustered_vertices(self):
        s = EdgeStream([0], [1], num_vertices=2)
        clustering = streaming_clustering(
            EdgeStream([0], [1], num_vertices=2), max_volume=5
        )
        bigger = EdgeStream([0, 1], [1, 0], num_vertices=2)
        # same clustering works for a permuted stream over the same vertices
        cg = build_cluster_graph(bigger, clustering)
        assert cg.total_internal() + cg.total_cut() == 2

    def test_empty_stream(self):
        s = EdgeStream([], [], num_vertices=0)
        clustering = streaming_clustering(s, max_volume=5)
        cg = build_cluster_graph(s, clustering)
        assert cg.num_clusters == 0
        assert cg.total_internal() == 0


@settings(max_examples=20, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=80
    ),
    vmax=st.integers(1, 30),
)
def test_property_every_edge_accounted(edges, vmax):
    s, clustering = clustered_stream(edges, vmax=vmax)
    cg = build_cluster_graph(s, clustering)
    assert cg.total_internal() + cg.total_cut() == s.num_edges
    # internal counts are non-negative and bounded by the stream
    assert (cg.internal >= 0).all()
    assert cg.internal.sum() <= s.num_edges


class TestMerge:
    """ClusterGraph.merge: the coordinator half of the distributed union."""

    def _two_graphs(self):
        s1, c1 = clustered_stream(
            [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)], vmax=6
        )
        s2, c2 = clustered_stream([(0, 1), (1, 0), (2, 3), (0, 2)], vmax=4)
        return build_cluster_graph(s1, c1), build_cluster_graph(s2, c2)

    def test_identity_relabel_is_bit_identical(self):
        g, _ = self._two_graphs()
        merged = ClusterGraph.merge(
            [g], [np.arange(g.num_clusters)], num_clusters=g.num_clusters
        )
        assert np.array_equal(merged.internal, g.internal)
        assert np.array_equal(merged.indptr, g.indptr)
        assert np.array_equal(merged.indices, g.indices)
        assert np.array_equal(merged.weights, g.weights)
        assert np.array_equal(merged.in_indptr, g.in_indptr)
        assert np.array_equal(merged.in_indices, g.in_indices)
        assert np.array_equal(merged.in_weights, g.in_weights)
        assert merged.internal.dtype == np.int64
        assert merged.weights.dtype == np.int64

    def test_disjoint_union_conserves_weight(self):
        g1, g2 = self._two_graphs()
        m1, m2 = g1.num_clusters, g2.num_clusters
        merged = ClusterGraph.merge(
            [g1, g2],
            [np.arange(m1), np.arange(m2) + m1],
            num_clusters=m1 + m2,
        )
        assert merged.num_clusters == m1 + m2
        assert merged.total_internal() == g1.total_internal() + g2.total_internal()
        assert merged.total_cut() == g1.total_cut() + g2.total_cut()
        # the relabel is a bijection onto 0..M-1: each input row survives
        assert np.array_equal(merged.internal[:m1], g1.internal)
        assert np.array_equal(merged.internal[m1:], g2.internal)

    def test_bijective_relabel_permutes(self):
        g, _ = self._two_graphs()
        m = g.num_clusters
        perm = np.arange(m)[::-1].copy()
        merged = ClusterGraph.merge([g], [perm], num_clusters=m)
        assert np.array_equal(merged.internal, g.internal[::-1])
        assert merged.total_cut() == g.total_cut()
        # inverse permutation restores the original arrays exactly
        back = ClusterGraph.merge([merged], [perm], num_clusters=m)
        assert np.array_equal(back.internal, g.internal)
        assert np.array_equal(back.indices, g.indices)
        assert np.array_equal(back.weights, g.weights)

    def test_non_injective_relabel_folds_into_internal(self):
        g = ClusterGraph.from_dicts(
            3,
            internal=np.array([2, 3, 1]),
            out_edges=[{1: 4}, {2: 5}, {}],
            in_edges=[{}, {0: 4}, {1: 5}],
        )
        # collapse clusters 0 and 1: their 4 cut edges become internal
        merged = ClusterGraph.merge([g], [np.array([0, 0, 1])], num_clusters=2)
        assert merged.num_clusters == 2
        assert np.array_equal(merged.internal, [2 + 3 + 4, 1])
        assert merged.total_cut() == 5
        assert merged.out_dict(0) == {1: 5}
        # total weight is conserved through the fold
        assert (
            merged.total_internal() + merged.total_cut()
            == g.total_internal() + g.total_cut()
        )

    def test_duplicate_pairs_sum(self):
        a = ClusterGraph.from_dicts(
            2, internal=np.array([1, 1]), out_edges=[{1: 2}, {}], in_edges=[{}, {0: 2}]
        )
        b = ClusterGraph.from_dicts(
            2, internal=np.array([0, 0]), out_edges=[{1: 7}, {0: 3}],
            in_edges=[{1: 3}, {0: 7}],
        )
        merged = ClusterGraph.merge(
            [a, b], [np.arange(2), np.arange(2)], num_clusters=2
        )
        assert merged.out_dict(0) == {1: 9}
        assert merged.out_dict(1) == {0: 3}
        assert np.array_equal(merged.internal, [1, 1])

    def test_infers_num_clusters(self):
        g, _ = self._two_graphs()
        merged = ClusterGraph.merge([g], [np.arange(g.num_clusters)])
        assert merged.num_clusters == g.num_clusters

    def test_empty_inputs(self):
        merged = ClusterGraph.merge([], [], num_clusters=0)
        assert merged.num_clusters == 0
        assert merged.indices.size == 0

    def test_validates_relabel(self):
        g, _ = self._two_graphs()
        with pytest.raises(ValueError, match="relabel must map"):
            ClusterGraph.merge([g], [np.arange(g.num_clusters - 1)])
        with pytest.raises(ValueError, match="out of range"):
            ClusterGraph.merge(
                [g], [np.arange(g.num_clusters)], num_clusters=g.num_clusters - 1
            )
        with pytest.raises(ValueError, match="relabel maps"):
            ClusterGraph.merge([g], [])


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=60
    ),
    vmax=st.integers(min_value=1, max_value=12),
    split=st.integers(min_value=0, max_value=59),
)
def test_property_merge_of_halves_equals_whole_under_shared_clustering(
    edges, vmax, split
):
    """Splitting a stream in two, building each half's cluster graph under
    the SAME clustering, and merging with identity relabels must equal the
    whole-stream graph — the resolved-edge half of the DESIGN.md §6
    exactness argument."""
    s, clustering = clustered_stream(edges, vmax=vmax)
    whole = build_cluster_graph(s, clustering)
    split = min(split, s.num_edges)
    halves = [
        EdgeStream(s.src[:split], s.dst[:split], s.num_vertices),
        EdgeStream(s.src[split:], s.dst[split:], s.num_vertices),
    ]
    graphs = [build_cluster_graph(h, clustering) for h in halves]
    m = clustering.num_clusters
    merged = ClusterGraph.merge(graphs, [np.arange(m), np.arange(m)], num_clusters=m)
    assert np.array_equal(merged.internal, whole.internal)
    assert np.array_equal(merged.indptr, whole.indptr)
    assert np.array_equal(merged.indices, whole.indices)
    assert np.array_equal(merged.weights, whole.weights)
