"""End-to-end tests for the CLUGP pipeline and its ablations."""

import numpy as np
import pytest

from repro.config import ClugpConfig, GameConfig
from repro.core.partitioner import (
    ClugpGreedyPartitioner,
    ClugpNoSplitPartitioner,
    ClugpPartitioner,
    greedy_cluster_assignment,
)
from repro.core.cluster_graph import ClusterGraph
from repro.graph.stream import EdgeStream
from repro.partitioners import HashingPartitioner


@pytest.fixture(scope="module")
def stream(crawl_graph):
    return EdgeStream.from_graph(crawl_graph, order="natural")


class TestPipeline:
    def test_valid_assignment(self, stream):
        assignment = ClugpPartitioner(8).partition(stream)
        assert assignment.edge_partition.shape == (stream.num_edges,)
        assert assignment.edge_partition.max() < 8

    def test_stage_times_recorded(self, stream):
        p = ClugpPartitioner(8)
        assignment = p.partition(stream)
        for stage in ("clustering", "game", "transform"):
            assert stage in assignment.stage_times

    def test_intermediates_exposed(self, stream):
        p = ClugpPartitioner(8)
        p.partition(stream)
        assert p.last_clustering is not None
        assert p.last_cluster_graph is not None
        assert p.last_game_result is not None
        assert p.last_transform_stats is not None
        assert p.last_transform_stats.total() == stream.num_edges

    def test_tau_cap_respected(self, stream):
        p = ClugpPartitioner(8, imbalance_factor=1.02)
        assignment = p.partition(stream)
        cap = p.last_transform_stats.load_cap
        assert assignment.partition_sizes().max() <= cap

    def test_deterministic(self, stream):
        a = ClugpPartitioner(8, seed=5).partition(stream).edge_partition
        b = ClugpPartitioner(8, seed=5).partition(stream).edge_partition
        assert np.array_equal(a, b)

    def test_beats_hashing_quality(self, stream):
        rf_clugp = ClugpPartitioner(16).partition(stream).replication_factor()
        rf_hash = HashingPartitioner(16).partition(stream).replication_factor()
        assert rf_clugp < rf_hash

    def test_three_passes_declared(self):
        assert ClugpPartitioner.passes == 3
        assert ClugpPartitioner.preferred_order == "natural"

    def test_single_partition(self, stream):
        assignment = ClugpPartitioner(1).partition(stream)
        assert assignment.replication_factor() == 1.0

    def test_parallel_flag(self, stream):
        p = ClugpPartitioner(
            8, parallel=True, game=GameConfig(batch_size=32, num_threads=2)
        )
        assignment = p.partition(stream)
        assert assignment.edge_partition.max() < 8

    def test_explicit_vmax(self, stream):
        p = ClugpPartitioner(8, max_cluster_volume=50)
        p.partition(stream)
        assert p.last_clustering.max_volume == 50

    def test_config_object_respected(self, stream):
        cfg = ClugpConfig(num_partitions=4, imbalance_factor=1.3)
        p = ClugpPartitioner(4, config=cfg)
        assert p.config.imbalance_factor == 1.3

    def test_config_k_mismatch_resolved(self, stream):
        cfg = ClugpConfig(num_partitions=2)
        p = ClugpPartitioner(8, config=cfg)
        assert p.config.num_partitions == 8

    def test_state_memory_accounts_vertex_tables(self, stream):
        p = ClugpPartitioner(8)
        p.partition(stream)
        assert p.state_memory_bytes(stream) >= 2 * stream.num_vertices * 8


class TestAblations:
    def test_no_split_variant_never_splits(self, stream):
        p = ClugpNoSplitPartitioner(8)
        p.partition(stream)
        assert p.last_clustering.splits == 0
        assert p.name == "clugp-s"

    def test_greedy_variant_skips_game(self, stream):
        p = ClugpGreedyPartitioner(8)
        p.partition(stream)
        assert p.last_game_result.rounds == 0
        assert p.name == "clugp-g"

    def test_game_beats_greedy_placement(self, stream):
        # Figure 9: the game-based placement has lower RF than CLUGP-G
        rf_game = ClugpPartitioner(16, seed=1).partition(stream).replication_factor()
        rf_greedy = (
            ClugpGreedyPartitioner(16, seed=1).partition(stream).replication_factor()
        )
        assert rf_game <= rf_greedy

    def test_greedy_cluster_assignment_lpt(self):
        cg = ClusterGraph.from_dicts(
            4,
            np.array([10, 1, 1, 8]),
            [{} for _ in range(4)],
            [{} for _ in range(4)],
        )
        assignment = greedy_cluster_assignment(cg, 2)
        loads = np.bincount(assignment, weights=cg.internal, minlength=2)
        assert loads.tolist() == [10.0, 10.0]
